//! `implicitc` — a compiler driver for the implicit calculus.
//!
//! ```text
//! implicitc [OPTIONS] <FILE>
//! implicitc [OPTIONS] -e "<PROGRAM>"
//!
//! Options:
//!   --lang core|source     input language (default: by extension —
//!                          .imp/.lc = core λ⇒, .si = source; else core)
//!   --emit value|type|core|systemf|explain
//!                          what to print (default: value)
//!   --semantics elab|opsem|both
//!                          evaluation route (default: both, compared)
//!   --policy paper|most-specific|env-extension
//!   --strict               enable strict static checks (termination,
//!                          coherence)
//! ```
//!
//! Exit status 0 on success, 1 on any error (reported to stderr).

use std::process::ExitCode;

use implicit_core::resolve::ResolutionPolicy;
use implicit_core::syntax::{Declarations, Expr};
use implicit_core::typeck::Typechecker;

struct Options {
    lang: Lang,
    emit: Emit,
    semantics: Semantics,
    policy: ResolutionPolicy,
    strict: bool,
    input: Input,
}

#[derive(PartialEq, Clone, Copy)]
enum Lang {
    Core,
    Source,
    Auto,
}

#[derive(PartialEq, Clone, Copy)]
enum Emit {
    Value,
    Type,
    Core,
    SystemF,
    Explain,
}

#[derive(PartialEq, Clone, Copy)]
enum Semantics {
    Elab,
    Opsem,
    Both,
}

enum Input {
    File(String),
    Inline(String),
}

fn usage() -> String {
    "usage: implicitc [--lang core|source] [--emit value|type|core|systemf|explain] \
     [--semantics elab|opsem|both] [--policy paper|most-specific|env-extension] [--strict] \
     (<file> | -e <program>)"
        .to_owned()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        lang: Lang::Auto,
        emit: Emit::Value,
        semantics: Semantics::Both,
        policy: ResolutionPolicy::paper(),
        strict: false,
        input: Input::Inline(String::new()),
    };
    let mut input: Option<Input> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--lang" => {
                opts.lang = match it.next().map(String::as_str) {
                    Some("core") => Lang::Core,
                    Some("source") => Lang::Source,
                    other => return Err(format!("--lang: expected core|source, got {other:?}")),
                }
            }
            "--emit" => {
                opts.emit = match it.next().map(String::as_str) {
                    Some("value") => Emit::Value,
                    Some("type") => Emit::Type,
                    Some("core") => Emit::Core,
                    Some("systemf") => Emit::SystemF,
                    Some("explain") => Emit::Explain,
                    other => {
                        return Err(format!(
                            "--emit: expected value|type|core|systemf|explain, got {other:?}"
                        ))
                    }
                }
            }
            "--semantics" => {
                opts.semantics = match it.next().map(String::as_str) {
                    Some("elab") => Semantics::Elab,
                    Some("opsem") => Semantics::Opsem,
                    Some("both") => Semantics::Both,
                    other => {
                        return Err(format!(
                            "--semantics: expected elab|opsem|both, got {other:?}"
                        ))
                    }
                }
            }
            "--policy" => {
                opts.policy = match it.next().map(String::as_str) {
                    Some("paper") => ResolutionPolicy::paper(),
                    Some("most-specific") => ResolutionPolicy::paper().with_most_specific(),
                    Some("env-extension") => ResolutionPolicy::paper().with_env_extension(),
                    other => {
                        return Err(format!(
                            "--policy: expected paper|most-specific|env-extension, got {other:?}"
                        ))
                    }
                }
            }
            "--strict" => opts.strict = true,
            "-e" => {
                let prog = it
                    .next()
                    .ok_or_else(|| "-e needs a program argument".to_owned())?;
                input = Some(Input::Inline(prog.clone()));
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => input = Some(Input::File(other.to_owned())),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    opts.input = input.ok_or_else(usage)?;
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("implicitc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &Options) -> Result<(), String> {
    let (src, lang) = match &opts.input {
        Input::File(path) => {
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let lang = match opts.lang {
                Lang::Auto if path.ends_with(".si") => Lang::Source,
                Lang::Auto => Lang::Core,
                other => other,
            };
            (src, lang)
        }
        Input::Inline(src) => {
            let lang = if opts.lang == Lang::Auto {
                Lang::Core
            } else {
                opts.lang
            };
            (src.clone(), lang)
        }
    };

    // Front end: obtain declarations and a core expression.
    let (decls, core): (Declarations, Expr) = match lang {
        Lang::Source => {
            let compiled = implicit_source::compile(&src).map_err(|e| e.to_string())?;
            (compiled.decls, compiled.core)
        }
        _ => implicit_core::parse::parse_program(&src).map_err(|e| e.to_string())?,
    };

    // Type checking (with the chosen policy and strictness).
    let checker = Typechecker::with_policy(&decls, opts.policy.clone());
    let checker = if opts.strict {
        checker.strict()
    } else {
        checker
    };
    let ty = checker.check_closed(&core).map_err(|e| e.to_string())?;

    match opts.emit {
        Emit::Type => {
            println!("{ty}");
            return Ok(());
        }
        Emit::Core => {
            println!("{core}");
            return Ok(());
        }
        Emit::Explain => {
            explain_queries(&core)?;
            return Ok(());
        }
        Emit::SystemF => {
            let (_, fe) = implicit_elab::elaborate(&decls, &core).map_err(|e| e.to_string())?;
            println!("{fe}");
            return Ok(());
        }
        Emit::Value => {}
    }

    let elab_value = if opts.semantics != Semantics::Opsem {
        Some(
            implicit_elab::run_with(&decls, &core, &opts.policy)
                .map_err(|e| e.to_string())?
                .value
                .to_string(),
        )
    } else {
        None
    };
    let opsem_value = if opts.semantics != Semantics::Elab {
        Some(
            implicit_opsem::Interpreter::new(&decls)
                .with_policy(opts.policy.clone())
                .eval(&core)
                .map_err(|e| e.to_string())?
                .to_string(),
        )
    } else {
        None
    };
    match (elab_value, opsem_value) {
        (Some(a), Some(b)) => {
            if a != b {
                return Err(format!("semantics disagree: elaboration {a} vs opsem {b}"));
            }
            println!("{a} : {ty}");
        }
        (Some(a), None) | (None, Some(a)) => println!("{a} : {ty}"),
        (None, None) => unreachable!("one semantics is always selected"),
    }
    Ok(())
}

/// Prints a resolution explanation for every top-level query the
/// program's type checking performed, by re-resolving the queries in
/// an empty environment context (only meaningful for the outermost
/// scope) — for scoped queries, the explanations are produced during
/// a dedicated traversal.
fn explain_queries(core: &Expr) -> Result<(), String> {
    // Walk the term, maintaining the implicit environment exactly as
    // the type checker does, and print a derivation per query.
    use implicit_core::env::ImplicitEnv;
    fn walk(env: &mut ImplicitEnv, e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Query(rho) => {
                match implicit_core::resolve::resolve(env, rho, &ResolutionPolicy::paper()) {
                    Ok(res) => {
                        let stats = res.stats(env);
                        out.push(format!(
                            "{}steps: {}, rules tried: {}, assumed: {}\n",
                            res.explain(),
                            stats.steps,
                            stats.rules_tried,
                            stats.assumed
                        ));
                    }
                    Err(err) => out.push(format!("?({rho}) — unresolved: {err}\n")),
                }
            }
            Expr::RuleAbs(rho, body) => {
                env.push(rho.context().to_vec());
                walk(env, body, out);
                env.pop();
            }
            Expr::Lam(_, _, b) | Expr::UnOp(_, b) | Expr::Fst(b) | Expr::Snd(b) => {
                walk(env, b, out)
            }
            Expr::App(a, b) | Expr::BinOp(_, a, b) | Expr::Pair(a, b) | Expr::Cons(a, b) => {
                walk(env, a, out);
                walk(env, b, out);
            }
            Expr::TyApp(a, _) => walk(env, a, out),
            Expr::RuleApp(f, args) => {
                walk(env, f, out);
                for (a, _) in args {
                    walk(env, a, out);
                }
            }
            Expr::If(a, b, c) => {
                walk(env, a, out);
                walk(env, b, out);
                walk(env, c, out);
            }
            Expr::ListCase {
                scrut, nil, cons, ..
            } => {
                walk(env, scrut, out);
                walk(env, nil, out);
                walk(env, cons, out);
            }
            Expr::Fix(_, _, b) => walk(env, b, out),
            Expr::Make(_, _, fields) => {
                for (_, fe) in fields {
                    walk(env, fe, out);
                }
            }
            Expr::Proj(a, _) => walk(env, a, out),
            Expr::Inject(_, _, args) => {
                for a in args {
                    walk(env, a, out);
                }
            }
            Expr::Match(scrut, arms) => {
                walk(env, scrut, out);
                for arm in arms {
                    walk(env, &arm.body, out);
                }
            }
            Expr::Int(_)
            | Expr::Bool(_)
            | Expr::Str(_)
            | Expr::Unit
            | Expr::Var(_)
            | Expr::Nil(_) => {}
        }
    }
    let mut env = ImplicitEnv::new();
    let mut out = Vec::new();
    walk(&mut env, core, &mut out);
    if out.is_empty() {
        println!("(no queries)");
    }
    for block in out {
        println!("{block}");
    }
    Ok(())
}
