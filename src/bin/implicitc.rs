//! `implicitc` — a compiler driver for the implicit calculus.
//!
//! ```text
//! implicitc [OPTIONS] <FILE>
//! implicitc [OPTIONS] -e "<PROGRAM>"
//! implicitc [OPTIONS] --batch <DIR> [--jobs <M>]
//!
//! Options:
//!   --lang core|source     input language (default: by extension —
//!                          .imp/.lc = core λ⇒, .si = source; else core)
//!   --emit value|type|core|systemf|explain
//!                          what to print (default: value)
//!   --semantics elab|opsem|both
//!                          evaluation route (default: both, compared)
//!   --policy paper|most-specific|env-extension
//!   --backend tree|vm|vm-stack
//!                          how the elaborated System F term is
//!                          evaluated: the tree-walking evaluator
//!                          (default), the closure-converted bytecode
//!                          VM on its register ISA, or the same VM on
//!                          the legacy stack ISA (kept for one
//!                          release for differential testing)
//!   --strict               enable strict static checks (termination,
//!                          coherence)
//!   --batch <DIR>          compile every core program (*.imp, *.lc)
//!                          in DIR through one warm session per
//!                          worker; DIR/prelude.imp (optional) holds
//!                          shared declarations plus `let`/`implicit`
//!                          bindings wrapped around `unit`, compiled
//!                          once per worker instead of once per
//!                          program
//!   --jobs <M>             batch worker threads (default 1), fed by
//!                          a work-stealing deque
//!   --cache-dir <D>        persistent artifact store: sessions are
//!                          loaded from content-addressed prelude
//!                          snapshots in D when one matches (falling
//!                          back to an incremental rebuild on a
//!                          prelude edit, and a cold build otherwise)
//!                          and saved back after a cold build. In
//!                          single-program mode the program's leading
//!                          `let`/`implicit` wrappers form the cached
//!                          prelude; in batch mode it is
//!                          DIR/prelude.imp. Requires --emit value.
//!   --trace <FILE>         write a Chrome trace-event JSON file
//!                          (open in about:tracing or Perfetto):
//!                          phase spans, per-query resolution events,
//!                          cache/memo traffic, VM counters, and — in
//!                          batch mode — per-worker job lanes
//!   --metrics              print the unified metrics table (queries,
//!                          candidates, cache/memo hit rates, fuel)
//!                          after the result
//!   --vm-stats             print VM execution statistics after the
//!                          result: the per-opcode dispatch histogram,
//!                          register-count/frame-width stats, and the
//!                          compiler's fusion totals (instructions
//!                          scanned, fusion rate, emitted
//!                          superinstructions by mnemonic); requires
//!                          --backend vm or vm-stack
//!   --xcheck               cross-check every query site with the
//!                          intersection-subtyping resolver (the
//!                          conformance harness's fifth leg): the
//!                          logic and subtyping engines must produce
//!                          identical evidence or identical failures
//! ```
//!
//! Exit status 0 on success, 1 on any error (reported to stderr).

use std::cell::RefCell;
use std::process::ExitCode;
use std::rc::Rc;
use std::time::Instant;

use implicit_core::resolve::ResolutionPolicy;
use implicit_core::syntax::{Declarations, Expr};
use implicit_core::trace::{
    chrome_trace_json, ChromeRow, ChromeSink, FanSink, MetricsRegistry, MetricsSink, Phase,
    SharedSink, TraceEvent, TraceSink,
};
use implicit_core::typeck::Typechecker;
use implicit_pipeline::Backend;

struct Options {
    lang: Lang,
    emit: Emit,
    semantics: Semantics,
    policy: ResolutionPolicy,
    backend: Backend,
    strict: bool,
    input: Option<Input>,
    batch: Option<String>,
    connect: Option<String>,
    cache_dir: Option<String>,
    jobs: usize,
    trace: Option<String>,
    metrics: bool,
    vm_stats: bool,
    xcheck: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Lang {
    Core,
    Source,
    Auto,
}

#[derive(PartialEq, Clone, Copy)]
enum Emit {
    Value,
    Type,
    Core,
    SystemF,
    Explain,
}

#[derive(PartialEq, Clone, Copy)]
enum Semantics {
    Elab,
    Opsem,
    Both,
}

enum Input {
    File(String),
    Inline(String),
}

fn usage() -> String {
    "usage: implicitc [--lang core|source] [--emit value|type|core|systemf|explain] \
     [--semantics elab|opsem|both] [--policy paper|most-specific|env-extension] \
     [--backend tree|vm|vm-stack] [--strict] [--trace <file.json>] [--metrics] [--vm-stats] \
     [--xcheck] [--cache-dir <d>] [--connect <host:port>] \
     (<file> | -e <program> | --batch <dir> [--jobs <m>])"
        .to_owned()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        lang: Lang::Auto,
        emit: Emit::Value,
        semantics: Semantics::Both,
        policy: ResolutionPolicy::paper(),
        backend: Backend::Tree,
        strict: false,
        input: None,
        batch: None,
        connect: None,
        cache_dir: None,
        jobs: 1,
        trace: None,
        metrics: false,
        vm_stats: false,
        xcheck: false,
    };
    let mut input: Option<Input> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--lang" => {
                opts.lang = match it.next().map(String::as_str) {
                    Some("core") => Lang::Core,
                    Some("source") => Lang::Source,
                    other => return Err(format!("--lang: expected core|source, got {other:?}")),
                }
            }
            "--emit" => {
                opts.emit = match it.next().map(String::as_str) {
                    Some("value") => Emit::Value,
                    Some("type") => Emit::Type,
                    Some("core") => Emit::Core,
                    Some("systemf") => Emit::SystemF,
                    Some("explain") => Emit::Explain,
                    other => {
                        return Err(format!(
                            "--emit: expected value|type|core|systemf|explain, got {other:?}"
                        ))
                    }
                }
            }
            "--semantics" => {
                opts.semantics = match it.next().map(String::as_str) {
                    Some("elab") => Semantics::Elab,
                    Some("opsem") => Semantics::Opsem,
                    Some("both") => Semantics::Both,
                    other => {
                        return Err(format!(
                            "--semantics: expected elab|opsem|both, got {other:?}"
                        ))
                    }
                }
            }
            "--policy" => {
                opts.policy = match it.next().map(String::as_str) {
                    Some("paper") => ResolutionPolicy::paper(),
                    Some("most-specific") => ResolutionPolicy::paper().with_most_specific(),
                    Some("env-extension") => ResolutionPolicy::paper().with_env_extension(),
                    other => {
                        return Err(format!(
                            "--policy: expected paper|most-specific|env-extension, got {other:?}"
                        ))
                    }
                }
            }
            "--backend" => {
                opts.backend = match it.next().map(String::as_str).and_then(Backend::parse) {
                    Some(b) => b,
                    None => return Err("--backend: expected tree|vm|vm-stack".to_owned()),
                }
            }
            "--strict" => opts.strict = true,
            "--batch" => {
                let dir = it
                    .next()
                    .ok_or_else(|| "--batch needs a directory argument".to_owned())?;
                opts.batch = Some(dir.clone());
            }
            "--connect" => {
                let addr = it
                    .next()
                    .ok_or_else(|| "--connect needs a host:port argument".to_owned())?;
                opts.connect = Some(addr.clone());
            }
            "--cache-dir" => {
                let dir = it
                    .next()
                    .ok_or_else(|| "--cache-dir needs a directory argument".to_owned())?;
                opts.cache_dir = Some(dir.clone());
            }
            "--jobs" => {
                let arg = it
                    .next()
                    .ok_or_else(|| "--jobs needs a thread count".to_owned())?;
                opts.jobs = match arg.parse::<usize>() {
                    Ok(m) if m >= 1 => m,
                    _ => return Err(format!("--jobs: expected a count ≥ 1, got `{arg}`")),
                }
            }
            "--trace" => {
                let path = it
                    .next()
                    .ok_or_else(|| "--trace needs an output file argument".to_owned())?;
                opts.trace = Some(path.clone());
            }
            "--metrics" => opts.metrics = true,
            "--vm-stats" => opts.vm_stats = true,
            "--xcheck" => opts.xcheck = true,
            "-e" => {
                let prog = it
                    .next()
                    .ok_or_else(|| "-e needs a program argument".to_owned())?;
                input = Some(Input::Inline(prog.clone()));
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => input = Some(Input::File(other.to_owned())),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    if opts.batch.is_some() {
        if input.is_some() {
            return Err("--batch takes its programs from the directory; \
                 drop the <file> / -e argument"
                .to_owned());
        }
        if opts.emit != Emit::Value {
            return Err("--batch only supports --emit value".to_owned());
        }
        if opts.lang == Lang::Source {
            return Err("--batch compiles core programs (*.imp, *.lc) only".to_owned());
        }
    } else {
        opts.input = Some(input.ok_or_else(usage)?);
    }
    if opts.vm_stats && opts.backend.isa().is_none() {
        return Err("--vm-stats requires --backend vm or vm-stack".to_owned());
    }
    if opts.xcheck && opts.batch.is_some() {
        return Err("--xcheck verifies a single program; drop --batch".to_owned());
    }
    if opts.cache_dir.is_some() && opts.emit != Emit::Value {
        return Err("--cache-dir caches evaluation sessions; it requires --emit value".to_owned());
    }
    if opts.connect.is_some() {
        if opts.emit != Emit::Value && opts.emit != Emit::Type {
            return Err("--connect supports --emit value|type only".to_owned());
        }
        if opts.lang == Lang::Source {
            return Err("--connect speaks core programs only".to_owned());
        }
        if opts.cache_dir.is_some() {
            return Err(
                "--connect: the artifact store lives daemon-side; drop --cache-dir".to_owned(),
            );
        }
        if opts.xcheck || opts.vm_stats || opts.trace.is_some() {
            return Err("--connect is a thin client; drop --xcheck/--vm-stats/--trace".to_owned());
        }
    }
    Ok(opts)
}

/// Everything `--vm-stats` prints, collected from whichever mode ran
/// (one compiler + VM in single-program mode; merged across warm
/// worker sessions in batch mode).
struct VmReport {
    fusion: systemf::compile::FusionStats,
    /// Per-opcode dispatch counts, sorted descending.
    histogram: Vec<(&'static str, u64)>,
    /// Registers per compiled function frame.
    frame_widths: Vec<u16>,
}

/// Prints the `--vm-stats` report: the per-opcode dispatch histogram,
/// register-count/frame-width stats, and the compiler's cumulative
/// fusion totals with the emitted superinstruction mix.
fn print_vm_stats(report: &VmReport) {
    println!("vm stats:");
    let dispatched: u64 = report.histogram.iter().map(|(_, n)| n).sum();
    println!("  instrs dispatched: {dispatched}");
    println!("  dispatch histogram:");
    for (mnemonic, n) in &report.histogram {
        let pct = 100.0 * *n as f64 / dispatched.max(1) as f64;
        println!("    {mnemonic:<32} {n:>10} ({pct:.1}%)");
    }
    let widths = &report.frame_widths;
    let widest = widths.iter().copied().max().unwrap_or(0);
    let total: u64 = widths.iter().map(|w| u64::from(*w)).sum();
    let mean = total as f64 / widths.len().max(1) as f64;
    println!(
        "  frames: {} functions, {mean:.1} registers/frame mean, {widest} widest",
        widths.len()
    );
    let fs = &report.fusion;
    println!("  instrs scanned: {}", fs.instrs_scanned);
    let pct = if fs.instrs_scanned == 0 {
        0.0
    } else {
        100.0 * fs.fused as f64 / fs.instrs_scanned as f64
    };
    println!("  instrs fused away: {} ({pct:.1}%)", fs.fused);
    let mut kinds: Vec<(&str, u64)> = fs.fused_by_kind.iter().map(|(k, v)| (*k, *v)).collect();
    kinds.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("  superinstructions emitted:");
    for (kind, n) in kinds {
        println!("    {kind:<32} {n}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match (&opts.connect, &opts.batch) {
        (Some(addr), _) => run_connect_mode(&opts, addr),
        (None, Some(dir)) => run_batch_mode(&opts, dir),
        (None, None) => run(&opts),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("implicitc: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Observability plumbing for single-program mode: an always-present
/// metrics accumulator plus an optional Chrome-trace recorder, fanned
/// into one shared sink that every pipeline stage writes through. The
/// sink is `None` (and every `emit` a no-op) unless `--trace` or
/// `--metrics` was given.
struct Tracer {
    sink: Option<SharedSink>,
    chrome: Option<Rc<RefCell<ChromeSink>>>,
    metrics: Rc<RefCell<MetricsSink>>,
}

impl Tracer {
    fn new(opts: &Options) -> Tracer {
        let metrics = Rc::new(RefCell::new(MetricsSink::new()));
        if opts.trace.is_none() && !opts.metrics {
            return Tracer {
                sink: None,
                chrome: None,
                metrics,
            };
        }
        let mut sinks = vec![SharedSink::from_rc(metrics.clone())];
        let chrome = opts
            .trace
            .as_ref()
            .map(|_| Rc::new(RefCell::new(ChromeSink::new())));
        if let Some(c) = &chrome {
            sinks.push(SharedSink::from_rc(c.clone()));
        }
        Tracer {
            sink: Some(SharedSink::new(FanSink { sinks })),
            chrome,
            metrics,
        }
    }

    fn emit(&self, ev: TraceEvent) {
        if let Some(sink) = &self.sink {
            let mut sink = sink.clone();
            sink.event(ev);
        }
    }

    /// Brackets `f` in a `PhaseStart`/`PhaseEnd` pair (balanced even
    /// when `f`'s result is an error the caller then propagates).
    fn span<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        self.emit(TraceEvent::PhaseStart { phase });
        let out = f();
        self.emit(TraceEvent::PhaseEnd { phase });
        out
    }

    /// Writes the Chrome trace and/or prints the metrics table, as
    /// requested on the command line.
    fn finish(&self, opts: &Options) -> Result<(), String> {
        if let Some(path) = &opts.trace {
            let chrome = self.chrome.as_ref().expect("--trace allocates a recorder");
            let rows = std::mem::replace(&mut *chrome.borrow_mut(), ChromeSink::new()).into_rows();
            std::fs::write(path, chrome_trace_json(&rows))
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        }
        if opts.metrics {
            print!("{}", self.metrics.borrow().metrics.render_table());
        }
        Ok(())
    }
}

fn run(opts: &Options) -> Result<(), String> {
    let input = opts.input.as_ref().expect("single-program mode has input");
    let (src, lang) = match input {
        Input::File(path) => {
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let lang = match opts.lang {
                Lang::Auto if path.ends_with(".si") => Lang::Source,
                Lang::Auto => Lang::Core,
                other => other,
            };
            (src, lang)
        }
        Input::Inline(src) => {
            let lang = if opts.lang == Lang::Auto {
                Lang::Core
            } else {
                opts.lang
            };
            (src.clone(), lang)
        }
    };

    let tracer = Tracer::new(opts);

    // Front end: obtain declarations and a core expression.
    let (decls, core): (Declarations, Expr) = tracer.span(Phase::Parse, || match lang {
        Lang::Source => {
            let compiled = implicit_source::compile(&src).map_err(|e| e.to_string())?;
            Ok((compiled.decls, compiled.core))
        }
        _ => implicit_core::parse::parse_program(&src).map_err(|e| e.to_string()),
    })?;

    // Type checking (with the chosen policy and strictness).
    let checker = Typechecker::with_policy(&decls, opts.policy.clone());
    let checker = if opts.strict {
        checker.strict()
    } else {
        checker
    };
    let checker = match &tracer.sink {
        Some(sink) => checker.with_trace(sink.clone()),
        None => checker,
    };
    let ty = tracer.span(Phase::Typecheck, || {
        checker.check_closed(&core).map_err(|e| e.to_string())
    })?;

    // --xcheck: decide every query site with both the logic resolver
    // and the intersection-subtyping resolver (the conformance
    // harness's fifth leg) and demand identical evidence/failures.
    if opts.xcheck {
        let policy = opts.policy.clone().with_max_depth(4096);
        let mut sites = 0usize;
        let mut mismatch: Option<String> = None;
        implicit_core::subtyping::walk_query_sites(&core, &mut |env, query| {
            sites += 1;
            if mismatch.is_none() {
                if let Err(detail) = implicit_core::subtyping::cross_check(env, query, &policy) {
                    mismatch = Some(format!("query `{query}`: {detail}"));
                }
            }
        });
        if let Some(detail) = mismatch {
            return Err(format!("xcheck: engines disagree — {detail}"));
        }
        eprintln!("xcheck: {sites} query site(s), logic ≡ subtyping");
    }

    match opts.emit {
        Emit::Type => {
            println!("{ty}");
            return tracer.finish(opts);
        }
        Emit::Core => {
            println!("{core}");
            return tracer.finish(opts);
        }
        Emit::Explain => {
            explain_queries(&core)?;
            return tracer.finish(opts);
        }
        Emit::SystemF => {
            let (_, fe) = implicit_elab::elaborate(&decls, &core).map_err(|e| e.to_string())?;
            println!("{fe}");
            return tracer.finish(opts);
        }
        Emit::Value => {}
    }

    // --cache-dir: run through a session loaded-or-built from the
    // persistent artifact store instead of the one-shot pipeline.
    if let Some(dir) = &opts.cache_dir {
        return run_single_cached(opts, dir, &decls, &core, &ty.to_string(), &tracer);
    }

    let mut vm_report: Option<VmReport> = None;
    let elab_value = if opts.semantics != Semantics::Opsem {
        let mut elab = implicit_elab::Elaborator::with_policy(&decls, opts.policy.clone());
        if let Some(sink) = &tracer.sink {
            elab.set_trace(Some(sink.clone()));
        }
        let (_, target) = tracer.span(Phase::Elaborate, || {
            elab.elaborate(&core).map_err(|e| e.to_string())
        })?;
        let fdecls = implicit_elab::translate_decls(&decls);
        tracer
            .span(Phase::Preservation, || systemf::typecheck(&fdecls, &target))
            .map_err(|e| format!("type preservation violated: {e}"))?;
        let v = match opts.backend {
            Backend::Tree => {
                let mut ev = systemf::Evaluator::new();
                tracer
                    .span(Phase::Eval, || {
                        let value = ev.eval(&target);
                        tracer.emit(TraceEvent::TreeEval {
                            fuel: ev.fuel_used(),
                        });
                        value
                    })
                    .map_err(|e| e.to_string())?
                    .to_string()
            }
            // The VM evaluates instead of (not after) the
            // tree-walker, so deep recursion never touches the host
            // stack; preservation is still checked before erasure.
            Backend::Vm | Backend::VmStack => {
                let isa = opts.backend.isa().expect("VM backends have an ISA");
                let mut compiler = systemf::Compiler::new_with_isa(isa);
                let main = tracer
                    .span(Phase::Compile, || compiler.compile(&target))
                    .map_err(|e| format!("vm: {e}"))?;
                let mut vm = systemf::Vm::new();
                vm.set_profile(opts.vm_stats);
                let v = tracer
                    .span(Phase::Vm, || {
                        let value = vm.run(compiler.code(), main, &[]);
                        let stats = vm.stats();
                        tracer.emit(TraceEvent::VmRun {
                            fuel: stats.fuel_used,
                            tail_calls: stats.tail_calls,
                            fix_unfolds: stats.fix_unfolds,
                            match_ic_hits: stats.match_ic_hits,
                            match_ic_misses: stats.match_ic_misses,
                        });
                        value
                    })
                    .map_err(|e| format!("vm: {e}"))?
                    .to_string();
                if opts.vm_stats {
                    vm_report = Some(VmReport {
                        fusion: compiler.fusion_stats().clone(),
                        histogram: vm.dispatch_histogram(),
                        frame_widths: compiler.code().funcs.iter().map(|f| f.nslots).collect(),
                    });
                }
                v
            }
        };
        Some(v)
    } else {
        None
    };
    let opsem_value = if opts.semantics != Semantics::Elab {
        let mut interp = implicit_opsem::Interpreter::new(&decls).with_policy(opts.policy.clone());
        if let Some(sink) = &tracer.sink {
            interp.set_trace(Some(sink.clone()));
        }
        Some(
            tracer
                .span(Phase::Opsem, || interp.eval(&core))
                .map_err(|e| e.to_string())?
                .to_string(),
        )
    } else {
        None
    };
    match (elab_value, opsem_value) {
        (Some(a), Some(b)) => {
            if a != b {
                return Err(format!("semantics disagree: elaboration {a} vs opsem {b}"));
            }
            println!("{a} : {ty}");
        }
        (Some(a), None) | (None, Some(a)) => println!("{a} : {ty}"),
        (None, None) => unreachable!("one semantics is always selected"),
    }
    if let Some(report) = &vm_report {
        print_vm_stats(report);
    }
    tracer.finish(opts)
}

/// Peels the program's leading `let`/`implicit` wrappers into a
/// cacheable [`implicit_pipeline::Prelude`] (lets first, then
/// single-binding implicits — the session convention) and returns the
/// residual body. Splitting stops at the first non-wrapper node, so
/// any program splits; a program with no wrappers yields the empty
/// prelude, whose artifact is trivial but still valid.
fn split_prelude(e: &Expr) -> (implicit_pipeline::Prelude, Expr) {
    let mut prelude = implicit_pipeline::Prelude::new();
    let mut cur = e;
    while let Expr::App(f, bound) = cur {
        match &**f {
            Expr::Lam(x, ty, body) => {
                prelude.lets.push((*x, ty.clone(), (**bound).clone()));
                cur = body;
            }
            _ => break,
        }
    }
    loop {
        match cur {
            Expr::RuleApp(f, args) if args.len() == 1 => match &**f {
                Expr::RuleAbs(_, body) => {
                    let (a, r) = &args[0];
                    prelude.implicits.push((a.clone(), r.clone()));
                    cur = body;
                }
                _ => break,
            },
            _ => break,
        }
    }
    (prelude, cur.clone())
}

/// One human-readable line describing how the store satisfied a load.
fn outcome_line(outcome: &implicit_pipeline::artifact::LoadOutcome) -> String {
    use implicit_pipeline::artifact::LoadOutcome;
    match outcome {
        LoadOutcome::Exact => "exact artifact hit (no phase re-ran)".to_owned(),
        LoadOutcome::Incremental(s) => format!(
            "incremental rebuild ({}/{} bindings reused, {} cache entries retained)",
            s.bindings_reused, s.bindings_total, s.cache_entries_retained
        ),
        LoadOutcome::Cold => "cold build (artifact saved)".to_owned(),
    }
}

/// Single-program `--cache-dir` mode: the program's leading wrappers
/// become the session prelude, loaded-or-built through the artifact
/// store ([`implicit_pipeline::artifact::load_or_build`] — exact hit,
/// incremental rebuild on a prelude edit, or cold build); the
/// residual body then runs through the session under the chosen
/// `--semantics` and `--backend`.
fn run_single_cached(
    opts: &Options,
    dir: &str,
    decls: &Declarations,
    core: &Expr,
    ty: &str,
    tracer: &Tracer,
) -> Result<(), String> {
    let (prelude, body) = split_prelude(core);
    let store = implicit_pipeline::artifact::ArtifactStore::new(dir)
        .map_err(|e| format!("--cache-dir `{dir}`: {e}"))?;
    let (mut session, outcome) = implicit_pipeline::artifact::load_or_build(
        &store,
        decls,
        &opts.policy,
        &prelude,
        true,
        false,
        opts.backend.isa().unwrap_or_default(),
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "cache: {} ({} lets, {} implicits)",
        outcome_line(&outcome),
        prelude.lets.len(),
        prelude.implicits.len()
    );
    if let Some(sink) = &tracer.sink {
        session.set_trace(Some(sink.clone()));
    }
    session.set_profile_dispatch(opts.vm_stats);
    let elab_value = if opts.semantics != Semantics::Opsem {
        Some(
            session
                .run_with_backend(&body, opts.backend)
                .map_err(|e| e.to_string())?
                .value
                .to_string(),
        )
    } else {
        None
    };
    let opsem_value = if opts.semantics != Semantics::Elab {
        Some(
            session
                .run_opsem(&body)
                .map_err(|e| e.to_string())?
                .to_string(),
        )
    } else {
        None
    };
    match (elab_value, opsem_value) {
        (Some(a), Some(b)) => {
            if a != b {
                return Err(format!("semantics disagree: elaboration {a} vs opsem {b}"));
            }
            println!("{a} : {ty}");
        }
        (Some(a), None) | (None, Some(a)) => println!("{a} : {ty}"),
        (None, None) => unreachable!("one semantics is always selected"),
    }
    if opts.vm_stats {
        let mut histogram = session.dispatch_histogram();
        histogram.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        print_vm_stats(&VmReport {
            fusion: session.fusion_stats().clone(),
            histogram,
            frame_widths: session.frame_widths(),
        });
    }
    session.set_trace(None);
    // Re-save the now-warmer artifact (best-effort): prelude-pure
    // derivation-cache entries learned while running the body persist
    // to the next process under the same content key.
    let isa = opts.backend.isa().unwrap_or_default();
    let key =
        implicit_pipeline::artifact::artifact_key(decls, &prelude, &opts.policy, true, false, isa);
    let config = implicit_pipeline::artifact::config_key(decls, &opts.policy, true, false, isa);
    let _ = store.save(key, config, &session.to_artifact());
    tracer.finish(opts)
}

/// Parses a batch prelude source into the shared declarations and
/// the session prelude ([`implicit_pipeline::Prelude::from_wrapped`]
/// convention: `let`/`implicit` wrappers around `unit`). `None`
/// means an empty prelude.
fn parse_batch_prelude(
    src: Option<&str>,
) -> Result<(Declarations, implicit_pipeline::Prelude), String> {
    match src {
        None => Ok((Declarations::new(), implicit_pipeline::Prelude::new())),
        Some(src) => {
            let (decls, expr) =
                implicit_core::parse::parse_program(src).map_err(|e| format!("prelude: {e}"))?;
            let prelude = implicit_pipeline::Prelude::from_wrapped(&expr)?;
            Ok((decls, prelude))
        }
    }
}

/// Runs one batch program against a worker's warm session, honoring
/// `--semantics`. Returns the printable result line body.
fn run_batch_program(
    session: &mut implicit_pipeline::Session<'_>,
    semantics: Semantics,
    backend: Backend,
    src: &str,
) -> Result<String, String> {
    let (pdecls, expr) = implicit_core::parse::parse_program(src).map_err(|e| e.to_string())?;
    if !pdecls.is_empty() {
        return Err(
            "batch programs must not declare types; declare them in prelude.imp".to_owned(),
        );
    }
    let elab = if semantics != Semantics::Opsem {
        Some(
            session
                .run_with_backend(&expr, backend)
                .map_err(|e| e.to_string())?,
        )
    } else {
        None
    };
    let opsem = if semantics != Semantics::Elab {
        Some(
            session
                .run_opsem(&expr)
                .map_err(|e| e.to_string())?
                .to_string(),
        )
    } else {
        None
    };
    match (elab, opsem) {
        (Some(o), Some(v)) => {
            let ev = o.value.to_string();
            if ev != v {
                return Err(format!("semantics disagree: elaboration {ev} vs opsem {v}"));
            }
            Ok(format!("{ev} : {}", o.source_type))
        }
        (Some(o), None) => Ok(format!("{} : {}", o.value, o.source_type)),
        (None, Some(v)) => Ok(v),
        (None, None) => unreachable!("one semantics is always selected"),
    }
}

/// A scanned batch directory: `(name, source)` programs in name
/// order, plus the shared prelude source if present.
type BatchScan = (Vec<(String, String)>, Option<String>);

/// Scans a batch directory: core programs (`*.imp`, `*.lc`) in name
/// order, plus the shared `prelude.imp`/`prelude.lc` source if
/// present.
fn scan_batch_dir(dir: &str) -> Result<BatchScan, String> {
    let mut programs: Vec<(String, String)> = Vec::new();
    let mut prelude_src: Option<String> = None;
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read directory `{dir}`: {e}"))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_owned(),
            None => continue,
        };
        let is_core = name.ends_with(".imp") || name.ends_with(".lc");
        if !is_core {
            continue;
        }
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        if name == "prelude.imp" || name == "prelude.lc" {
            prelude_src = Some(src);
        } else {
            programs.push((name, src));
        }
    }
    if programs.is_empty() {
        return Err(format!("no core programs (*.imp, *.lc) in `{dir}`"));
    }
    programs.sort_by(|a, b| a.0.cmp(&b.0));
    Ok((programs, prelude_src))
}

/// `--connect` mode: run as a thin client of a resident `implicitd`
/// (DESIGN.md §S32) — programs are shipped as source over the framed
/// JSON protocol and evaluated in a daemon-side warm tenant, so the
/// client process does no compilation at all. Batch directories open
/// one shared tenant for their `prelude.imp`; `--jobs` fans requests
/// out over that many concurrent connections.
fn run_connect_mode(opts: &Options, addr: &str) -> Result<(), String> {
    use implicit_pipeline::service::Client;
    let connect = || Client::connect(addr).map_err(|e| format!("--connect `{addr}`: {e}"));
    match &opts.batch {
        None => {
            let input = opts.input.as_ref().expect("single-program mode has input");
            let src = match input {
                Input::File(path) => std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?,
                Input::Inline(src) => src.clone(),
            };
            // Split out declarations locally: the daemon tenant takes
            // them (with an empty binding prelude) at `open`, and the
            // request ships only the expression.
            let (decls, expr) =
                implicit_core::parse::parse_program(&src).map_err(|e| e.to_string())?;
            if !decls.is_empty() {
                return Err(
                    "--connect programs must not declare types; put declarations in a \
                     batch prelude.imp"
                        .to_owned(),
                );
            }
            let tenant = format!("cli-{}", std::process::id());
            let mut c = connect()?;
            c.open_prelude(
                &tenant,
                &implicit_pipeline::service::prelude_source(&implicit_pipeline::Prelude::new()),
                opts.backend,
            )?;
            let program = expr.to_string();
            let out = match opts.emit {
                Emit::Type => c.typecheck(&tenant, &program),
                _ => c.eval(&tenant, &program).map(|(v, t)| format!("{v} : {t}")),
            };
            let closed = c.close(&tenant);
            let line = out?;
            closed?;
            println!("{line}");
            Ok(())
        }
        Some(dir) => {
            let (programs, prelude_src) = scan_batch_dir(dir)?;
            let tenant = format!("batch-{}", std::process::id());
            let prelude_src = prelude_src.unwrap_or_else(|| {
                implicit_pipeline::service::prelude_source(&implicit_pipeline::Prelude::new())
            });
            let mut c = connect()?;
            let load = c.open_prelude(&tenant, &prelude_src, opts.backend)?;
            println!("daemon: {addr} tenant {tenant} ({load} load)");

            let total = programs.len();
            let jobs = opts.jobs.min(total.max(1));
            let next = std::sync::atomic::AtomicUsize::new(0);
            let programs = &programs;
            let next = &next;
            let tenant = &tenant;
            // Per worker: (program index, name, outcome line).
            type WorkerResults = Vec<(usize, String, Result<String, String>)>;
            let results: Vec<WorkerResults> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..jobs)
                    .map(|_| {
                        s.spawn(move || {
                            let mut out = Vec::new();
                            let mut client = match connect() {
                                Ok(c) => c,
                                Err(e) => {
                                    // Report the failure on every
                                    // program this worker would
                                    // have pulled.
                                    loop {
                                        let ix =
                                            next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                        if ix >= programs.len() {
                                            return out;
                                        }
                                        out.push((ix, programs[ix].0.clone(), Err(e.clone())));
                                    }
                                }
                            };
                            loop {
                                let ix = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if ix >= programs.len() {
                                    return out;
                                }
                                let (name, src) = &programs[ix];
                                let r = client.eval(tenant, src).map(|(v, t)| format!("{v} : {t}"));
                                out.push((ix, name.clone(), r));
                            }
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut lines: Vec<Option<(String, Result<String, String>)>> =
                (0..total).map(|_| None).collect();
            for worker in results {
                for (ix, name, r) in worker {
                    lines[ix] = Some((name, r));
                }
            }
            let mut failures = 0usize;
            for slot in lines {
                let (name, r) = slot.expect("every program ran exactly once");
                match r {
                    Ok(line) => println!("{name}: {line}"),
                    Err(e) => {
                        failures += 1;
                        println!("{name}: error: {e}");
                    }
                }
            }
            println!("batch: {total} programs, {failures} failed (jobs={jobs})");
            c.close(tenant)?;
            if failures > 0 {
                return Err(format!("{failures} of {total} programs failed"));
            }
            Ok(())
        }
    }
}

/// `--batch` mode: compiles every core program in the directory
/// through warm sessions — one [`implicit_pipeline::Session`] per
/// worker thread, fed from a work-stealing deque — and prints one
/// result line per program in file order.
fn run_batch_mode(opts: &Options, dir: &str) -> Result<(), String> {
    let (programs, prelude_src) = scan_batch_dir(dir)?;

    // Validate the prelude once up front for a single clean error;
    // workers then rebuild it infallibly (declarations and session
    // values are `Rc`-based and cannot cross threads).
    let (decls, prelude) = parse_batch_prelude(prelude_src.as_deref())?;
    implicit_pipeline::Session::new(&decls, opts.policy.clone(), &prelude)
        .map_err(|e| format!("prelude: {e}"))?;
    drop((decls, prelude));
    // Same for the artifact store: fail once here, not per worker.
    if let Some(d) = &opts.cache_dir {
        implicit_pipeline::artifact::ArtifactStore::new(d)
            .map_err(|e| format!("--cache-dir `{d}`: {e}"))?;
    }

    let total = programs.len();
    let semantics = opts.semantics;
    let backend = opts.backend;
    let policy = &opts.policy;
    let prelude_src = prelude_src.as_deref();
    let tracing = opts.trace.is_some();
    let observe = tracing || opts.metrics;
    // One wall clock shared by every worker's Chrome recorder, so the
    // per-worker lanes line up on a common time axis.
    let clock = Instant::now();
    let vm_stats = opts.vm_stats;
    let cache_dir = opts.cache_dir.as_deref();
    let outcomes = implicit_pipeline::run_batch_scoped(programs, opts.jobs, |worker, source| {
        let (decls, prelude) =
            parse_batch_prelude(prelude_src).expect("prelude validated before dispatch");
        let (mut session, load) = match cache_dir {
            // Warm-start workers from the on-disk artifact store: the
            // first worker to arrive builds and saves, the rest (and
            // every later process) rehydrate without re-running any
            // phase.
            Some(d) => {
                let store = implicit_pipeline::artifact::ArtifactStore::new(d)
                    .expect("cache dir validated before dispatch");
                let (session, outcome) = implicit_pipeline::artifact::load_or_build(
                    &store,
                    &decls,
                    policy,
                    &prelude,
                    true,
                    false,
                    backend.isa().unwrap_or_default(),
                )
                .expect("prelude validated before dispatch");
                let label = match outcome {
                    implicit_pipeline::artifact::LoadOutcome::Exact => "exact",
                    implicit_pipeline::artifact::LoadOutcome::Incremental(_) => "incremental",
                    implicit_pipeline::artifact::LoadOutcome::Cold => "cold",
                };
                (session, Some(label))
            }
            None => (
                implicit_pipeline::Session::new_configured_isa(
                    &decls,
                    policy.clone(),
                    &prelude,
                    true,
                    false,
                    backend.isa().unwrap_or_default(),
                )
                .expect("prelude validated before dispatch"),
                None,
            ),
        };
        session.set_profile_dispatch(vm_stats);
        let chrome =
            tracing.then(|| Rc::new(RefCell::new(ChromeSink::with_clock(clock, worker as u64))));
        if let Some(c) = &chrome {
            session.set_trace(Some(SharedSink::from_rc(c.clone())));
        } else if observe {
            // Metrics only: any enabled sink switches resolution-grain
            // counting on; the session keeps the counts itself.
            session.set_trace(Some(SharedSink::new(MetricsSink::new())));
        }
        let mut jobreg = MetricsRegistry::new();
        let mut out: Vec<(usize, String, Result<String, String>)> = Vec::new();
        let mut steals_seen = 0usize;
        while let Some((ix, (name, src))) = source.next() {
            let stolen = source.steals > steals_seen;
            steals_seen = source.steals;
            if observe {
                let ev = TraceEvent::JobStart {
                    worker,
                    job: ix,
                    stolen,
                };
                jobreg.record(&ev);
                if let Some(c) = &chrome {
                    c.borrow_mut().event(ev);
                }
            }
            let r = run_batch_program(&mut session, semantics, backend, &src);
            if observe {
                let ev = TraceEvent::JobFinish {
                    worker,
                    job: ix,
                    ok: r.is_ok(),
                };
                jobreg.record(&ev);
                if let Some(c) = &chrome {
                    c.borrow_mut().event(ev);
                }
            }
            out.push((ix, name, r));
        }
        session.set_trace(None);
        let mut registry = session.metrics();
        registry.merge(&jobreg);
        let rows: Vec<ChromeRow> = chrome
            .map(|c| std::mem::replace(&mut *c.borrow_mut(), ChromeSink::new()).into_rows())
            .unwrap_or_default();
        let fusion = session.fusion_stats().clone();
        let histogram = session.dispatch_histogram();
        let widths = session.frame_widths();
        // Write the drained worker's state back to the shared store:
        // inline caches and superinstruction tables warmed by this
        // batch ride along in the artifact, so the *next* batch run
        // (any process) exact-hits a hotter image than a cold build
        // would produce.
        if let Some(d) = cache_dir {
            if let Ok(store) = implicit_pipeline::artifact::ArtifactStore::new(d) {
                let isa = backend.isa().unwrap_or_default();
                let key = implicit_pipeline::artifact::artifact_key(
                    &decls, &prelude, policy, true, false, isa,
                );
                let cfg = implicit_pipeline::artifact::config_key(&decls, policy, true, false, isa);
                let _ = store.save(key, cfg, &session.to_artifact());
            }
        }
        (out, rows, registry, fusion, histogram, widths, load)
    });

    let mut lines: Vec<Option<(String, Result<String, String>)>> =
        (0..total).map(|_| None).collect();
    let mut rows: Vec<ChromeRow> = Vec::new();
    let mut registry = MetricsRegistry::new();
    let mut fusion = systemf::compile::FusionStats::default();
    let mut dispatch: std::collections::HashMap<&'static str, u64> =
        std::collections::HashMap::new();
    let mut frame_widths: Vec<u16> = Vec::new();
    let (mut exact, mut incremental, mut cold) = (0usize, 0usize, 0usize);
    for (
        worker_out,
        worker_rows,
        worker_registry,
        worker_fusion,
        worker_hist,
        worker_widths,
        worker_load,
    ) in outcomes
    {
        for (ix, name, r) in worker_out {
            lines[ix] = Some((name, r));
        }
        rows.extend(worker_rows);
        registry.merge(&worker_registry);
        fusion.merge(&worker_fusion);
        for (mnemonic, n) in worker_hist {
            *dispatch.entry(mnemonic).or_insert(0) += n;
        }
        frame_widths.extend(worker_widths);
        match worker_load {
            Some("exact") => exact += 1,
            Some("incremental") => incremental += 1,
            Some("cold") => cold += 1,
            _ => {}
        }
    }
    if let Some(path) = &opts.trace {
        rows.sort_by_key(|row| (row.1, row.0));
        std::fs::write(path, chrome_trace_json(&rows))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    let mut failures = 0usize;
    for slot in lines {
        let (name, r) = slot.expect("every program compiled exactly once");
        match r {
            Ok(line) => println!("{name}: {line}"),
            Err(e) => {
                failures += 1;
                println!("{name}: error: {e}");
            }
        }
    }
    println!(
        "batch: {total} programs, {failures} failed (jobs={})",
        opts.jobs
    );
    if opts.cache_dir.is_some() {
        // Per-worker store ladder outcomes plus decode-failure count;
        // the cache smoke harness asserts `fallbacks=0` on warm runs.
        println!(
            "cache: exact={exact} incremental={incremental} cold={cold}, fallbacks={}",
            registry.artifact_fallbacks
        );
    }
    if opts.metrics {
        print!("{}", registry.render_table());
    }
    if opts.vm_stats {
        let mut histogram: Vec<(&'static str, u64)> = dispatch.into_iter().collect();
        histogram.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        print_vm_stats(&VmReport {
            fusion,
            histogram,
            frame_widths,
        });
    }
    if failures > 0 {
        return Err(format!("{failures} of {total} programs failed"));
    }
    Ok(())
}

/// Prints a resolution explanation for every top-level query the
/// program's type checking performed, by re-resolving the queries in
/// an empty environment context (only meaningful for the outermost
/// scope) — for scoped queries, the explanations are produced during
/// a dedicated traversal.
fn explain_queries(core: &Expr) -> Result<(), String> {
    // Walk the term, maintaining the implicit environment exactly as
    // the type checker does, and print a derivation per query.
    use implicit_core::env::ImplicitEnv;
    fn walk(env: &mut ImplicitEnv, e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Query(rho) => {
                match implicit_core::resolve::resolve(env, rho, &ResolutionPolicy::paper()) {
                    Ok(res) => {
                        let stats = res.stats(env);
                        out.push(format!(
                            "{}steps: {}, rules tried: {}, assumed: {}\n",
                            res.explain(),
                            stats.steps,
                            stats.rules_tried,
                            stats.assumed
                        ));
                    }
                    Err(err) => out.push(format!("?({rho}) — unresolved: {err}\n")),
                }
            }
            Expr::RuleAbs(rho, body) => {
                env.push(rho.context().to_vec());
                walk(env, body, out);
                env.pop();
            }
            Expr::Lam(_, _, b) | Expr::UnOp(_, b) | Expr::Fst(b) | Expr::Snd(b) => {
                walk(env, b, out)
            }
            Expr::App(a, b) | Expr::BinOp(_, a, b) | Expr::Pair(a, b) | Expr::Cons(a, b) => {
                walk(env, a, out);
                walk(env, b, out);
            }
            Expr::TyApp(a, _) => walk(env, a, out),
            Expr::RuleApp(f, args) => {
                walk(env, f, out);
                for (a, _) in args {
                    walk(env, a, out);
                }
            }
            Expr::If(a, b, c) => {
                walk(env, a, out);
                walk(env, b, out);
                walk(env, c, out);
            }
            Expr::ListCase {
                scrut, nil, cons, ..
            } => {
                walk(env, scrut, out);
                walk(env, nil, out);
                walk(env, cons, out);
            }
            Expr::Fix(_, _, b) => walk(env, b, out),
            Expr::Make(_, _, fields) => {
                for (_, fe) in fields {
                    walk(env, fe, out);
                }
            }
            Expr::Proj(a, _) => walk(env, a, out),
            Expr::Inject(_, _, args) => {
                for a in args {
                    walk(env, a, out);
                }
            }
            Expr::Match(scrut, arms) => {
                walk(env, scrut, out);
                for arm in arms {
                    walk(env, &arm.body, out);
                }
            }
            Expr::Int(_)
            | Expr::Bool(_)
            | Expr::Str(_)
            | Expr::Unit
            | Expr::Var(_)
            | Expr::Nil(_) => {}
        }
    }
    let mut env = ImplicitEnv::new();
    let mut out = Vec::new();
    walk(&mut env, core, &mut out);
    if out.is_empty() {
        println!("(no queries)");
    }
    for block in out {
        println!("{block}");
    }
    Ok(())
}
