//! `implicitd` — the resident resolution/compile daemon.
//!
//! Serves parse/typecheck/resolve/eval requests over a localhost TCP
//! socket using the length-prefixed JSON protocol of
//! [`implicit_pipeline::service`] (DESIGN.md §S32). Tenants are named
//! warm sessions: one compiled prelude each, loaded through the
//! on-disk artifact store's exact/incremental/cold ladder when
//! `--cache-dir` is given, every request a copy-on-write extension
//! that rolls back afterwards.
//!
//! ```text
//! implicitd --addr 127.0.0.1:7878 --cache-dir .implicit-cache &
//! implicitc --connect 127.0.0.1:7878 --prelude prelude.imp --batch programs/
//! ```
//!
//! Drive it with `implicitc --connect`, or speak the protocol
//! directly: each frame is a 4-byte big-endian length followed by one
//! JSON object (`{"op":"ping"}`, `{"op":"open","tenant":…,
//! "prelude":…}`, `{"op":"eval","tenant":…,"program":…}`, …).

use std::process::ExitCode;

use implicit_pipeline::service::{Daemon, DaemonConfig};

const USAGE: &str = "usage: implicitd [options]

options:
  --addr HOST:PORT     bind address (default 127.0.0.1:7878; port 0 = ephemeral)
  --cache-dir DIR      artifact store for tenant preludes (exact/incremental/cold ladder)
  --max-tenants N      tenant capacity; further opens get `tenants_exhausted` (default 8)
  --queue-cap N        per-tenant admission queue depth; a full queue
                       rejects with `overloaded` (default 64)
  --no-fusion          disable superinstruction fusion in tenant sessions
  --dict-ic            enable the dictionary inline cache in tenant sessions
  --help               this text

The daemon serves until a client sends {\"op\":\"shutdown\"}.";

fn main() -> ExitCode {
    let mut config = DaemonConfig {
        addr: "127.0.0.1:7878".to_owned(),
        ..DaemonConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        let r: Result<(), String> = (|| {
            match arg.as_str() {
                "--addr" => config.addr = value("--addr")?,
                "--cache-dir" => config.cache_dir = Some(value("--cache-dir")?.into()),
                "--max-tenants" => {
                    config.max_tenants = value("--max-tenants")?
                        .parse()
                        .map_err(|e| format!("--max-tenants: {e}"))?
                }
                "--queue-cap" => {
                    config.queue_cap = value("--queue-cap")?
                        .parse()
                        .map_err(|e| format!("--queue-cap: {e}"))?
                }
                "--no-fusion" => config.fusion = false,
                "--dict-ic" => config.dict_ic = true,
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown option `{other}`\n{USAGE}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("implicitd: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("implicitd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The smoke harness greps for this line and parses the address
    // out of it (the port may be ephemeral).
    println!("implicitd: listening on {}", daemon.addr());
    daemon.wait();
    let c = daemon.counters().snapshot();
    let fmt = |k: &str| {
        c.iter()
            .find(|(n, _)| *n == k)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    println!(
        "implicitd: stopped ({} connections, {} requests, {} ok, {} errors)",
        fmt("connections"),
        fmt("requests"),
        fmt("ok"),
        fmt("errors"),
    );
    ExitCode::SUCCESS
}
