//! `tracecheck` — validates Chrome trace-event JSON files produced by
//! `implicitc --trace`.
//!
//! ```text
//! tracecheck [--require-resolution] <file.json>...
//! ```
//!
//! Checks, per file:
//!
//! - the file parses as JSON (a small self-contained parser — no
//!   external dependencies);
//! - the top level is an object with a `traceEvents` array (the
//!   Chrome trace-event "JSON Object Format");
//! - every event carries the required fields with the right types:
//!   `name`/`cat`/`ph` strings, `ts`/`pid`/`tid` numbers, and a `ph`
//!   that is one of `B`, `E`, or `i`;
//! - instant events (`ph:"i"`) carry a scope `s`;
//! - `B`/`E` duration events are properly nested per `tid`: every
//!   `E` closes the most recent open `B` with the same name, and no
//!   span is left open at the end;
//! - at least one `phase`-category span is present;
//! - cache-marker placement: `ic`-category instants (`ic_hit` /
//!   `ic_miss`, the dictionary inline cache) only occur while an
//!   `elaborate` span is open on their thread, and `compile`-category
//!   `fusion` instants (the superinstruction fusion summary) only
//!   while a `compile` span is open.
//!
//! With `--require-resolution`, additionally requires at least one
//! `resolution`-category event (CI uses this on corpora whose
//! programs are known to contain implicit queries).
//!
//! Exit status 0 when every file validates, 1 otherwise.

use std::process::ExitCode;

/// A minimal JSON value.
#[derive(Debug)]
enum Json {
    Null,
    // The payload is only inspected by tests today, but a boolean
    // JSON value without its boolean would not be much of a parser.
    Bool(#[allow(dead_code)] bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn is_num(&self) -> bool {
        matches!(self, Json::Num(_))
    }
}

/// Recursive-descent JSON parser over a byte slice. Supports the full
/// value grammar needed by trace files; rejects trailing garbage.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_document(mut self) -> Result<Json, String> {
        self.skip_ws();
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after the document"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_obj(),
            Some(b'[') => self.parse_arr(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_num(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b"+-.eE".contains(&b)) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("malformed \\u escape"))?;
                            // Surrogate pairs do not occur in our
                            // traces; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_arr(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_obj(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Validates one parsed trace document. Returns a short summary line
/// on success.
fn validate(doc: &Json, require_resolution: bool) -> Result<String, String> {
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        Some(_) => return Err("`traceEvents` is not an array".to_owned()),
        None => return Err("missing top-level `traceEvents` array".to_owned()),
    };
    // Per-tid stack of open B spans (by name).
    let mut open: Vec<(u64, Vec<String>)> = Vec::new();
    let mut phase_spans = 0usize;
    let mut resolution_events = 0usize;
    let mut ic_events = 0usize;
    let mut fusion_events = 0usize;
    for (ix, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("event #{ix}: {field}");
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string `name`"))?
            .to_owned();
        let cat = ev
            .get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string `cat`"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string `ph`"))?;
        for field in ["ts", "pid", "tid"] {
            if !ev.get(field).is_some_and(Json::is_num) {
                return Err(ctx(&format!("missing numeric `{field}`")));
            }
        }
        let tid = match ev.get("tid") {
            Some(Json::Num(n)) => *n as u64,
            _ => unreachable!("checked above"),
        };
        let stack = match open.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, stack)) => stack,
            None => {
                open.push((tid, Vec::new()));
                &mut open.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => {
                if cat == "phase" {
                    phase_spans += 1;
                }
                stack.push(name);
            }
            "E" => match stack.pop() {
                Some(top) if top == name => {}
                Some(top) => {
                    return Err(format!(
                        "event #{ix}: `E` for `{name}` closes open span `{top}` (tid {tid})"
                    ))
                }
                None => {
                    return Err(format!(
                        "event #{ix}: `E` for `{name}` with no open span (tid {tid})"
                    ))
                }
            },
            "i" => {
                if ev.get("s").and_then(Json::as_str).is_none() {
                    return Err(ctx("instant event missing scope `s`"));
                }
                if cat == "resolution" {
                    resolution_events += 1;
                }
                // Cache markers must sit inside the pipeline stage
                // that produced them: the dictionary inline cache
                // fires during elaboration, fusion during compile.
                if cat == "ic" {
                    if !stack.iter().any(|s| s == "elaborate") {
                        return Err(format!(
                            "event #{ix}: `ic` instant `{name}` outside an open \
                             `elaborate` span (tid {tid})"
                        ));
                    }
                    ic_events += 1;
                }
                if cat == "compile" && name == "fusion" {
                    if !stack.iter().any(|s| s == "compile") {
                        return Err(format!(
                            "event #{ix}: `fusion` instant outside an open \
                             `compile` span (tid {tid})"
                        ));
                    }
                    fusion_events += 1;
                }
            }
            other => return Err(ctx(&format!("unexpected phase `{other}`"))),
        }
    }
    for (tid, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!(
                "span `{name}` left open at end of trace (tid {tid})"
            ));
        }
    }
    if phase_spans == 0 {
        return Err("no `phase`-category spans in trace".to_owned());
    }
    if require_resolution && resolution_events == 0 {
        return Err("no `resolution`-category events in trace".to_owned());
    }
    Ok(format!(
        "{} events, {phase_spans} phase spans, {resolution_events} resolution events, \
         {ic_events} ic events, {fusion_events} fusion events, {} threads",
        events.len(),
        open.len()
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut require_resolution = false;
    let mut files = Vec::new();
    for a in &args {
        match a.as_str() {
            "--require-resolution" => require_resolution = true,
            "--help" | "-h" => {
                eprintln!("usage: tracecheck [--require-resolution] <file.json>...");
                return ExitCode::FAILURE;
            }
            other => files.push(other.to_owned()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: tracecheck [--require-resolution] <file.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in &files {
        let outcome = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|src| Parser::new(&src).parse_document())
            .and_then(|doc| validate(&doc, require_resolution));
        match outcome {
            Ok(summary) => println!("{file}: ok ({summary})"),
            Err(e) => {
                failed = true;
                println!("{file}: INVALID: {e}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Json {
        Parser::new(src).parse_document().expect("valid json")
    }

    #[test]
    fn parses_scalars_and_structures() {
        let doc = parse(r#"{"a":[1,-2.5,true,null,"x\nA"],"b":{}}"#);
        let arr = doc.get("a").expect("a");
        match arr {
            Json::Arr(items) => {
                assert_eq!(items.len(), 5);
                assert!(matches!(items[2], Json::Bool(true)));
                assert!(matches!(items[3], Json::Null));
                assert_eq!(items[4].as_str(), Some("x\nA"));
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Parser::new("{} x").parse_document().is_err());
    }

    #[test]
    fn validates_a_balanced_trace() {
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"parse","cat":"phase","ph":"B","ts":0,"pid":1,"tid":1},
                {"name":"query_enter","cat":"resolution","ph":"i","ts":1,"pid":1,"tid":1,"s":"t"},
                {"name":"parse","cat":"phase","ph":"E","ts":2,"pid":1,"tid":1}
            ]}"#,
        );
        let summary = validate(&doc, true).expect("valid");
        assert!(summary.contains("3 events"));
    }

    #[test]
    fn rejects_unbalanced_spans() {
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"parse","cat":"phase","ph":"B","ts":0,"pid":1,"tid":1}
            ]}"#,
        );
        assert!(validate(&doc, false).unwrap_err().contains("left open"));
    }

    #[test]
    fn accepts_cache_markers_inside_their_phase_spans() {
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"elaborate","cat":"phase","ph":"B","ts":0,"pid":1,"tid":1},
                {"name":"ic_hit","cat":"ic","ph":"i","ts":1,"pid":1,"tid":1,"s":"t"},
                {"name":"elaborate","cat":"phase","ph":"E","ts":2,"pid":1,"tid":1},
                {"name":"compile","cat":"phase","ph":"B","ts":3,"pid":1,"tid":1},
                {"name":"fusion","cat":"compile","ph":"i","ts":4,"pid":1,"tid":1,"s":"t"},
                {"name":"compile","cat":"phase","ph":"E","ts":5,"pid":1,"tid":1}
            ]}"#,
        );
        let summary = validate(&doc, false).expect("valid");
        assert!(summary.contains("1 ic events"), "{summary}");
        assert!(summary.contains("1 fusion events"), "{summary}");
    }

    #[test]
    fn rejects_ic_marker_outside_elaborate() {
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"compile","cat":"phase","ph":"B","ts":0,"pid":1,"tid":1},
                {"name":"ic_miss","cat":"ic","ph":"i","ts":1,"pid":1,"tid":1,"s":"t"},
                {"name":"compile","cat":"phase","ph":"E","ts":2,"pid":1,"tid":1}
            ]}"#,
        );
        let err = validate(&doc, false).unwrap_err();
        assert!(err.contains("outside an open `elaborate` span"), "{err}");
    }

    #[test]
    fn rejects_fusion_marker_outside_compile() {
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"elaborate","cat":"phase","ph":"B","ts":0,"pid":1,"tid":1},
                {"name":"fusion","cat":"compile","ph":"i","ts":1,"pid":1,"tid":1,"s":"t"},
                {"name":"elaborate","cat":"phase","ph":"E","ts":2,"pid":1,"tid":1}
            ]}"#,
        );
        let err = validate(&doc, false).unwrap_err();
        assert!(err.contains("outside an open `compile` span"), "{err}");
    }

    #[test]
    fn requires_resolution_when_asked() {
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"parse","cat":"phase","ph":"B","ts":0,"pid":1,"tid":1},
                {"name":"parse","cat":"phase","ph":"E","ts":1,"pid":1,"tid":1}
            ]}"#,
        );
        assert!(validate(&doc, false).is_ok());
        assert!(validate(&doc, true).is_err());
    }
}
