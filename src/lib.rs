//! # `implicit-calculus` — a Rust reproduction of "The Implicit
//! Calculus: A New Foundation for Generic Programming" (PLDI 2012)
//!
//! This facade crate re-exports the whole system:
//!
//! * [`core`](implicit_core) — the calculus λ⇒: syntax, type system,
//!   scoped implicit environments, and the type-directed resolution
//!   judgment with polymorphic, higher-order and partial resolution;
//! * [`systemf`] — the System F elaboration target (type checker and
//!   call-by-value evaluator);
//! * [`elab`](implicit_elab) — the type-directed translation of λ⇒
//!   into System F (the paper's dynamic semantics), with executable
//!   type-preservation checking;
//! * [`opsem`](implicit_opsem) — the direct big-step operational
//!   semantics with runtime resolution and partially resolved rule
//!   closures (extended report);
//! * [`source`](implicit_source) — a small source language with
//!   interfaces, `implicit` scoping and implicit instantiation via
//!   type inference, encoded into λ⇒ (§5).
//!
//! See `README.md` for a tour, `DESIGN.md` for the paper-to-code map,
//! and `EXPERIMENTS.md` for the reproduction ledger.
//!
//! ## Quickstart
//!
//! ```
//! use implicit_calculus::prelude::*;
//!
//! // §2 of the paper: fetch implicit values by type.
//! let e = parse_expr(
//!     "implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool",
//! ).unwrap();
//! let decls = Declarations::new();
//! let out = implicit_elab::run(&decls, &e).unwrap();
//! assert_eq!(out.value.to_string(), "(2, false)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use implicit_core;
pub use implicit_elab;
pub use implicit_opsem;
pub use implicit_source;
pub use systemf;

/// Commonly used items, re-exported for examples and quick scripts.
pub mod prelude {
    pub use implicit_core::env::{ImplicitEnv, OverlapPolicy};
    pub use implicit_core::parse::{parse_expr, parse_program, parse_rule_type, parse_type};
    pub use implicit_core::resolve::{resolve, Resolution, ResolutionPolicy};
    pub use implicit_core::symbol::Symbol;
    pub use implicit_core::syntax::{Declarations, Expr, RuleType, Type};
    pub use implicit_core::typeck::Typechecker;
    pub use implicit_elab::{check_preservation, elaborate, run};
}
