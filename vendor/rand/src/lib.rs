//! Offline stand-in for the subset of the [`rand` 0.8] API this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The build environment has no network access to crates.io, so the
//! real crate cannot be fetched; this crate keeps the same module
//! layout and signatures for the calls the workspace makes. The
//! generator is SplitMix64 — deterministic per seed, which is all the
//! callers (seeded test/benchmark workload generators) rely on.
//!
//! [`rand` 0.8]: https://docs.rs/rand/0.8

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly; implemented for the integer
/// `Range`/`RangeInclusive` types the workspace draws from.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as i128) + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    /// The standard generator: SplitMix64 under the hood (the real
    /// crate uses ChaCha12; callers here only need seeded determinism).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_generation_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-100..100);
            assert!((-100..100).contains(&x));
            let y: usize = r.gen_range(0..3);
            assert!(y < 3);
            let z: u8 = r.gen_range(0..=255);
            let _ = z;
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
