//! Offline stand-in for the subset of the [`proptest`] API this
//! workspace uses: `Strategy` with `prop_map`/`prop_recursive`,
//! `Just`, `any::<bool>()`, tuple and integer-range strategies,
//! `proptest::collection::vec`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! The build environment has no network access to crates.io, so the
//! real crate cannot be fetched. This stand-in keeps the same calling
//! conventions but simplifies the engine: each `proptest!` test runs
//! a fixed number of cases ([`NUM_CASES`]) from a deterministic
//! per-test seed, and there is no shrinking — a failing case reports
//! its case index and message directly.
//!
//! [`proptest`]: https://docs.rs/proptest/1

/// Number of generated cases per `proptest!` test.
pub const NUM_CASES: u32 = 64;

pub mod test_runner {
    //! Deterministic case generation and failure reporting.

    use std::fmt;

    /// SplitMix64 generator seeded from the test's full path, so each
    /// test sees a stable case sequence across runs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator whose seed is derived from `tag`
        /// (typically `module_path!() + test name`).
        pub fn deterministic(tag: &str) -> TestRng {
            // FNV-1a over the tag.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a bounded-depth recursive strategy: `recurse`
        /// receives the strategy for the previous depth and wraps one
        /// more level of structure around it. (`_desired_size` and
        /// `_expected_branch` are accepted for API compatibility.)
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let deeper = recurse(strat.clone()).boxed();
                // Mix shallower values back in so depths 0..=depth all
                // occur, weighted toward recursion as in real proptest.
                strat = Union::new_weighted(vec![(1, strat), (2, deeper)]).boxed();
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A reference-counted, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Maps another strategy's values through a function.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Weighted choice between strategies of a common value type.
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Uniform choice.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        /// Weighted choice.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! of zero strategies");
            let total = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.gen_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    ((self.start as i128) + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    ((start as i128) + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.gen_value(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the handful of primitive types the workspace
    //! asks for.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`, with a length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body
/// runs [`NUM_CASES`] times over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let __strats = ($($strat,)+);
                for __case in 0..$crate::NUM_CASES {
                    let ($($arg,)+) = {
                        #[allow(non_snake_case)]
                        let ($(ref $arg,)+) = __strats;
                        ($($crate::strategy::Strategy::gen_value($arg, &mut __rng),)+)
                    };
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            $crate::NUM_CASES,
                            e
                        );
                    }
                }
            }
        )+
    };
}

/// `assert!` for property bodies: fails the current case instead of
/// panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Choice between strategies of a common value type, optionally
/// weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_unions_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("self-test");
        let strat = prop_oneof![Just(1usize), Just(2usize)];
        for _ in 0..100 {
            let v = strat.gen_value(&mut rng);
            assert!(v == 1 || v == 2);
            let n = (3usize..7).gen_value(&mut rng);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn recursive_strategies_are_depth_bounded() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(i) => 1 + depth(i),
            }
        }
        let strat = Just(T::Leaf)
            .prop_recursive(4, 16, 1, |inner| inner.prop_map(|t| T::Node(Box::new(t))));
        let mut rng = crate::test_runner::TestRng::deterministic("rec-test");
        let mut seen_deep = false;
        for _ in 0..200 {
            let t = strat.gen_value(&mut rng);
            assert!(depth(&t) <= 4);
            seen_deep |= depth(&t) > 0;
        }
        assert!(seen_deep, "recursion must sometimes fire");
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..100, b in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(b as u64 * 2 % 2, 0);
        }

        #[test]
        fn vectors_respect_length_bounds(xs in crate::collection::vec(0i32..10, 0..4)) {
            prop_assert!(xs.len() < 4);
            prop_assert!(xs.iter().all(|x| (0..10).contains(x)));
        }
    }
}
