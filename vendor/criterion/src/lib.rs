//! Offline stand-in for the subset of the [`criterion`] API this
//! workspace's bench targets use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, bench_with_input, bench_function,
//! finish}`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no network access to crates.io, so the
//! real crate cannot be fetched. This stand-in performs a real (if
//! simplified) measurement: per benchmark it calibrates an iteration
//! batch to a minimum sample duration, collects a fixed number of
//! samples, and reports the **median** ns/iter on stdout in a stable
//! `group/function/param ... median <t>` format that the experiment
//! ledger (`EXPERIMENTS.md`) records. There is no statistical
//! analysis, HTML report, or baseline store.
//!
//! Environment knobs: `CRITERION_SAMPLES` (default 15) and
//! `CRITERION_SAMPLE_MS` (default 2) trade precision for run time.
//!
//! [`criterion`]: https://docs.rs/criterion/0.5

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (same implementation as
/// `std::hint::black_box`).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
    min_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n >= 3)
            .unwrap_or(15);
        let sample_ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &u64| n >= 1)
            .unwrap_or(2);
        Criterion {
            samples,
            min_sample: Duration::from_millis(sample_ms),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }
}

/// A named benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

/// Units-of-work declaration used to derive throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.criterion.samples,
            min_sample: self.criterion.min_sample,
            median_ns: None,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Runs an unparameterized benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: self.criterion.samples,
            min_sample: self.criterion.min_sample,
            median_ns: None,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Finishes the group (reports are printed eagerly; this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let mut label = self.name.clone();
        if let Some(f) = &id.function {
            label.push('/');
            label.push_str(f);
        }
        if let Some(p) = &id.parameter {
            label.push('/');
            label.push_str(p);
        }
        let Some(median) = bencher.median_ns else {
            println!("  {label:<58} (no measurement)");
            return;
        };
        let mut line = format!("  {label:<58} median {:>12}/iter", fmt_ns(median));
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if median > 0.0 {
                let rate = count as f64 / (median * 1e-9);
                line.push_str(&format!("  ({rate:.3e} {unit}/s)"));
            }
        }
        println!("{line}");
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts both
/// plain strings and explicit ids.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_string()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self),
            parameter: None,
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    min_sample: Duration,
    median_ns: Option<f64>,
}

impl Bencher {
    /// Measures `routine`: calibrates a batch size whose run time
    /// exceeds the minimum sample duration, collects samples, and
    /// stores the median ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: grow the batch until one batch takes
        // at least `min_sample`.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_sample || batch >= 1 << 30 {
                break;
            }
            // Aim slightly past the threshold to limit re-calibration.
            let grow = if elapsed.as_nanos() == 0 {
                16
            } else {
                ((self.min_sample.as_nanos() * 2 / elapsed.as_nanos()) as u64).clamp(2, 16)
            };
            batch = batch.saturating_mul(grow);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let mid = per_iter.len() / 2;
        let median = if per_iter.len() % 2 == 1 {
            per_iter[mid]
        } else {
            (per_iter[mid - 1] + per_iter[mid]) / 2.0
        };
        self.median_ns = Some(median);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench-target `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_produces_a_positive_median() {
        let mut c = Criterion {
            samples: 5,
            min_sample: Duration::from_micros(50),
        };
        let mut g = c.benchmark_group("selftest");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
