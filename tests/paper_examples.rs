//! Every worked example in the paper, executed end-to-end under both
//! semantics (experiment index E1–E18 in `DESIGN.md`).

use implicit_core::env::ImplicitEnv;
use implicit_core::logic;
use implicit_core::parse::{parse_expr, parse_rule_type};
use implicit_core::resolve::{resolve, Premise, ResolutionPolicy};
use implicit_core::syntax::Declarations;
use implicit_core::termination;
use implicit_core::typeck::{TypeError, Typechecker};

/// Runs a core program under both semantics and checks they agree on
/// the printed result.
fn run_both(src: &str) -> String {
    let e = parse_expr(src).unwrap_or_else(|err| panic!("parse failed: {err}\n{src}"));
    let decls = Declarations::new();
    Typechecker::new(&decls)
        .check_closed(&e)
        .unwrap_or_else(|err| panic!("type error: {err}\n{src}"));
    let elab = implicit_elab::run(&decls, &e)
        .unwrap_or_else(|err| panic!("elaboration run failed: {err}\n{src}"));
    let ops = implicit_opsem::eval(&decls, &e)
        .unwrap_or_else(|err| panic!("opsem run failed: {err}\n{src}"));
    assert_eq!(
        elab.value.to_string(),
        ops.to_string(),
        "semantics disagree on {src}"
    );
    elab.value.to_string()
}

#[test]
fn e1_fetching_values_by_type() {
    // §2: implicit {1, true} in (?Int + 1, ¬?Bool) = (2, false)
    let v = run_both("implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool");
    assert_eq!(v, "(2, false)");
}

#[test]
fn e2_higher_order_rules() {
    // §2: returns (3, 4).
    let v = run_both(
        "implicit {3 : Int, rule ({Int} => Int * Int) ((?(Int), ?(Int) + 1)) : {Int} => Int * Int} \
         in ?(Int * Int) : Int * Int",
    );
    assert_eq!(v, "(3, 4)");
}

#[test]
fn e3_polymorphic_rules_resolve_multiple_queries() {
    // §2: returns ((3,3),(true,true)).
    let v = run_both(
        "implicit {3 : Int, true : Bool, \
                   rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
         in (?(Int * Int), ?(Bool * Bool)) : (Int * Int) * (Bool * Bool)",
    );
    assert_eq!(v, "((3, 3), (true, true))");
}

#[test]
fn e4_polymorphic_queries_resolve() {
    // §2: ?(∀α.{α} ⇒ α×α) resolves against the same polymorphic rule
    // and the result can then be instantiated and applied.
    let v = run_both(
        "implicit {rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
         in (?(forall a. {a} => a * a) [Bool] with {false : Bool}) : Bool * Bool",
    );
    assert_eq!(v, "(false, false)");
}

#[test]
fn e5_higher_order_plus_polymorphic() {
    // §2: returns ((3,3),(3,3)).
    let v = run_both(
        "implicit {3 : Int, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
         in ?((Int * Int) * (Int * Int)) : (Int * Int) * (Int * Int)",
    );
    assert_eq!(v, "((3, 3), (3, 3))");
}

#[test]
fn e6_lexical_scoping_returns_2() {
    let v = run_both(
        "implicit {1 : Int} in \
           (implicit {true : Bool, rule ({Bool} => Int) (if ?(Bool) then 2 else 0) : {Bool} => Int} \
            in ?(Int) : Int) : Int",
    );
    assert_eq!(v, "2");
}

#[test]
fn e7_overlapping_rules_nearest_wins() {
    let v = run_both(
        "implicit {rule (forall a. a -> a) ((\\x : a. x)) : forall a. a -> a} in \
           (implicit {(\\n : Int. n + 1) : Int -> Int} in ?(Int -> Int) 1 : Int) : Int",
    );
    assert_eq!(v, "2");
    let v2 = run_both(
        "implicit {(\\n : Int. n + 1) : Int -> Int} in \
           (implicit {rule (forall a. a -> a) ((\\x : a. x)) : forall a. a -> a} in ?(Int -> Int) 1 : Int) : Int",
    );
    assert_eq!(v2, "1");
}

#[test]
fn e8_simple_recursive_resolution() {
    // §3.2 Example 1: Int; ∀α.{α}⇒α×α ⊢r Int×Int.
    let mut env = ImplicitEnv::new();
    env.push(vec![parse_rule_type("Int").unwrap()]);
    env.push(vec![parse_rule_type("forall a. {a} => a * a").unwrap()]);
    let res = resolve(
        &env,
        &parse_rule_type("Int * Int").unwrap(),
        &ResolutionPolicy::paper(),
    )
    .unwrap();
    assert_eq!(res.steps(), 2);
    assert!(logic::verify_derivation(&env, &res));
}

#[test]
fn e9_rule_type_resolution_without_recursion() {
    // §3.2 Example 2.
    let mut env = ImplicitEnv::new();
    env.push(vec![parse_rule_type("Int").unwrap()]);
    env.push(vec![parse_rule_type("forall a. {a} => a * a").unwrap()]);
    let res = resolve(
        &env,
        &parse_rule_type("{Int} => Int * Int").unwrap(),
        &ResolutionPolicy::paper(),
    )
    .unwrap();
    assert_eq!(res.steps(), 1);
    assert!(matches!(res.premises[0], Premise::Assumed { .. }));
}

#[test]
fn e10_partial_resolution() {
    // §3.2 Example 3.
    let mut env = ImplicitEnv::new();
    env.push(vec![parse_rule_type("Bool").unwrap()]);
    env.push(vec![
        parse_rule_type("forall a. {Bool, a} => a * a").unwrap()
    ]);
    let res = resolve(
        &env,
        &parse_rule_type("{Int} => Int * Int").unwrap(),
        &ResolutionPolicy::paper(),
    )
    .unwrap();
    assert!(res.is_partial());
    assert!(logic::verify_derivation(&env, &res));
}

#[test]
fn e11_no_backtracking_vs_semantic_entailment() {
    // §3.2 "semantic resolution": Char; Char⇒Int; Bool⇒Int.
    // Resolution commits to the nearest rule and gets stuck; the
    // logical reading still entails Int.
    let mut env = ImplicitEnv::new();
    env.push(vec![parse_rule_type("String").unwrap()]);
    env.push(vec![parse_rule_type("{String} => Int").unwrap()]);
    env.push(vec![parse_rule_type("{Bool} => Int").unwrap()]);
    let q = parse_rule_type("Int").unwrap();
    assert!(resolve(&env, &q, &ResolutionPolicy::paper()).is_err());
    assert!(logic::entails(&env, &q, 16));
}

#[test]
fn e12_section4_elaboration_examples() {
    // ·∣· ⊢ rule(∀α.{α}⇒α×α)((?α,?α)) ⇝ Λα.λ(x:α).(x,x); the
    // evidence for Int×Int is x₂ Int x₁. Checked end to end: the
    // elaboration type-checks in System F at the translated type, and
    // computes the right value.
    let e = parse_expr(
        "implicit {7 : Int, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
         in ?(Int * Int) : Int * Int",
    )
    .unwrap();
    let decls = Declarations::new();
    implicit_elab::check_preservation(&decls, &e).unwrap();
    let out = implicit_elab::run(&decls, &e).unwrap();
    assert_eq!(out.value.to_string(), "(7, 7)");
}

#[test]
fn e15_nontermination_rejected_statically_and_cut_dynamically() {
    // Appendix A: {Char}⇒Int, {Int}⇒Char.
    let frame = vec![
        parse_rule_type("{String} => Int").unwrap(),
        parse_rule_type("{Int} => String").unwrap(),
    ];
    assert!(termination::check_context(&frame).is_err());
    let env = ImplicitEnv::with_frame(frame);
    let err = resolve(
        &env,
        &parse_rule_type("Int").unwrap(),
        &ResolutionPolicy::paper().with_max_depth(64),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        implicit_core::resolve::ResolveError::DepthExceeded { .. }
    ));
}

#[test]
fn e17_runtime_error_catalogue() {
    let decls = Declarations::new();
    // (a) no matching rule at all.
    let e = parse_expr("?(Int)").unwrap();
    assert!(matches!(
        Typechecker::new(&decls).check_closed(&e),
        Err(TypeError::Resolution(_))
    ));
    assert!(implicit_opsem::eval(&decls, &e).is_err());
    // (b) missing recursive premise.
    let e2 =
        parse_expr("implicit {rule ({Bool} => Int) (1) : {Bool} => Int} in ?(Int) : Int").unwrap();
    assert!(Typechecker::new(&decls).check_closed(&e2).is_err());
    assert!(implicit_opsem::eval(&decls, &e2).is_err());
    // (c) overlapping matches (∀α.α→Int vs ∀α.Int→α at Int→Int).
    let e3 = parse_expr(
        "implicit {rule (forall a. a -> Int) ((\\x : a. 1)) : forall a. a -> Int, \
                   rule (forall a. Int -> a) ((\\x : Int. ?(a))) : forall a. Int -> a} \
         in ?(Int -> Int) 0 : Int",
    )
    .unwrap();
    assert!(Typechecker::new(&decls).check_closed(&e3).is_err());
    assert!(implicit_opsem::eval(&decls, &e3).is_err());
    // (d) ambiguous instantiation (∀α.{α→α} ⇒ Int at ?Int).
    let e4 = parse_expr(
        "implicit {rule (forall a. {a -> a} => Int) (1) : forall a. {a -> a} => Int, \
                   rule (forall b. b -> b) ((\\x : b. x)) : forall b. b -> b} \
         in ?(Int) : Int",
    )
    .unwrap();
    assert!(Typechecker::new(&decls).check_closed(&e4).is_err());
    assert!(implicit_opsem::eval(&decls, &e4).is_err());
}

#[test]
fn e18_coherence_example_from_extended_report() {
    // let f : ∀β.β→β = implicit {λx.x : ∀α.α→α} in ?(β→β) — coherent:
    // the resolution result is ∀α.α→α regardless of β.
    // Core rendering: a rule abstraction binding β.
    let src = "rule (forall b. b -> b) \
                ((implicit {rule (forall a. a -> a) ((\\x : a. x)) : forall a. a -> a} \
                  in ?(b -> b) : b -> b)) \
               [Int] 5";
    let v = run_both(src);
    assert_eq!(v, "5");
}

#[test]
fn incoherent_program_is_rejected_statically() {
    // The report's *incoherent* variant adds a nearer Int→Int rule:
    // statically β→β resolves to the generic rule; at runtime with
    // β=Int the nearer rule would win. Under the elaboration
    // semantics the static choice is used — and the two semantics
    // disagree, which is exactly the coherence failure the static
    // conditions must reject. Our resolver keeps β rigid statically,
    // so the nearer monomorphic rule does not match and the outer
    // generic rule is chosen; the runtime (type-substituted) query
    // would match the nearer one. We verify the disagreement is
    // detected by the coherence analysis.
    use implicit_core::coherence;
    use implicit_core::subst::TySubst;
    use implicit_core::symbol::Symbol;
    let beta = Symbol::intern("beta_coh");
    let mut env = ImplicitEnv::new();
    env.push(vec![parse_rule_type("forall a. a -> a").unwrap()]);
    env.push(vec![parse_rule_type("Int -> Int").unwrap()]);
    let query = implicit_core::syntax::Type::arrow(
        implicit_core::syntax::Type::Var(beta),
        implicit_core::syntax::Type::Var(beta),
    )
    .promote();
    let policy = ResolutionPolicy::paper();
    let stat = resolve(&env, &query, &policy).unwrap();
    let theta = TySubst::single(beta, implicit_core::syntax::Type::Int);
    let dyn_env = coherence::subst_env(&theta, &env);
    let dyn_res = resolve(&dyn_env, &theta.apply_rule(&query), &policy).unwrap();
    assert_ne!(stat.rule, dyn_res.rule, "the incoherence must be visible");
}
