//! The paper's *opening* example (§1): a polymorphic sort whose
//! comparison function is an **implicit parameter** —
//!
//! ```text
//! isort : ∀α. (α → α → Bool) ⇒ List α → List α
//! implicit {cmpInt : Int → Int → Bool} in
//!   (isort [2,1,3], isort [5,9,3])
//! ```
//!
//! "The two calls of isort each take only one explicit argument: the
//! list to be sorted. Both the concrete type of the elements (Int)
//! and the comparison operator (cmpInt) are implicitly instantiated."

use implicit_source::compile;

const SORT: &str = r#"
letrec insert : forall a. {a -> a -> Bool} => a -> [a] -> [a] =
  \x. \ys.
    case ys of
      nil -> x :: nil
    | h :: t -> if ? x h then x :: h :: t else h :: insert x t
in
letrec isort : forall a. {a -> a -> Bool} => [a] -> [a] =
  \xs. case xs of nil -> nil | h :: t -> insert h (isort t)
in
"#;

fn run_source(src: &str) -> String {
    let compiled = compile(src).unwrap_or_else(|err| panic!("compile failed: {err}\n{src}"));
    implicit_elab::check_preservation(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("preservation: {err}"));
    let elab = implicit_elab::run(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("elab run failed: {err}"));
    let ops = implicit_opsem::eval(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("opsem run failed: {err}"));
    assert_eq!(
        elab.value.to_string(),
        ops.to_string(),
        "semantics disagree"
    );
    elab.value.to_string()
}

#[test]
fn e0_isort_with_implicit_comparator() {
    // The paper's very first program.
    let src = format!(
        "{SORT}
        let cmpInt : Int -> Int -> Bool = \\x. \\y. x <= y in
        implicit cmpInt in
          (isort (2 :: 1 :: 3 :: nil), isort (5 :: 9 :: 3 :: nil))"
    );
    assert_eq!(run_source(&src), "([1, 2, 3], [3, 5, 9])");
}

#[test]
fn scoping_swaps_the_comparator_locally() {
    // The same call site sorts ascending or descending depending on
    // the nearest implicit scope — the point of scoped rules.
    let src = format!(
        "{SORT}
        let up : Int -> Int -> Bool = \\x. \\y. x <= y in
        let down : Int -> Int -> Bool = \\x. \\y. y <= x in
        implicit up in
          (isort (2 :: 1 :: 3 :: nil),
           implicit down in isort (2 :: 1 :: 3 :: nil))"
    );
    assert_eq!(run_source(&src), "([1, 2, 3], [3, 2, 1])");
}

#[test]
fn comparators_for_other_types_resolve_by_type() {
    // Resolution picks the comparator by element type — several
    // comparators coexist in one scope.
    let src = format!(
        "{SORT}
        let cmpInt  : Int -> Int -> Bool = \\x. \\y. x <= y in
        let cmpBool : Bool -> Bool -> Bool = \\x. \\y. y || not x in
        implicit cmpInt, cmpBool in
          (isort (2 :: 1 :: nil), isort (true :: false :: true :: nil))"
    );
    assert_eq!(run_source(&src), "([1, 2], [false, true, true])");
}

#[test]
fn derived_comparators_via_rules() {
    // A rule derives a pair comparator (lexicographic on the first
    // component) from an element comparator — recursive resolution
    // builds the comparator for pairs on demand.
    let src = format!(
        "{SORT}
        let cmpInt : Int -> Int -> Bool = \\x. \\y. x <= y in
        let cmpPair : forall a. {{a -> a -> Bool}} => (a * Int) -> (a * Int) -> Bool =
          \\p. \\q. ? (fst p) (fst q) in
        implicit cmpInt, cmpPair in
          isort ((2, 0) :: (1, 0) :: (3, 0) :: nil)"
    );
    assert_eq!(run_source(&src), "[(1, 0), (2, 0), (3, 0)]");
}

#[test]
fn missing_comparator_is_a_static_resolution_error() {
    let src = format!("{SORT} isort (1 :: 2 :: nil)");
    let err = compile(&src).unwrap_err();
    assert!(
        matches!(err, implicit_source::CompileError::Core(_)),
        "expected a resolution failure, got {err:?}"
    );
}
