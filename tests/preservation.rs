//! Executable metatheory (P10–P12 in `DESIGN.md`).
//!
//! * **Type preservation** (§4 Theorem): elaborating a well-typed λ⇒
//!   term yields a System F term of the translated type.
//! * **Type safety** (§4 Theorem): every well-typed closed term
//!   evaluates to a value.
//! * **Theorem 1** (§3.2): every resolution derivation is a valid
//!   entailment proof, and every resolvable query is semantically
//!   entailed.
//! * **Semantic agreement**: the elaboration semantics and the direct
//!   operational semantics compute the same first-order values.
//!
//! Each property is checked on the paper's examples and on hundreds
//! of random well-typed programs from `genprog`.

use genprog::{gen_program, rng, GenConfig};
use implicit_core::logic;
use implicit_core::parse::parse_expr;
use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_core::syntax::Declarations;
use implicit_core::typeck::{types_equal, Typechecker};

const PAPER_PROGRAMS: &[&str] = &[
    "implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool",
    "implicit {3 : Int, rule ({Int} => Int * Int) ((?(Int), ?(Int) + 1)) : {Int} => Int * Int} \
     in ?(Int * Int) : Int * Int",
    "implicit {3 : Int, true : Bool, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
     in (?(Int * Int), ?(Bool * Bool)) : (Int * Int) * (Bool * Bool)",
    "implicit {3 : Int, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
     in ?((Int * Int) * (Int * Int)) : (Int * Int) * (Int * Int)",
    "implicit {true : Bool, \
       rule (forall a. {Bool, a} => a * a) ((?(a), ?(a))) : forall a. {Bool, a} => a * a} \
     in (?({Int} => Int * Int) with {5 : Int}) : Int * Int",
    "(fix f : Int -> Int. \\n : Int. if n <= 0 then 1 else n * f (n - 1)) 6",
    "case 1 :: 2 :: 3 :: nil [Int] of nil -> 0 | h :: t -> h + 100",
];

#[test]
fn preservation_on_paper_programs() {
    let decls = Declarations::new();
    for src in PAPER_PROGRAMS {
        let e = parse_expr(src).unwrap();
        implicit_elab::check_preservation(&decls, &e).unwrap_or_else(|err| panic!("{src}: {err}"));
    }
}

#[test]
fn preservation_on_random_programs() {
    let decls = Declarations::new();
    let mut r = rng(0xC0FFEE);
    for i in 0..300 {
        let p = gen_program(&mut r, &GenConfig::default());
        implicit_elab::check_preservation(&decls, &p.expr)
            .unwrap_or_else(|err| panic!("random program {i}: {err}\n{}", p.expr));
    }
}

#[test]
fn type_safety_every_welltyped_term_evaluates() {
    let decls = Declarations::new();
    let mut r = rng(0xBEEF);
    for i in 0..300 {
        let p = gen_program(&mut r, &GenConfig::default());
        let out = implicit_elab::run(&decls, &p.expr)
            .unwrap_or_else(|err| panic!("random program {i} failed to run: {err}"));
        // eval(e) = V for some value V — and the checker agrees about
        // the type.
        let checked = Typechecker::new(&decls).check_closed(&p.expr).unwrap();
        assert!(types_equal(&checked, &out.source_type));
    }
}

#[test]
fn elaboration_and_opsem_agree_on_random_programs() {
    let decls = Declarations::new();
    let mut r = rng(0xDECAF);
    for i in 0..300 {
        let p = gen_program(&mut r, &GenConfig::default());
        let elab = implicit_elab::run(&decls, &p.expr)
            .unwrap_or_else(|err| panic!("program {i} elab: {err}"));
        let ops = implicit_opsem::eval(&decls, &p.expr)
            .unwrap_or_else(|err| panic!("program {i} opsem: {err}"));
        assert_eq!(
            elab.value.to_string(),
            ops.to_string(),
            "program {i} disagreement:\n{}",
            p.expr
        );
    }
}

#[test]
fn preservation_and_agreement_over_data_typed_programs() {
    // Random programs exercising Inject/Match against the genprog
    // data prelude: preservation + both-semantics agreement.
    let decls = genprog::data_prelude();
    let mut r = rng(0xDA7A);
    for i in 0..200 {
        let p = genprog::gen_data_program(&mut r, &GenConfig::default());
        let checked = Typechecker::new(&decls)
            .check_closed(&p.expr)
            .unwrap_or_else(|err| panic!("data program {i} ill-typed: {err}\n{}", p.expr));
        assert!(types_equal(&checked, &p.ty), "program {i} type drift");
        let elab = implicit_elab::Elaborator::new(&decls)
            .elaborate(&p.expr)
            .unwrap_or_else(|err| panic!("data program {i} elab: {err}"));
        let fdecls = implicit_elab::translate_decls(&decls);
        let fty = systemf::typecheck(&fdecls, &elab.1)
            .unwrap_or_else(|err| panic!("data program {i} preservation: {err}"));
        assert!(
            fty.alpha_eq(&implicit_elab::translate_type(&elab.0)),
            "data program {i} translated type mismatch"
        );
        let v1 = systemf::eval(&elab.1).unwrap_or_else(|e| panic!("program {i} F eval: {e}"));
        let v2 = implicit_opsem::eval(&decls, &p.expr)
            .unwrap_or_else(|e| panic!("program {i} opsem: {e}"));
        assert_eq!(v1.to_string(), v2.to_string(), "program {i} disagreement");
    }
}

#[test]
fn theorem1_resolution_is_sound_for_entailment() {
    // On the deterministic workload families: every resolvable query
    // verifies as a derivation and is semantically entailed.
    let policy = ResolutionPolicy::paper().with_max_depth(4096);
    for n in [0usize, 1, 2, 4, 8] {
        let (env, q) = genprog::chain_env(n);
        let res = resolve(&env, &q, &policy).unwrap();
        assert!(logic::verify_derivation(&env, &res), "chain {n}");
        assert!(logic::entails(&env, &q, 64), "chain {n} entailment");
    }
    for (n, assumed) in [(3usize, 0usize), (3, 2), (5, 5)] {
        let (env, q) = genprog::partial_env(n, assumed);
        let res = resolve(&env, &q, &ResolutionPolicy::paper()).unwrap();
        assert!(
            logic::verify_derivation(&env, &res),
            "partial {n}/{assumed}"
        );
        assert!(
            logic::entails(&env, &q, 64),
            "partial {n}/{assumed} entailment"
        );
    }
}

#[test]
fn elaborated_terms_evaluate_like_their_types_say() {
    // Spot-check shapes of computed values against source types.
    let decls = Declarations::new();
    let mut r = rng(0xFEED);
    for _ in 0..100 {
        let p = gen_program(&mut r, &GenConfig::default());
        let out = implicit_elab::run(&decls, &p.expr).unwrap();
        check_value_shape(&out.value, &p.ty);
    }
}

fn check_value_shape(v: &systemf::Value, ty: &implicit_core::syntax::Type) {
    use implicit_core::syntax::Type;
    match (v, ty) {
        (systemf::Value::Int(_), Type::Int)
        | (systemf::Value::Bool(_), Type::Bool)
        | (systemf::Value::Str(_), Type::Str)
        | (systemf::Value::Unit, Type::Unit) => {}
        (systemf::Value::Pair(a, b), Type::Prod(ta, tb)) => {
            check_value_shape(a, ta);
            check_value_shape(b, tb);
        }
        (systemf::Value::List(xs), Type::List(el)) => {
            for x in xs.iter() {
                check_value_shape(x, el);
            }
        }
        (systemf::Value::Closure { .. }, Type::Arrow(_, _)) => {}
        (v, t) => panic!("value {v} does not inhabit type {t}"),
    }
}
