//! The paper's §1 motivating example, end to end: the non-regular
//! datatype `Perfect f a` and its `Show`-style instance
//!
//! ```text
//! instance (∀β. Show β ⇒ Show (f β), Show α) ⇒ Show (Perfect f α)
//! ```
//!
//! which Haskell rejects ("it restricts instances to be first-order")
//! and which motivated higher-order rules. Here the instance is a
//! `letrec` with a higher-kinded, higher-order scheme; showing the
//! tail `Perfect f (f a)` is a *polymorphically recursive* use whose
//! implicit context is re-derived by resolution at every depth.

use implicit_core::typeck::Typechecker;
use implicit_source::compile;

const PRELUDE: &str = r#"
data Perfect f a = PNil | PCons a (Perfect f (f a))

interface Twice a = { front : a, back : a }

let show : forall a. {a -> String} => a -> String = ? in

let showInt' : Int -> String = \n. showInt n in
let showTwice : forall a. {a -> String} => Twice a -> String =
  \t. "<" ++ show (front t) ++ "," ++ show (back t) ++ ">" in
let showList : forall a. {a -> String} => [a] -> String =
  fix go : [a] -> String. \xs.
    case xs of
      nil -> "[]"
    | h :: t -> (case t of nil -> "[" ++ show h ++ "]"
                         | h2 :: t2 -> "[" ++ show h ++ "|" ++ go t ++ "]")
in

-- §1's instance, as a higher-kinded + higher-order recursive rule.
letrec showPerfect : forall f a.
    {forall b. {b -> String} => f b -> String, a -> String}
      => Perfect f a -> String =
  \t. match t {
        PNil -> "Nil"
      | PCons x rest -> show x ++ " :: " ++ showPerfect rest
      }
in
"#;

fn run_source(src: &str) -> String {
    let compiled = compile(src).unwrap_or_else(|err| panic!("compile failed: {err}\n{src}"));
    implicit_elab::check_preservation(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("preservation: {err}"));
    let elab = implicit_elab::run(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("elab run failed: {err}"));
    let ops = implicit_opsem::eval(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("opsem run failed: {err}"));
    assert_eq!(
        elab.value.to_string(),
        ops.to_string(),
        "semantics disagree"
    );
    elab.value.to_string()
}

#[test]
fn perfect_tree_with_twice_functor() {
    // Cons 1 (Cons ⟨2,3⟩ Nil) : Perfect Twice Int — depth-2 perfect
    // tree; the recursive call shows a `Twice Int`.
    let src = format!(
        "{PRELUDE}
        let t : Perfect Twice Int =
          PCons 1 (PCons (Twice {{ front = 2, back = 3 }}) PNil) in
        implicit showInt', showTwice in showPerfect t"
    );
    assert_eq!(run_source(&src), "\"1 :: <2,3> :: Nil\"");
}

#[test]
fn perfect_tree_depth_three_doubles_again() {
    // Depth 3: the innermost element is Twice (Twice Int) — the
    // instance's premise is used at two different instantiations in
    // one run (polymorphic recursion).
    let src = format!(
        "{PRELUDE}
        let inner : Twice (Twice Int) =
          Twice {{ front = Twice {{ front = 2, back = 3 }},
                   back  = Twice {{ front = 4, back = 5 }} }} in
        let t : Perfect Twice Int =
          PCons 1 (PCons (Twice {{ front = 6, back = 7 }}) (PCons inner PNil)) in
        implicit showInt', showTwice in showPerfect t"
    );
    assert_eq!(run_source(&src), "\"1 :: <6,7> :: <<2,3>,<4,5>> :: Nil\"");
}

#[test]
fn perfect_tree_with_list_functor() {
    // The same instance works for f = List without any new code —
    // the decoupling of resolution from a fixed concept type.
    let src = format!(
        "{PRELUDE}
        let t : Perfect List Int =
          PCons 1 (PCons (2 :: 3 :: nil) PNil) in
        implicit showInt', showList in showPerfect t"
    );
    assert_eq!(run_source(&src), "\"1 :: [2|[3]] :: Nil\"");
}

#[test]
fn perfect_kinds_are_inferred_from_the_declaration() {
    let compiled = compile(&format!("{PRELUDE} 0")).unwrap();
    let data = compiled
        .decls
        .lookup_data(implicit_core::Symbol::intern("Perfect"))
        .expect("Perfect declared");
    let kinds: Vec<usize> = data.params.iter().map(|(_, k)| *k).collect();
    assert_eq!(kinds, vec![1, 0], "f : * → *, a : *");
}

#[test]
fn strict_mode_documents_the_notes_known_restriction() {
    // The companion note admits its naive uniqueness condition
    // over-rejects exactly this shape: "Assume we have the most
    // general pretty printer … and [a] polymorphic pretty printer
    // for lists which takes a pretty printer for an element type
    // implicitly. A program having such pretty printers is natural
    // but it will be rejected by naive restriction." Our strict mode
    // implements that (deliberately) naive condition, so it rejects
    // the Perfect instance at the recursive `with` site — while the
    // default checker and both semantics accept and run it.
    let src = format!(
        "{PRELUDE}
        let t : Perfect Twice Int = PCons 1 (PCons (Twice {{ front = 2, back = 3 }}) PNil) in
        implicit showInt', showTwice in showPerfect t"
    );
    let compiled = compile(&src).unwrap();
    assert!(Typechecker::new(&compiled.decls)
        .check_closed(&compiled.core)
        .is_ok());
    let err = Typechecker::new(&compiled.decls)
        .strict()
        .check_closed(&compiled.core)
        .unwrap_err();
    assert!(
        matches!(err, implicit_core::TypeError::Coherence(_)),
        "got {err:?}"
    );
}

#[test]
fn core_level_data_and_match() {
    // data + con + match in the core concrete syntax.
    let src = r#"
        data Shape = Circle Int | Square Int Int
        match con Square (3, 4) {
          Circle r -> r * r
        | Square w h -> w * h
        }
    "#;
    let (decls, e) = implicit_core::parse::parse_program(src).unwrap();
    let ty = Typechecker::new(&decls).check_closed(&e).unwrap();
    assert_eq!(ty, implicit_core::Type::Int);
    let out = implicit_elab::run(&decls, &e).unwrap();
    assert_eq!(out.value.to_string(), "12");
    let v = implicit_opsem::eval(&decls, &e).unwrap();
    assert_eq!(v.to_string(), "12");
}

#[test]
fn non_exhaustive_matches_are_rejected() {
    let src = r#"
        data Shape = Circle Int | Square Int Int
        match con Circle (5) { Circle r -> r }
    "#;
    let (decls, e) = implicit_core::parse::parse_program(src).unwrap();
    let err = Typechecker::new(&decls).check_closed(&e).unwrap_err();
    assert!(
        matches!(err, implicit_core::TypeError::BadMatch { .. }),
        "got {err:?}"
    );
}

#[test]
fn data_values_print_constructor_applications() {
    let src = r#"
        data Tree = Leaf | Node Tree Int Tree
        con Node (con Node (con Leaf (), 1, con Leaf ()), 2, con Leaf ())
    "#;
    let (decls, e) = implicit_core::parse::parse_program(src).unwrap();
    let out = implicit_elab::run(&decls, &e).unwrap();
    assert_eq!(out.value.to_string(), "Node (Node Leaf 1 Leaf) 2 Leaf");
    let v = implicit_opsem::eval(&decls, &e).unwrap();
    assert_eq!(v.to_string(), "Node (Node Leaf 1 Leaf) 2 Leaf");
}
