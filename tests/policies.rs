//! Differential tests across resolution policies (the §3.2 and
//! companion-note design space): the paper's `TyRes` vs. the
//! environment-extension variant vs. most-specific overlap handling,
//! and both vs. the backtracking semantic entailment.

use genprog::{chain_env, gen_program, partial_env, rng, GenConfig};
use implicit_core::env::ImplicitEnv;
use implicit_core::logic;
use implicit_core::parse::parse_rule_type;
use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_core::syntax::Declarations;
use implicit_core::typeck::Typechecker;

#[test]
fn extension_policy_subsumes_paper_policy() {
    // Every query the paper rule resolves, the extension variant
    // resolves too (it only *adds* assumption frames to consult), and
    // with the same derivation whenever no extension frame is used.
    let paper = ResolutionPolicy::paper().with_max_depth(1024);
    let ext = paper.clone().with_env_extension();
    let cases: Vec<(ImplicitEnv, implicit_core::syntax::RuleType)> = vec![
        chain_env(6),
        partial_env(5, 2),
        partial_env(5, 0),
        chain_env(0),
    ];
    for (env, q) in cases {
        let r_paper = resolve(&env, &q, &paper);
        let r_ext = resolve(&env, &q, &ext);
        match (r_paper, r_ext) {
            (Ok(a), Ok(b)) => {
                assert!(!a.uses_extension());
                if !b.uses_extension() {
                    assert_eq!(a, b, "derivations must coincide without extension use");
                }
            }
            (Err(_), _) => {} // extension may or may not succeed
            (Ok(a), Err(e)) => panic!("extension lost a paper-resolvable query {}: {e}", a.query),
        }
    }
}

#[test]
fn most_specific_agrees_with_paper_when_paper_succeeds() {
    // On overlap-free environments, both policies produce identical
    // derivations for every generated program's queries; check at the
    // whole-program level via the type checker.
    let decls = Declarations::new();
    let mut r = rng(0x90C1);
    let paper = Typechecker::new(&decls);
    for i in 0..100 {
        let p = gen_program(&mut r, &GenConfig::default());
        let t1 = paper
            .check_closed(&p.expr)
            .unwrap_or_else(|e| panic!("{i}: {e}"));
        let ms = Typechecker::with_policy(&decls, ResolutionPolicy::paper().with_most_specific());
        let t2 = ms
            .check_closed(&p.expr)
            .unwrap_or_else(|e| panic!("{i}: {e}"));
        assert!(implicit_core::typeck::types_equal(&t1, &t2));
    }
}

#[test]
fn resolution_is_sound_wrt_backtracking_entailment() {
    // ⊢r ⊆ ⊨ on the workload families (Theorem 1's other half: ⊨ can
    // be strictly larger).
    for (env, q) in [chain_env(4), partial_env(4, 2), partial_env(3, 3)] {
        if resolve(&env, &q, &ResolutionPolicy::paper()).is_ok() {
            assert!(logic::entails(&env, &q, 64));
        }
    }
}

#[test]
fn nearest_commitment_is_the_price_of_no_backtracking() {
    // The §3.2 gap: a nearer non-viable rule blocks resolution while
    // entailment (with backtracking) succeeds. The most-specific
    // policy does NOT help — it only changes intra-frame choice.
    let mut env = ImplicitEnv::new();
    env.push(vec![parse_rule_type("String").unwrap()]);
    env.push(vec![parse_rule_type("{String} => Int").unwrap()]);
    env.push(vec![parse_rule_type("{Bool} => Int").unwrap()]);
    let q = parse_rule_type("Int").unwrap();
    assert!(resolve(&env, &q, &ResolutionPolicy::paper()).is_err());
    assert!(resolve(&env, &q, &ResolutionPolicy::paper().with_most_specific()).is_err());
    assert!(resolve(&env, &q, &ResolutionPolicy::paper().with_env_extension()).is_err());
    assert!(logic::entails(&env, &q, 32));
}

#[test]
fn strict_mode_accepts_all_generated_programs() {
    // The generator only emits coherent, terminating scopes, so the
    // strict checker (termination + coherence conditions) must accept
    // everything it produces.
    let decls = Declarations::new();
    let mut r = rng(0x57121C7);
    for i in 0..100 {
        let p = gen_program(&mut r, &GenConfig::default());
        Typechecker::new(&decls)
            .strict()
            .check_closed(&p.expr)
            .unwrap_or_else(|e| panic!("strict rejected generated program {i}: {e}\n{}", p.expr));
    }
}

#[test]
fn opsem_respects_policy_choice() {
    let decls = Declarations::new();
    // Exact evidence outranks a general rule even under the default
    // runtime policy (it is what positional elaboration would use):
    let src = "implicit {rule (forall a. a -> a) ((\\x : a. x)) : forall a. a -> a, \
                         (\\n : Int. n + 1) : Int -> Int} \
               in ?(Int -> Int) 1 : Int";
    let e = implicit_core::parse::parse_expr(src).unwrap();
    let v = implicit_opsem::eval(&decls, &e).unwrap();
    assert_eq!(v.to_string(), "2");
    // …while the *static* checker still rejects the overlapping set.
    assert!(Typechecker::new(&decls).check_closed(&e).is_err());

    // Genuinely incomparable overlap (no exact entry) errors under
    // the paper policy and stays an error even under most-specific.
    let src2 = "implicit {rule (forall a. a -> Int) ((\\x : a. 1)) : forall a. a -> Int, \
                          rule (forall a. Int -> a) ((\\x : Int. ?(a))) : forall a. Int -> a} \
                in ?(Int -> Int) 0 : Int";
    let e2 = implicit_core::parse::parse_expr(src2).unwrap();
    let err = implicit_opsem::eval(&decls, &e2).unwrap_err();
    assert!(matches!(err, implicit_opsem::OpsemError::Overlap { .. }));
    let err2 = implicit_opsem::Interpreter::new(&decls)
        .with_policy(ResolutionPolicy::paper().with_most_specific())
        .eval(&e2)
        .unwrap_err();
    assert!(matches!(err2, implicit_opsem::OpsemError::Overlap { .. }));
}
