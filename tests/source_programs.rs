//! Full-pipeline tests of the §5 source language (P3/P5, E13, E14,
//! E18 in `DESIGN.md`): parse → infer → encode into λ⇒ → type-check
//! (resolving all implicits) → elaborate to System F → evaluate, plus
//! the direct interpreter for agreement.

use implicit_source::compile;

fn run_source(src: &str) -> String {
    let compiled = compile(src).unwrap_or_else(|err| panic!("compile failed: {err}\n{src}"));
    implicit_elab::check_preservation(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("preservation: {err}"));
    let elab = implicit_elab::run(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("elab run failed: {err}"));
    let ops = implicit_opsem::eval(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("opsem run failed: {err}"));
    assert_eq!(
        elab.value.to_string(),
        ops.to_string(),
        "semantics disagree"
    );
    elab.value.to_string()
}

const EQ_PROGRAM: &str = r#"
interface Eq a = { eq : a -> a -> Bool }

let eqv : forall a. {Eq a} => a -> a -> Bool = eq ? in
let isEven : Int -> Bool = \x. x % 2 == 0 in

let eqInt1 : Eq Int  = Eq { eq = \x. \y. x == y } in
let eqInt2 : Eq Int  = Eq { eq = \x. \y. isEven x && isEven y } in
let eqBool : Eq Bool = Eq { eq = \x. \y. x == y } in
let eqPair : forall a b. {Eq a, Eq b} => Eq (a * b) =
  Eq { eq = \x. \y. eqv (fst x) (fst y) && eqv (snd x) (snd y) } in

let p1 : Int * Bool = (4, true) in
let p2 : Int * Bool = (8, true) in

implicit eqInt1, eqBool, eqPair in
  (eqv p1 p2, implicit eqInt2 in eqv p1 p2)
"#;

#[test]
fn e13_figure_eq_typeclass_returns_false_true() {
    assert_eq!(run_source(EQ_PROGRAM), "(false, true)");
}

#[test]
fn e14_higher_order_show_returns_both_renderings() {
    let src = r#"
        let show : forall a. {a -> String} => a -> String = ? in
        let showInt' : Int -> String = \n. showInt n in
        let comma : forall a. {a -> String} => [a] -> String =
          fix go : [a] -> String. \xs.
            case xs of
              nil -> ""
            | h :: t -> (case t of nil -> show h | h2 :: t2 -> show h ++ "," ++ go t)
        in
        let space : forall a. {a -> String} => [a] -> String =
          fix go : [a] -> String. \xs.
            case xs of
              nil -> ""
            | h :: t -> (case t of nil -> show h | h2 :: t2 -> show h ++ " " ++ go t)
        in
        let o : {Int -> String, {Int -> String} => [Int] -> String} => String =
          show (1 :: 2 :: 3 :: nil)
        in
        implicit showInt' in
          (implicit comma in o, implicit space in o)
    "#;
    assert_eq!(run_source(src), "(\"1,2,3\", \"1 2 3\")");
}

#[test]
fn e18_placeholder_query_like_coq() {
    // §5: `eq ? p₁ p₂` uses the query as a Coq-style placeholder.
    let src = r#"
        interface Eq a = { eq : a -> a -> Bool }
        let eqInt : Eq Int = Eq { eq = \x. \y. x == y } in
        implicit eqInt in eq ? 4 8
    "#;
    assert_eq!(run_source(src), "false");
}

#[test]
fn nested_instance_override_is_local() {
    // The inner scope's instance must not leak out.
    let src = r#"
        interface Eq a = { eq : a -> a -> Bool }
        let eqv : forall a. {Eq a} => a -> a -> Bool = eq ? in
        let eqInt1 : Eq Int = Eq { eq = \x. \y. x == y } in
        let eqInt2 : Eq Int = Eq { eq = \x. \y. true } in
        implicit eqInt1 in
          ((implicit eqInt2 in eqv 1 2), eqv 1 2)
    "#;
    assert_eq!(run_source(src), "(true, false)");
}

#[test]
fn recursive_instances_compose_deeply() {
    // Eq over nested pairs exercises recursive resolution depth 3.
    let src = r#"
        interface Eq a = { eq : a -> a -> Bool }
        let eqv : forall a. {Eq a} => a -> a -> Bool = eq ? in
        let eqInt : Eq Int = Eq { eq = \x. \y. x == y } in
        let eqPair : forall a b. {Eq a, Eq b} => Eq (a * b) =
          Eq { eq = \x. \y. eqv (fst x) (fst y) && eqv (snd x) (snd y) } in
        implicit eqInt, eqPair in
          eqv ((1, (2, 3)), 4) ((1, (2, 3)), 4)
    "#;
    assert_eq!(run_source(src), "true");
}

#[test]
fn structural_concepts_with_plain_functions() {
    // §5's point that resolution works for any type: a plain function
    // type models the concept.
    let src = r#"
        let show : forall a. {a -> String} => a -> String = ? in
        let showBool : Bool -> String = \b. if b then "yes" else "no" in
        implicit showBool in show true
    "#;
    assert_eq!(run_source(src), "\"yes\"");
}

#[test]
fn ord_style_interface_with_superclass_like_usage() {
    // A second interface, used side by side with Eq, to check that
    // multiple interfaces coexist.
    let src = r#"
        interface Eq a  = { eq : a -> a -> Bool }
        interface Ord a = { lte : a -> a -> Bool }
        let eqInt : Eq Int = Eq { eq = \x. \y. x == y } in
        let ordInt : Ord Int = Ord { lte = \x. \y. x <= y } in
        implicit eqInt, ordInt in
          (eq ? 3 3, lte ? 3 4)
    "#;
    assert_eq!(run_source(src), "(true, true)");
}

#[test]
fn local_functions_and_recursion() {
    let src = r#"
        let sum : [Int] -> Int =
          fix go : [Int] -> Int. \xs.
            case xs of nil -> 0 | h :: t -> h + go t
        in sum (1 :: 2 :: 3 :: 4 :: nil)
    "#;
    assert_eq!(run_source(src), "10");
}

#[test]
fn compile_reports_unresolvable_contexts() {
    let src = r#"
        interface Eq a = { eq : a -> a -> Bool }
        let eqv : forall a. {Eq a} => a -> a -> Bool = eq ? in
        eqv 1 2
    "#;
    let err = compile(src).unwrap_err();
    assert!(
        matches!(err, implicit_source::CompileError::Core(_)),
        "expected a resolution failure, got {err:?}"
    );
}

#[test]
fn compile_reports_ambiguous_queries() {
    // A query with no constraining context cannot be inferred.
    let err = compile("let x : Int = 1 in implicit x in ?").unwrap_err();
    assert!(
        matches!(err, implicit_source::CompileError::Infer(_)),
        "expected an inference failure, got {err:?}"
    );
}
