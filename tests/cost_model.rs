//! Machine-checked cost-model assertions backing the EXPERIMENTS.md
//! benchmark narratives: the *counts* behind B1–B4/B10/B12 (steps,
//! rules tried, frames scanned, cache hits) must follow the predicted
//! shapes exactly, independent of wall-clock noise.
//!
//! Since the head-constructor index landed, `rules_tried` counts the
//! *candidates the index admits* (rules whose head constructor could
//! match the query head, plus variable-headed rules), not the whole
//! frame population — that drop is asserted here.

use genprog::{chain_env, deep_stack_env, hk_nested_env, partial_env, poly_env, wide_env};
use implicit_core::logic::verify_derivation;
use implicit_core::resolve::{resolve, Resolution, ResolutionPolicy, RuleRef};
use implicit_core::syntax::{RuleType, Type};
use implicit_core::ImplicitEnv;

fn policy() -> ResolutionPolicy {
    ResolutionPolicy::paper().with_max_depth(4096)
}

fn policy_uncached() -> ResolutionPolicy {
    policy().without_cache()
}

#[test]
fn b1_chain_steps_are_linear() {
    for n in [0usize, 1, 4, 16, 64] {
        let (env, q) = chain_env(n);
        let res = resolve(&env, &q, &policy()).unwrap();
        let stats = res.stats(&env);
        assert_eq!(stats.steps, n + 1, "chain {n}");
        // Each step scans the single frame once.
        assert_eq!(stats.frames_scanned, n + 1, "chain {n}");
        // The chain rules `{Tₖ₋₁}⇒Tₖ` all share the `List` head
        // constructor, so the n steps with a `List`-headed query
        // try all n of them; the final `Int` step tries only the
        // one `Int`-headed value. (Pre-index: (n+1)² tries.)
        assert_eq!(stats.rules_tried, n * n + 1, "chain {n}");
    }
}

#[test]
fn b2_wide_frames_try_only_admitted_candidates() {
    for n in [8usize, 64, 256] {
        let (env, q) = wide_env(n, 1.0);
        let res = resolve(&env, &q, &policy()).unwrap();
        let stats = res.stats(&env);
        assert_eq!(stats.steps, 1);
        assert_eq!(stats.frames_scanned, 1);
        // The n decoys are all `List`-headed; the product-headed
        // query admits exactly the one matching rule, however wide
        // the frame. (Pre-index: n + 1 tries.)
        assert_eq!(stats.rules_tried, 1, "wide {n}");
    }
}

#[test]
fn b2_deep_stacks_descend_every_frame() {
    for n in [8usize, 64, 256] {
        let (env, q) = deep_stack_env(n);
        let res = resolve(&env, &q, &policy()).unwrap();
        let stats = res.stats(&env);
        assert_eq!(stats.steps, 1);
        assert_eq!(stats.max_frame_reached, n, "deep {n}");
        assert_eq!(stats.frames_scanned, n + 1, "deep {n}");
        // Descending still visits every frame, but the `List`-headed
        // decoy frames admit no candidate for the `Int` query; only
        // the outermost frame's value is tried. (Pre-index: n + 1.)
        assert_eq!(stats.rules_tried, 1, "deep {n}");
    }
}

#[test]
fn b4_partial_resolution_work_scales_with_derived_premises_only() {
    let n = 12usize;
    let mut derived_steps = Vec::new();
    for assumed in [0usize, 4, 8, 12] {
        let (env, q) = partial_env(n, assumed);
        let res = resolve(&env, &q, &policy()).unwrap();
        let stats = res.stats(&env);
        assert_eq!(stats.assumed, assumed, "assumed {assumed}");
        // One step for the rule plus one per derived premise.
        assert_eq!(stats.steps, 1 + (n - assumed), "assumed {assumed}");
        derived_steps.push(stats.steps);
    }
    assert!(
        derived_steps.windows(2).all(|w| w[0] > w[1]),
        "more assumptions must mean strictly fewer steps: {derived_steps:?}"
    );
}

#[test]
fn b10_higher_kinded_nesting_is_linear_in_steps() {
    for n in [1usize, 4, 16, 64] {
        let (env, q) = hk_nested_env(n);
        let res = resolve(&env, &q, &policy()).unwrap();
        let stats = res.stats(&env);
        assert_eq!(stats.steps, n + 1, "hk {n}");
        assert_eq!(stats.rules_tried, 2 * (n + 1), "hk {n}");
    }
}

#[test]
fn assumed_premises_save_exactly_their_resolution_subtrees() {
    // Same environment, same head; the query context grows: every
    // newly assumed premise removes its whole derivation subtree.
    let (env, q_full) = partial_env(6, 0);
    let full = resolve(&env, &q_full, &policy()).unwrap().stats(&env);
    let (env2, q_half) = partial_env(6, 3);
    let half = resolve(&env2, &q_half, &policy()).unwrap().stats(&env2);
    assert_eq!(full.steps - half.steps, 3);
}

// ---------------------------------------------------------------------
// B12: the memoized derivation cache.
// ---------------------------------------------------------------------

#[test]
fn b12_repeated_queries_cost_one_resolution_plus_hits() {
    let (env, q) = chain_env(16);
    let pol = policy();
    let first = resolve(&env, &q, &pol).unwrap();
    let after_first = env.cache_counters();
    // The first resolution misses once per TyRes node, then caches
    // every subtree.
    assert_eq!(after_first.hits, 0);
    assert_eq!(after_first.misses as usize, first.steps());
    assert_eq!(env.cache_len(), first.steps());
    let reps = 9;
    for _ in 0..reps {
        let again = resolve(&env, &q, &pol).unwrap();
        assert_eq!(again, first, "cached derivation must replay verbatim");
        assert!(verify_derivation(&env, &again));
    }
    let after_reps = env.cache_counters();
    // N repeated queries cost the 1 initial resolution + N−1 single
    // top-level hits: no new misses, one hit per repeat, nothing
    // evicted.
    assert_eq!(after_reps.hits, reps);
    assert_eq!(after_reps.misses, after_first.misses);
    assert_eq!(after_reps.evictions, 0);
}

#[test]
fn b12_disabling_the_cache_disables_memoization() {
    let (env, q) = chain_env(8);
    let pol = policy_uncached();
    let r1 = resolve(&env, &q, &pol).unwrap();
    let r2 = resolve(&env, &q, &pol).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(env.cache_counters(), Default::default());
    assert_eq!(env.cache_len(), 0);
}

#[test]
fn b12_push_invalidates_exactly_the_shadowed_entries() {
    let (mut env, q) = chain_env(4);
    let pol = policy();
    let first = resolve(&env, &q, &pol).unwrap();
    let populated = env.cache_len();
    assert_eq!(populated, first.steps());
    // A frame whose heads shadow nothing the derivations looked up
    // (the chain queries List- and Int-headed types only) keeps every
    // entry alive...
    env.push(vec![Type::Bool.promote()]);
    assert_eq!(env.cache_len(), populated);
    // ...and the replayed hit re-addresses the same absolute frame
    // through the deeper stack.
    let before = env.cache_counters();
    let res = resolve(&env, &q, &pol).unwrap();
    assert_eq!(env.cache_counters().hits, before.hits + 1);
    assert!(matches!(res.rule, RuleRef::Env { frame: 1, .. }));
    assert!(verify_derivation(&env, &res));
    // A frame providing Int shadows the chain's base value — every
    // chain entry's derivation reaches Int, so all are invalidated.
    env.push(vec![Type::Int.promote()]);
    assert_eq!(env.cache_len(), 0);
}

#[test]
fn b12_pop_invalidates_exactly_the_entries_using_the_popped_frame() {
    let mut env = ImplicitEnv::new();
    env.push(vec![Type::Int.promote()]); // absolute frame 0 (outer)
    env.push(vec![Type::Bool.promote()]); // absolute frame 1 (inner)
    let pol = policy();
    resolve(&env, &Type::Int.promote(), &pol).unwrap(); // uses frame 0
    resolve(&env, &Type::Bool.promote(), &pol).unwrap(); // uses frame 1
    assert_eq!(env.cache_len(), 2);
    env.pop();
    // Only the Bool derivation used the popped frame.
    assert_eq!(env.cache_len(), 1);
    let before = env.cache_counters();
    let res = resolve(&env, &Type::Int.promote(), &pol).unwrap();
    assert_eq!(env.cache_counters().hits, before.hits + 1);
    // Cached at depth 2 as innermost-first frame 1; replayed at
    // depth 1 it must re-address the survivor as frame 0.
    assert_eq!(res.rule, RuleRef::Env { frame: 0, index: 0 });
    assert!(verify_derivation(&env, &res));
}

#[test]
fn b12_capacity_bound_evicts_oldest_first() {
    let (mut env, q) = chain_env(16);
    env.set_cache_capacity(4);
    let pol = policy();
    let first = resolve(&env, &q, &pol).unwrap();
    assert!(env.cache_len() <= 4);
    let counters = env.cache_counters();
    assert_eq!(counters.evictions as usize, first.steps() - 4);
    // Capacity 0 disables memoization entirely.
    env.set_cache_capacity(0);
    assert_eq!(env.cache_len(), 0);
    let before = env.cache_counters();
    resolve(&env, &q, &pol).unwrap();
    assert_eq!(env.cache_len(), 0);
    assert_eq!(env.cache_counters().hits, before.hits);
}

/// α-renaming a query must not change what the cache replays: the
/// cache key is the *structural* identity, so α-variants miss, get
/// re-derived, and both derivations must agree modulo the variant's
/// own binder names.
#[test]
fn b12_alpha_variant_queries_resolve_consistently() {
    use implicit_core::symbol::Symbol;
    let a = Symbol::intern("cm_a");
    let b = Symbol::intern("cm_b");
    let pair = |v: Symbol| {
        RuleType::new(
            vec![v],
            vec![Type::var(v).promote()],
            Type::prod(Type::var(v), Type::var(v)),
        )
    };
    let env = ImplicitEnv::with_frame(vec![pair(a)]);
    let pol = policy();
    let r_a = resolve(&env, &pair(a), &pol).unwrap();
    let r_b = resolve(&env, &pair(b), &pol).unwrap();
    assert!(implicit_core::alpha::alpha_eq(&r_a.query, &r_b.query));
    assert_eq!(r_a.rule, r_b.rule);
    assert_eq!(r_a.premises.len(), r_b.premises.len());
    assert!(verify_derivation(&env, &r_a));
    assert!(verify_derivation(&env, &r_b));
}

/// The cache must be *transparent*: over every generator family and
/// size, resolution with the cache (cold and warm) returns exactly
/// the derivation the uncached resolver builds, and the replays
/// verify against the logical interpretation.
#[test]
fn b12_cached_resolution_is_equivalent_to_uncached() {
    let cases: Vec<(ImplicitEnv, RuleType)> = vec![
        chain_env(0),
        chain_env(5),
        chain_env(17),
        wide_env(16, 0.0),
        wide_env(16, 1.0),
        deep_stack_env(9),
        poly_env(7),
        partial_env(6, 3),
        partial_env(6, 0),
        hk_nested_env(4),
    ];
    for (env, q) in cases {
        let uncached = resolve(&env, &q, &policy_uncached()).unwrap();
        let cold = resolve(&env, &q, &policy()).unwrap();
        let warm = resolve(&env, &q, &policy()).unwrap();
        assert_eq!(uncached, cold, "cold cache changed the derivation for {q}");
        assert_eq!(uncached, warm, "warm cache changed the derivation for {q}");
        assert!(env.cache_counters().hits >= 1, "warm run must hit for {q}");
        assert!(
            verify_derivation(&env, &warm),
            "cached derivation must verify for {q}"
        );
    }
}

/// Randomized interleavings of pushes, pops and repeated queries:
/// after any prefix of scope operations, a cached replay must equal
/// a from-scratch uncached resolution in the *same* environment.
#[test]
fn b12_cache_matches_uncached_under_random_scope_churn() {
    use rand::Rng;
    let mut rng = genprog::rng(0xB12);
    for round in 0..40 {
        let n = rng.gen_range(1..8usize);
        let (mut env, q) = chain_env(n);
        // Warm the cache.
        resolve(&env, &q, &policy()).unwrap();
        let mut pushed = 0usize;
        for _ in 0..rng.gen_range(1..6usize) {
            match rng.gen_range(0..3usize) {
                // Push a frame that may or may not shadow the chain.
                0 => {
                    let shadow = rng.gen_range(0..3usize) == 0;
                    let head = if shadow {
                        genprog::distinct_type(rng.gen_range(0..=n))
                    } else {
                        Type::Str
                    };
                    env.push(vec![head.promote()]);
                    pushed += 1;
                }
                1 if pushed > 0 => {
                    env.pop();
                    pushed -= 1;
                }
                _ => {}
            }
            let cached = resolve(&env, &q, &policy()).unwrap();
            let fresh = resolve(&env, &q, &policy_uncached()).unwrap();
            assert_eq!(
                cached, fresh,
                "round {round}: cache and uncached disagree after scope churn"
            );
            assert!(verify_derivation(&env, &cached), "round {round}");
        }
    }
}

fn derivation_depth(r: &Resolution) -> usize {
    1 + r
        .premises
        .iter()
        .map(|p| match p {
            implicit_core::resolve::Premise::Derived(d) => derivation_depth(d),
            implicit_core::resolve::Premise::Assumed { .. } => 0,
        })
        .max()
        .unwrap_or(0)
}

/// Sub-derivations cached by an earlier query short-circuit later
/// resolutions of *larger* queries that contain them.
#[test]
fn b12_subderivations_are_shared_across_queries() {
    let (env, q_full) = chain_env(12);
    let pol = policy();
    // Resolve the halfway link first: caches the lower half.
    let half_query = genprog::distinct_type(6).promote();
    let half = resolve(&env, &half_query, &pol).unwrap();
    let after_half = env.cache_counters();
    assert_eq!(after_half.misses as usize, half.steps());
    // The full chain only misses on the 6 links above the cached
    // half, then hits the cached half once.
    let full = resolve(&env, &q_full, &pol).unwrap();
    let after_full = env.cache_counters();
    assert_eq!(after_full.misses - after_half.misses, 6);
    assert_eq!(after_full.hits - after_half.hits, 1);
    assert_eq!(derivation_depth(&full), 13);
    assert!(verify_derivation(&env, &full));
}
