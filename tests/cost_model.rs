//! Machine-checked cost-model assertions backing the EXPERIMENTS.md
//! benchmark narratives: the *counts* behind B1–B4/B10 (steps, rules
//! tried, frames scanned) must follow the predicted shapes exactly,
//! independent of wall-clock noise.

use genprog::{chain_env, deep_stack_env, hk_nested_env, partial_env, wide_env};
use implicit_core::resolve::{resolve, ResolutionPolicy};

fn policy() -> ResolutionPolicy {
    ResolutionPolicy::paper().with_max_depth(4096)
}

#[test]
fn b1_chain_steps_are_linear() {
    for n in [0usize, 1, 4, 16, 64] {
        let (env, q) = chain_env(n);
        let res = resolve(&env, &q, &policy()).unwrap();
        let stats = res.stats(&env);
        assert_eq!(stats.steps, n + 1, "chain {n}");
        // Each step scans the single frame once.
        assert_eq!(stats.frames_scanned, n + 1, "chain {n}");
        // Each lookup match-tests the whole frame (n+1 rules).
        assert_eq!(stats.rules_tried, (n + 1) * (n + 1), "chain {n}");
    }
}

#[test]
fn b2_wide_frames_scan_every_rule_once() {
    for n in [8usize, 64, 256] {
        let (env, q) = wide_env(n, 1.0);
        let res = resolve(&env, &q, &policy()).unwrap();
        let stats = res.stats(&env);
        assert_eq!(stats.steps, 1);
        assert_eq!(stats.frames_scanned, 1);
        assert_eq!(stats.rules_tried, n + 1, "wide {n}");
    }
}

#[test]
fn b2_deep_stacks_descend_every_frame() {
    for n in [8usize, 64, 256] {
        let (env, q) = deep_stack_env(n);
        let res = resolve(&env, &q, &policy()).unwrap();
        let stats = res.stats(&env);
        assert_eq!(stats.steps, 1);
        assert_eq!(stats.max_frame_reached, n, "deep {n}");
        assert_eq!(stats.frames_scanned, n + 1, "deep {n}");
        // One rule per frame.
        assert_eq!(stats.rules_tried, n + 1, "deep {n}");
    }
}

#[test]
fn b4_partial_resolution_work_scales_with_derived_premises_only() {
    let n = 12usize;
    let mut derived_steps = Vec::new();
    for assumed in [0usize, 4, 8, 12] {
        let (env, q) = partial_env(n, assumed);
        let res = resolve(&env, &q, &policy()).unwrap();
        let stats = res.stats(&env);
        assert_eq!(stats.assumed, assumed, "assumed {assumed}");
        // One step for the rule plus one per derived premise.
        assert_eq!(stats.steps, 1 + (n - assumed), "assumed {assumed}");
        derived_steps.push(stats.steps);
    }
    assert!(
        derived_steps.windows(2).all(|w| w[0] > w[1]),
        "more assumptions must mean strictly fewer steps: {derived_steps:?}"
    );
}

#[test]
fn b10_higher_kinded_nesting_is_linear_in_steps() {
    for n in [1usize, 4, 16, 64] {
        let (env, q) = hk_nested_env(n);
        let res = resolve(&env, &q, &policy()).unwrap();
        let stats = res.stats(&env);
        assert_eq!(stats.steps, n + 1, "hk {n}");
        assert_eq!(stats.rules_tried, 2 * (n + 1), "hk {n}");
    }
}

#[test]
fn assumed_premises_save_exactly_their_resolution_subtrees() {
    // Same environment, same head; the query context grows: every
    // newly assumed premise removes its whole derivation subtree.
    let (env, q_full) = partial_env(6, 0);
    let full = resolve(&env, &q_full, &policy()).unwrap().stats(&env);
    let (env2, q_half) = partial_env(6, 3);
    let half = resolve(&env2, &q_half, &policy()).unwrap().stats(&env2);
    assert_eq!(full.steps - half.steps, 3);
}
