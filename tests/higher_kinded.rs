//! Type-constructor polymorphism (the §5.2 extension; §1's
//! motivating `Perfect f a` instance is exactly this shape): rules
//! may quantify over type *constructors* `f`, with higher-order
//! premises polymorphic in the element type — `∀b. {Show b} ⇒ Show
//! (f b)` — and instantiation supplies `List` or an interface
//! constructor.

use implicit_core::parse::{parse_expr, parse_rule_type};
use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_core::syntax::{Declarations, TyCon, Type};
use implicit_core::typeck::{TypeError, Typechecker};
use implicit_core::ImplicitEnv;

/// The §1-style source program: one higher-kinded, higher-order rule
/// renders *nested containers* `f (f a)` for any `f` — used with both
/// the built-in `List` and a user interface `Box`.
const NESTED_SHOW: &str = r#"
interface Box a = { unbox : a }

let show : forall a. {a -> String} => a -> String = ? in
let showInt' : Int -> String = \n. showInt n in

let showList : forall a. {a -> String} => [a] -> String =
  fix go : [a] -> String. \xs.
    case xs of
      nil -> ""
    | h :: t -> (case t of nil -> show h | h2 :: t2 -> show h ++ "," ++ go t)
in
let showBox : forall a. {a -> String} => Box a -> String =
  \b. "Box(" ++ show (unbox b) ++ ")"
in

-- The higher-kinded, higher-order rule: f is a type constructor.
let showNested : forall f a. {forall b. {b -> String} => f b -> String, a -> String}
                   => f (f a) -> String = ? in

implicit showInt' in
  ( implicit showList in showNested ((1 :: 2 :: nil) :: (3 :: nil) :: nil)
  , implicit showBox in showNested (Box { unbox = Box { unbox = 7 } }) )
"#;

fn run_source(src: &str) -> String {
    let compiled =
        implicit_source::compile(src).unwrap_or_else(|err| panic!("compile failed: {err}\n{src}"));
    implicit_elab::check_preservation(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("preservation: {err}"));
    let elab = implicit_elab::run(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("elab run failed: {err}"));
    let ops = implicit_opsem::eval(&compiled.decls, &compiled.core)
        .unwrap_or_else(|err| panic!("opsem run failed: {err}"));
    assert_eq!(
        elab.value.to_string(),
        ops.to_string(),
        "semantics disagree"
    );
    elab.value.to_string()
}

#[test]
fn nested_containers_through_one_higher_kinded_rule() {
    assert_eq!(run_source(NESTED_SHOW), "(\"1,2,3\", \"Box(Box(7))\")");
}

#[test]
fn higher_kinded_resolution_at_core_level() {
    // Δ = {∀b. {b→String} ⇒ f b → String, a→String} (f, a free
    // skolems) ⊢r f (f a) → String — two recursive uses of the
    // polymorphic container rule, exactly the Perfect-instance shape.
    let container = parse_rule_type("forall b. {b -> String} => f b -> String").unwrap();
    let elem = parse_rule_type("a -> String").unwrap();
    let env = ImplicitEnv::with_frame(vec![container, elem]);
    let query = parse_rule_type("f (f a) -> String").unwrap();
    let res = resolve(&env, &query, &ResolutionPolicy::paper()).unwrap();
    assert_eq!(res.steps(), 3, "container twice, element once");
    assert!(implicit_core::logic::verify_derivation(&env, &res));
}

#[test]
fn constructor_instantiation_in_core_programs() {
    // rule(∀f a. {∀b.{b} ⇒ f b, a} ⇒ f (f a))(?(f (f a))) [List, Int]
    // with {pure-ish rules} — instantiating f with the built-in List.
    let src = "rule (forall f a. {forall b. {b} => f b, a} => f (f a)) (?(f (f a))) \
               [List, Int] \
               with {rule (forall b. {b} => [b]) (?(b) :: nil [b]) : forall b. {b} => [b], \
                     9 : Int}";
    let e = parse_expr(src).unwrap();
    let decls = Declarations::new();
    let ty = Typechecker::new(&decls).check_closed(&e).unwrap();
    assert_eq!(ty, Type::list(Type::list(Type::Int)));
    let out = implicit_elab::run(&decls, &e).unwrap();
    assert_eq!(out.value.to_string(), "[[9]]");
    let v = implicit_opsem::eval(&decls, &e).unwrap();
    assert_eq!(v.to_string(), "[[9]]");
}

#[test]
fn kind_errors_are_rejected() {
    let decls = Declarations::new();
    // f used both bare and applied: kind mismatch.
    let bad = parse_expr("rule (forall f. {f, f Int} => f * f Int) ((?(f), ?(f Int)))").unwrap();
    let err = Typechecker::new(&decls).check_closed(&bad).unwrap_err();
    assert!(matches!(err, TypeError::KindMismatch { .. }), "got {err:?}");

    // A plain type where a constructor is demanded.
    let bad2 = parse_expr(
        "rule (forall f a. {forall b. {b} => f b, a} => f (f a)) (?(f (f a))) [Int, Int] \
         with {9 : Int}",
    )
    .unwrap();
    let err2 = Typechecker::new(&decls).check_closed(&bad2).unwrap_err();
    assert!(
        matches!(
            err2,
            TypeError::NotAConstructor { .. } | TypeError::ContextMismatch { .. }
        ),
        "got {err2:?}"
    );

    // A constructor where a plain type is demanded.
    let bad3 = parse_expr("rule (forall a. a -> a) ((\\x : a. x)) [List] 1").unwrap();
    let err3 = Typechecker::new(&decls).check_closed(&bad3).unwrap_err();
    assert!(
        matches!(err3, TypeError::NotAConstructor { arity: 0, .. }),
        "got {err3:?}"
    );
}

#[test]
fn constructor_matching_binds_heads() {
    // match f b against [Int]: f ↦ List, b ↦ Int.
    let f = implicit_core::Symbol::intern("hk_f");
    let b = implicit_core::Symbol::intern("hk_b");
    let pattern = Type::arrow(Type::var_app(f, vec![Type::Var(b)]), Type::Str);
    let target = Type::arrow(Type::list(Type::Int), Type::Str);
    let theta = implicit_core::unify::match_type(&pattern, &target, &[f, b]).unwrap();
    assert_eq!(theta.get(f), Some(&Type::Ctor(TyCon::List)));
    assert_eq!(theta.get(b), Some(&Type::Int));
    assert_eq!(theta.apply_type(&pattern), target);
}

#[test]
fn interface_constructors_match_too() {
    let mut decls = Declarations::new();
    decls
        .declare(implicit_core::syntax::InterfaceDecl {
            name: implicit_core::Symbol::intern("BoxHK"),
            vars: vec![implicit_core::Symbol::intern("a")],
            fields: vec![(
                implicit_core::Symbol::intern("unbox"),
                Type::var(implicit_core::Symbol::intern("a")),
            )],
        })
        .unwrap();
    let f = implicit_core::Symbol::intern("hk_g");
    let pattern = Type::var_app(f, vec![Type::Bool]);
    let target = Type::Con(implicit_core::Symbol::intern("BoxHK"), vec![Type::Bool]);
    let theta = implicit_core::unify::match_type(&pattern, &target, &[f]).unwrap();
    assert_eq!(
        theta.get(f),
        Some(&Type::Ctor(TyCon::Named(implicit_core::Symbol::intern(
            "BoxHK"
        ))))
    );
    assert_eq!(theta.apply_type(&pattern), target);
}

#[test]
fn strict_mode_accepts_the_nested_show_program() {
    let compiled = implicit_source::compile(NESTED_SHOW).unwrap();
    Typechecker::new(&compiled.decls)
        .strict()
        .check_closed(&compiled.core)
        .unwrap_or_else(|e| panic!("strict mode rejected the program: {e}"));
}
