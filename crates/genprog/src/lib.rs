//! # `genprog` — generators for environments, queries and programs
//!
//! Deterministic *workload families* (used by the benchmark harness
//! to reproduce the scaling experiments in `EXPERIMENTS.md`) and
//! seeded *random well-typed program* generators (used by the
//! property-test suites to exercise type preservation, semantic
//! agreement and resolution stability on thousands of programs).
//!
//! All randomness is driven by a caller-supplied [`rand::Rng`], so
//! every workload is reproducible from its seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use implicit_core::env::ImplicitEnv;
use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_core::subst::TySubst;
use implicit_core::symbol::{fresh, Symbol};
use implicit_core::syntax::{BinOp, Expr, RuleType, Type, UnOp};

/// A seeded RNG for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// ---------------------------------------------------------------
// Deterministic workload families (benchmarks)
// ---------------------------------------------------------------

/// A pairwise-distinct family of simple types: `Tₖ = Listᵏ(Int)`.
pub fn distinct_type(k: usize) -> Type {
    let mut t = Type::Int;
    for _ in 0..k {
        t = Type::list(t);
    }
    t
}

/// A resolution *chain* of length `n`: rules
/// `{T₀}⇒T₁, {T₁}⇒T₂, …` plus the base value type `T₀ = Int`, where
/// `Tₖ = Listᵏ(Int)`. Resolving `Tₙ` performs exactly `n + 1`
/// `TyRes` steps.
pub fn chain_env(n: usize) -> (ImplicitEnv, RuleType) {
    let mut frame: Vec<RuleType> = vec![Type::Int.promote()];
    for k in 1..=n {
        frame.push(RuleType::mono(
            vec![distinct_type(k - 1).promote()],
            distinct_type(k),
        ));
    }
    (ImplicitEnv::with_frame(frame), distinct_type(n).promote())
}

/// A single *wide* frame with `n` unrelated monomorphic rules plus
/// the queried one at the configured position.
///
/// `position` is a fraction in `[0, 1]`: 0 puts the match first in
/// the frame, 1 last (lookup scans the frame linearly, so this
/// controls scan distance).
pub fn wide_env(n: usize, position: f64) -> (ImplicitEnv, RuleType) {
    let target = Type::prod(Type::Bool, Type::Bool);
    let ix = ((n as f64) * position.clamp(0.0, 1.0)) as usize;
    let mut frame = Vec::with_capacity(n + 1);
    for k in 0..n {
        frame.push(distinct_type(k + 1).promote());
        if k + 1 == ix {
            frame.push(target.promote());
        }
    }
    if ix == 0 || ix > n {
        frame.insert(0, target.promote());
    }
    (ImplicitEnv::with_frame(frame), target.promote())
}

/// A *deep stack* of `n` frames with the match in the outermost
/// frame: lookup must descend through every scope.
pub fn deep_stack_env(n: usize) -> (ImplicitEnv, RuleType) {
    let mut env = ImplicitEnv::new();
    env.push(vec![Type::Int.promote()]); // outermost: the match
    for k in 0..n {
        env.push(vec![distinct_type(k + 1).promote()]);
    }
    (env, Type::Int.promote())
}

/// A *wide* frame whose `n` decoys all share the query's head
/// constructor and are polymorphic, so a head-constructor index
/// cannot rule them out: each lookup must attempt unification with
/// every decoy (`∀a. a * Listᵏ⁺¹(a)` never matches `Bool * Bool`
/// because the second component disagrees). This is the regime where
/// only derivation caching — not indexing — can amortize lookup.
pub fn poly_wide_env(n: usize) -> (ImplicitEnv, RuleType) {
    let target = Type::prod(Type::Bool, Type::Bool);
    let mut frame = Vec::with_capacity(n + 1);
    for k in 0..n {
        let a = Symbol::intern("gw_a");
        let mut second = Type::var(a);
        for _ in 0..=k {
            second = Type::list(second);
        }
        frame.push(RuleType::new(
            vec![a],
            vec![],
            Type::prod(Type::var(a), second),
        ));
    }
    frame.push(target.promote());
    (ImplicitEnv::with_frame(frame), target.promote())
}

/// `n` *polymorphic* candidate rules with distinct head shapes plus
/// the structural pair rule; the query requires matching against all
/// non-matching candidates in the same frame.
pub fn poly_env(n: usize) -> (ImplicitEnv, RuleType) {
    let mut frame = Vec::with_capacity(n + 2);
    for k in 0..n {
        // ∀a. [Listᵏ(a)] → Int — heads that never match a product.
        let a = Symbol::intern("gp_a");
        let mut head = Type::var(a);
        for _ in 0..k {
            head = Type::list(head);
        }
        frame.push(RuleType::new(vec![a], vec![], Type::arrow(head, Type::Int)));
    }
    let a = Symbol::intern("gp_b");
    frame.push(RuleType::new(
        vec![a],
        vec![Type::var(a).promote()],
        Type::prod(Type::var(a), Type::var(a)),
    ));
    frame.push(Type::Int.promote());
    let query = Type::prod(Type::Int, Type::Int).promote();
    (ImplicitEnv::with_frame(frame), query)
}

/// A higher-order workload: a rule with a context of `n` premises of
/// which `assumed` are assumed by the query (partial resolution) and
/// the rest must be recursively resolved.
pub fn partial_env(n: usize, assumed: usize) -> (ImplicitEnv, RuleType) {
    assert!(assumed <= n, "cannot assume more premises than exist");
    let premises: Vec<RuleType> = (0..n).map(|k| distinct_type(k + 1).promote()).collect();
    let head = Type::prod(Type::Bool, Type::Bool);
    let rule = RuleType::mono(premises.clone(), head.clone());
    let mut frame: Vec<RuleType> = premises[assumed..].to_vec(); // resolvable premises
    frame.push(rule);
    let query = RuleType::mono(premises[..assumed].to_vec(), head);
    (ImplicitEnv::with_frame(frame), query)
}

/// A higher-kinded workload: the §1-shaped container rule
/// `∀b. {b → String} ⇒ f b → String` plus the element rule
/// `a → String` (with `f`, `a` free skolems); the query asks for a
/// shower of the `n`-fold nesting `fⁿ a → String`, which resolves in
/// `n + 1` steps through constructor matching.
pub fn hk_nested_env(n: usize) -> (ImplicitEnv, RuleType) {
    let f = Symbol::intern("gp_hk_f");
    let a = Symbol::intern("gp_hk_a");
    let b = Symbol::intern("gp_hk_b");
    let container = RuleType::new(
        vec![b],
        vec![Type::arrow(Type::Var(b), Type::Str).promote()],
        Type::arrow(Type::var_app(f, vec![Type::Var(b)]), Type::Str),
    );
    let elem = Type::arrow(Type::Var(a), Type::Str).promote();
    let env = ImplicitEnv::with_frame(vec![container, elem]);
    let mut t = Type::Var(a);
    for _ in 0..n.max(1) {
        t = Type::var_app(f, vec![t]);
    }
    (env, Type::arrow(t, Type::Str).promote())
}

/// The λ⇒ *program* corresponding to [`chain_env`]: nested rule
/// abstractions whose innermost body queries the chain's end. Useful
/// for end-to-end (elaborate+evaluate vs. interpret) comparisons.
pub fn chain_program(n: usize) -> Expr {
    // implicit {0 : Int, step₁ : {T₀}⇒T₁, …} in ?Tₙ
    let mut args: Vec<(Expr, RuleType)> = vec![(Expr::Int(0), Type::Int.promote())];
    for k in 1..=n {
        let prem = distinct_type(k - 1);
        let rty = RuleType::mono(vec![prem.clone().promote()], distinct_type(k));
        // rule({T_{k-1}} ⇒ Tₖ)( ?T_{k-1} :: nil )
        let body = Expr::Cons(
            Expr::query_simple(prem.clone()).into(),
            Expr::Nil(prem).into(),
        );
        args.push((Expr::rule_abs(rty.clone(), body), rty));
    }
    Expr::implicit(args, Expr::query_simple(distinct_type(n)), distinct_type(n))
}

// ---------------------------------------------------------------
// "Wild" production-shaped workloads (Scala-implicits field study)
// ---------------------------------------------------------------

/// Knobs for [`wild_workload`]: scope shapes drawn from the
/// Krikava/Miller/Vitek field study of Scala implicits (PAPERS.md) —
/// huge flat import scopes, Zipf-skewed head-constructor popularity,
/// conversion chains, deep lexical nesting, and a hot/cold query mix.
#[derive(Clone, Debug)]
pub struct WildConfig {
    /// Rules in the outermost "import" frame (the field study's
    /// hundreds-of-implicits-in-scope regime).
    pub rules_per_frame: usize,
    /// Lexical nesting depth: one big import frame plus `frames - 1`
    /// smaller local frames (each about an eighth of the import
    /// frame).
    pub frames: usize,
    /// Cap on conversion-chain length; rules per head constructor
    /// decay Zipf-like from this, so a few constructors own long
    /// chains and the tail is singletons.
    pub max_chain: usize,
    /// Zipf exponent of the head-constructor popularity skew.
    pub skew: f64,
    /// Queries in the workload.
    pub queries: usize,
    /// Fraction of queries drawn from the small *hot* set (repeated
    /// chain-end lookups, the cache-friendly regime); the rest are
    /// cold one-offs, skewed toward fresh instantiations.
    pub hot_fraction: f64,
}

impl WildConfig {
    /// The default production shape: a 160-rule import scope, 4-deep
    /// nesting, chains up to 12, 32 queries at 75% hot.
    pub fn field_study() -> WildConfig {
        WildConfig {
            rules_per_frame: 160,
            frames: 4,
            max_chain: 12,
            skew: 1.2,
            queries: 32,
            hot_fraction: 0.75,
        }
    }
}

impl Default for WildConfig {
    fn default() -> WildConfig {
        WildConfig::field_study()
    }
}

/// Shape statistics of one generated wild workload, for coverage
/// tests and the B15 bench table.
#[derive(Clone, Debug, Default)]
pub struct WildHistogram {
    /// Rules per frame, outermost first.
    pub rules_per_frame: Vec<usize>,
    /// Head-constructor popularity, most popular first (count ties
    /// break by name for determinism).
    pub head_constructors: Vec<(String, u64)>,
    /// Context-free ground value rules.
    pub base_rules: u64,
    /// Single-premise conversion rules (`{C τᵢ₋₁} ⇒ C τᵢ`).
    pub conversion_rules: u64,
    /// Polymorphic constructor rules (`∀a. {a} ⇒ P a`).
    pub poly_rules: u64,
    /// Cross-frame bridge rules (premise resolved in an outer frame).
    pub bridge_rules: u64,
    /// Queries drawn from the hot set.
    pub hot_queries: u64,
    /// Cold one-off queries.
    pub cold_queries: u64,
    /// Longest conversion chain emitted.
    pub max_chain_len: u64,
}

impl WildHistogram {
    /// Total rules across frames.
    pub fn total_rules(&self) -> u64 {
        self.rules_per_frame.iter().map(|&n| n as u64).sum()
    }

    /// The most popular head constructor and its rule count.
    pub fn top_constructor(&self) -> Option<(&str, u64)> {
        self.head_constructors
            .first()
            .map(|(name, n)| (name.as_str(), *n))
    }

    /// A markdown table of the constructor-popularity skew (top
    /// `rows` constructors), for `EXPERIMENTS.md` and the B15 bench
    /// output.
    pub fn render_table(&self, rows: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("| head constructor | rules |\n|---|---|\n");
        for (name, n) in self.head_constructors.iter().take(rows) {
            let _ = writeln!(out, "| {name} | {n} |");
        }
        let tail: u64 = self
            .head_constructors
            .iter()
            .skip(rows)
            .map(|(_, n)| n)
            .sum();
        if tail > 0 {
            let _ = writeln!(
                out,
                "| …{} more | {tail} |",
                self.head_constructors.len() - rows
            );
        }
        out
    }
}

/// A production-shaped environment/query workload.
#[derive(Clone, Debug)]
pub struct WildWorkload {
    /// The environment: one huge import frame under smaller local
    /// frames.
    pub env: ImplicitEnv,
    /// The queries, hot/cold mixed in generation order. Every query
    /// resolves by construction (the oracle legs demand success).
    pub queries: Vec<RuleType>,
    /// Shape statistics.
    pub histogram: WildHistogram,
}

/// One conversion chain: `len` rules with head constructor `ctor`
/// over payloads `T₀ … T₍len−1₎`.
struct WildChain {
    ctor: Symbol,
    len: usize,
}

/// Builds one frame as a set of conversion chains with Zipf-skewed
/// lengths: constructor `k` gets `max_chain / (k+1)^skew` rules
/// (clamped to ≥ 1, jittered ±1), so the head histogram has a heavy
/// head and a long singleton tail, as in the field study.
fn wild_frame(
    prefix: &str,
    budget: usize,
    max_chain: usize,
    skew: f64,
    r: &mut impl Rng,
    hist: &mut WildHistogram,
) -> (Vec<RuleType>, Vec<WildChain>) {
    let mut rules = Vec::with_capacity(budget);
    let mut chains = Vec::new();
    let mut k = 0usize;
    while rules.len() < budget {
        let zipf = (max_chain as f64) / ((k + 1) as f64).powf(skew.max(0.0));
        let jitter = r.gen_range(0..=1usize);
        let len = (zipf.round() as usize + jitter)
            .clamp(1, max_chain)
            .min(budget - rules.len());
        let ctor = Symbol::intern(&format!("{prefix}C{k}"));
        // Base value rule: `C T₀` out of thin air…
        rules.push(Type::Con(ctor, vec![distinct_type(0)]).promote());
        hist.base_rules += 1;
        // …then the conversion chain `{C Tᵢ₋₁} ⇒ C Tᵢ`.
        for i in 1..len {
            rules.push(RuleType::mono(
                vec![Type::Con(ctor, vec![distinct_type(i - 1)]).promote()],
                Type::Con(ctor, vec![distinct_type(i)]),
            ));
            hist.conversion_rules += 1;
        }
        hist.max_chain_len = hist.max_chain_len.max(len as u64);
        chains.push(WildChain { ctor, len });
        k += 1;
    }
    (rules, chains)
}

/// Generates a seeded wild workload: a [`WildConfig::rules_per_frame`]-
/// rule import frame under `frames − 1` smaller local frames (with
/// polymorphic constructor rules and cross-frame bridges), plus a
/// hot/cold query mix over chain ends, mid-chain targets, and
/// polymorphic instantiations. Deterministic in `(seed, config)`.
pub fn wild_workload(seed: u64, config: &WildConfig) -> WildWorkload {
    let mut r = rng(seed.wrapping_mul(0x9E37_79B9).wrapping_add(0x571D));
    let mut hist = WildHistogram::default();
    let mut env = ImplicitEnv::new();
    // (frame label, chains, poly ctors) per frame, outermost first.
    let mut frames: Vec<(Vec<WildChain>, Vec<Symbol>)> = Vec::new();

    let frame_count = config.frames.max(1);
    for f in 0..frame_count {
        let budget = if f == 0 {
            config.rules_per_frame.max(1)
        } else {
            (config.rules_per_frame / 8).max(4)
        };
        let prefix = format!("Wf{f}");
        let (mut rules, chains) = wild_frame(
            &prefix,
            budget,
            config.max_chain.max(1),
            config.skew,
            &mut r,
            &mut hist,
        );
        // Polymorphic constructor rules: `∀a. {a} ⇒ P a` — the
        // typeclass-shaped tail that head indexing cannot fully
        // discriminate.
        let mut polys = Vec::new();
        for j in 0..2 {
            let p = Symbol::intern(&format!("{prefix}P{j}"));
            let a = Symbol::intern("wild_a");
            rules.push(RuleType::new(
                vec![a],
                vec![Type::var(a).promote()],
                Type::Con(p, vec![Type::var(a)]),
            ));
            hist.poly_rules += 1;
            polys.push(p);
        }
        // Cross-frame bridges (local frames only): the local rule's
        // premise is the *outer* import frame's top chain end, so
        // resolving the bridge head descends the scope stack.
        if f > 0 {
            if let Some((outer_chains, _)) = frames.first() {
                let top = &outer_chains[0];
                let b = Symbol::intern(&format!("{prefix}B"));
                rules.push(RuleType::mono(
                    vec![Type::Con(top.ctor, vec![distinct_type(top.len - 1)]).promote()],
                    Type::Con(b, vec![distinct_type(top.len)]),
                ));
                hist.bridge_rules += 1;
            }
        }
        hist.rules_per_frame.push(rules.len());
        env.push(rules);
        frames.push((chains, polys));
    }

    // Head-constructor histogram over the whole environment.
    {
        let mut counts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for (_, frame) in env.frames_innermost_first() {
            for rule in frame.iter() {
                let label = match rule.head() {
                    Type::Con(sym, _) => sym.as_str().to_owned(),
                    other => other.to_string(),
                };
                *counts.entry(label).or_default() += 1;
            }
        }
        let mut pairs: Vec<(String, u64)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        hist.head_constructors = pairs;
    }

    // The hot set: chain ends of the import frame's two most popular
    // constructors, plus the innermost bridge head (a deep-descent
    // repeat customer).
    let import_chains = &frames[0].0;
    let mut hot: Vec<RuleType> = import_chains
        .iter()
        .take(2)
        .map(|c| Type::Con(c.ctor, vec![distinct_type(c.len - 1)]).promote())
        .collect();
    if frame_count > 1 && hist.bridge_rules > 0 {
        let top = &import_chains[0];
        let b = Symbol::intern(&format!("Wf{}B", frame_count - 1));
        hot.push(Type::Con(b, vec![distinct_type(top.len)]).promote());
    }

    let mut queries = Vec::with_capacity(config.queries);
    for _ in 0..config.queries {
        if r.gen_bool(config.hot_fraction.clamp(0.0, 1.0)) {
            let q = hot[r.gen_range(0..hot.len())].clone();
            hist.hot_queries += 1;
            queries.push(q);
        } else {
            // A cold one-off: a random chain position in a random
            // frame, optionally wrapped in a polymorphic constructor
            // (a fresh instantiation the cache has never seen).
            let f = r.gen_range(0..frames.len());
            let (chains, polys) = &frames[f];
            let c = &chains[r.gen_range(0..chains.len())];
            let depth = r.gen_range(0..c.len);
            let mut target = Type::Con(c.ctor, vec![distinct_type(depth)]);
            if r.gen_bool(0.4) {
                let p = polys[r.gen_range(0..polys.len())];
                target = Type::Con(p, vec![target]);
            }
            hist.cold_queries += 1;
            queries.push(target.promote());
        }
    }

    WildWorkload {
        env,
        queries,
        histogram: hist,
    }
}

// ---------------------------------------------------------------
// Random well-typed programs (property tests)
// ---------------------------------------------------------------

/// Configuration for the random program generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum expression depth.
    pub max_depth: usize,
    /// Probability of wrapping a subterm in a new `implicit` scope.
    pub scope_prob: f64,
    /// Probability of answering a request with a query (when
    /// resolvable).
    pub query_prob: f64,
    /// Probability of data-typed constructs (`con`/`match`, applied
    /// type constructors) at eligible positions. Only effective when
    /// generating against declarations containing the
    /// [`data_prelude`] types; ignored otherwise.
    pub data_prob: f64,
    /// Probability of emitting a (guaranteed-terminating) `fix`
    /// recursion at `Int` positions — a countdown loop or a length
    /// fold over a list at a random element type.
    pub fix_prob: f64,
    /// Maximum nesting depth of `implicit` scopes. Bounds the frame
    /// stack that resolution (and the derivation cache) must handle.
    pub max_scope_depth: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_depth: 5,
            scope_prob: 0.3,
            query_prob: 0.5,
            data_prob: 0.3,
            fix_prob: 0.15,
            max_scope_depth: 4,
        }
    }
}

/// Per-construct emission counters, accumulated while generating.
///
/// The conformance harness aggregates these across a sweep to prove
/// that the generator actually exercises every syntax construct it
/// claims to cover (the "generator coverage histogram" of the run
/// report).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the histogram labels
pub struct GenCounters {
    pub int_lit: u64,
    pub bool_lit: u64,
    pub str_lit: u64,
    pub binop: u64,
    pub if_then_else: u64,
    pub pair: u64,
    pub list: u64,
    pub query: u64,
    pub implicit_scope: u64,
    pub poly_rule: u64,
    pub hk_rule: u64,
    pub hk_query: u64,
    pub inject: u64,
    pub match_arms: u64,
    pub fix_rec: u64,
    pub list_case: u64,
    pub applied_ctor_type: u64,
    /// Deepest implicit-scope nesting reached (a max, not a sum).
    pub max_scope_depth: u64,
    /// Rules emitted across wild-mode frames.
    pub wild_rules: u64,
    /// Wild-mode queries drawn from the hot set.
    pub wild_hot_queries: u64,
    /// Wild-mode cold one-off queries.
    pub wild_cold_queries: u64,
    /// Longest wild-mode conversion chain (a max, not a sum).
    pub wild_max_chain: u64,
}

impl GenCounters {
    /// Accumulates `other` into `self` (sums counts, maxes depths).
    pub fn merge(&mut self, other: &GenCounters) {
        let GenCounters {
            int_lit,
            bool_lit,
            str_lit,
            binop,
            if_then_else,
            pair,
            list,
            query,
            implicit_scope,
            poly_rule,
            hk_rule,
            hk_query,
            inject,
            match_arms,
            fix_rec,
            list_case,
            applied_ctor_type,
            max_scope_depth,
            wild_rules,
            wild_hot_queries,
            wild_cold_queries,
            wild_max_chain,
        } = other;
        self.int_lit += int_lit;
        self.bool_lit += bool_lit;
        self.str_lit += str_lit;
        self.binop += binop;
        self.if_then_else += if_then_else;
        self.pair += pair;
        self.list += list;
        self.query += query;
        self.implicit_scope += implicit_scope;
        self.poly_rule += poly_rule;
        self.hk_rule += hk_rule;
        self.hk_query += hk_query;
        self.inject += inject;
        self.match_arms += match_arms;
        self.fix_rec += fix_rec;
        self.list_case += list_case;
        self.applied_ctor_type += applied_ctor_type;
        self.max_scope_depth = self.max_scope_depth.max(*max_scope_depth);
        self.wild_rules += wild_rules;
        self.wild_hot_queries += wild_hot_queries;
        self.wild_cold_queries += wild_cold_queries;
        self.wild_max_chain = self.wild_max_chain.max(*wild_max_chain);
    }

    /// Folds a wild workload's histogram into the counters (the
    /// wild-mode sweep's coverage rows).
    pub fn record_wild(&mut self, hist: &WildHistogram) {
        self.wild_rules += hist.total_rules();
        self.wild_hot_queries += hist.hot_queries;
        self.wild_cold_queries += hist.cold_queries;
        self.wild_max_chain = self.wild_max_chain.max(hist.max_chain_len);
    }

    /// The counters as labelled pairs, in a stable order (the
    /// conformance report's histogram rows).
    pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("int_lit", self.int_lit),
            ("bool_lit", self.bool_lit),
            ("str_lit", self.str_lit),
            ("binop", self.binop),
            ("if_then_else", self.if_then_else),
            ("pair", self.pair),
            ("list", self.list),
            ("query", self.query),
            ("implicit_scope", self.implicit_scope),
            ("poly_rule", self.poly_rule),
            ("hk_rule", self.hk_rule),
            ("hk_query", self.hk_query),
            ("inject", self.inject),
            ("match_arms", self.match_arms),
            ("fix_rec", self.fix_rec),
            ("list_case", self.list_case),
            ("applied_ctor_type", self.applied_ctor_type),
            ("max_scope_depth", self.max_scope_depth),
            ("wild_rules", self.wild_rules),
            ("wild_hot_queries", self.wild_hot_queries),
            ("wild_cold_queries", self.wild_cold_queries),
            ("wild_max_chain", self.wild_max_chain),
        ]
    }
}

/// A generated well-typed program.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// The program.
    pub expr: Expr,
    /// Its type.
    pub ty: Type,
    /// What the generator emitted while building it.
    pub counters: GenCounters,
}

/// Generates a random closed, well-typed λ⇒ program whose queries
/// are all resolvable. Programs combine literals, arithmetic,
/// pairs, conditionals, nested `implicit` scopes, polymorphic rules,
/// recursion and queries. Data-typed constructs are disabled (no
/// declarations are in scope); use [`gen_program_with`] with the
/// [`data_prelude`] for the full construct set.
pub fn gen_program(rng: &mut impl Rng, config: &GenConfig) -> GenProgram {
    let decls = implicit_core::syntax::Declarations::new();
    gen_program_with(rng, config, &decls)
}

/// Generates a random closed, well-typed λ⇒ program against the
/// given declarations. When `decls` contains the [`data_prelude`]
/// types, the generator additionally emits applied type constructors
/// (`GpOpt(τ)`), `con`/`match`, and a higher-kinded container rule
/// (`∀b. {b → String} ⇒ GpOpt(b) → String`) with queries that
/// exercise it — the S20/S23 feature set.
pub fn gen_program_with(
    rng: &mut impl Rng,
    config: &GenConfig,
    decls: &implicit_core::syntax::Declarations,
) -> GenProgram {
    let has_data = decls.lookup_data(Symbol::intern("GpOpt")).is_some()
        && decls.lookup_data(Symbol::intern("GpColor")).is_some();
    let mut g = Gen {
        rng,
        config: config.clone(),
        env: ImplicitEnv::new(),
        policy: ResolutionPolicy::paper(),
        counters: GenCounters::default(),
        scope_depth: 0,
        has_data,
    };
    let ty = g.gen_type(2);
    let expr = g.gen_expr(&ty, config.max_depth);
    GenProgram {
        expr,
        ty,
        counters: g.counters,
    }
}

struct Gen<'r, R: Rng> {
    rng: &'r mut R,
    config: GenConfig,
    env: ImplicitEnv,
    policy: ResolutionPolicy,
    counters: GenCounters,
    scope_depth: usize,
    has_data: bool,
}

fn gp_opt(elem: Type) -> Type {
    Type::Con(Symbol::intern("GpOpt"), vec![elem])
}

fn gp_color() -> Type {
    Type::Con(Symbol::intern("GpColor"), vec![])
}

impl<R: Rng> Gen<'_, R> {
    fn gen_type(&mut self, depth: usize) -> Type {
        if depth == 0 {
            return match self.rng.gen_range(0..3) {
                0 => Type::Int,
                1 => Type::Bool,
                _ => Type::Str,
            };
        }
        let data = self.has_data && self.rng.gen_bool(self.config.data_prob);
        match self.rng.gen_range(0..if data { 7 } else { 5 }) {
            0 => Type::Int,
            1 => Type::Bool,
            2 => Type::Str,
            3 => Type::prod(self.gen_type(depth - 1), self.gen_type(depth - 1)),
            4 => Type::list(self.gen_type(depth - 1)),
            5 => {
                self.counters.applied_ctor_type += 1;
                gp_opt(self.gen_type(depth - 1))
            }
            _ => {
                self.counters.applied_ctor_type += 1;
                gp_color()
            }
        }
    }

    fn resolvable(&self, ty: &Type) -> bool {
        resolve(&self.env, &ty.promote(), &self.policy).is_ok()
    }

    fn gen_expr(&mut self, ty: &Type, depth: usize) -> Expr {
        // Possibly wrap in a new implicit scope that provides this
        // type (and possibly structural / higher-kinded rules).
        if depth > 0
            && self.scope_depth < self.config.max_scope_depth
            && self.rng.gen_bool(self.config.scope_prob)
        {
            return self.gen_scope(ty, depth);
        }
        // Possibly answer with a query.
        if self.rng.gen_bool(self.config.query_prob) && self.resolvable(ty) {
            self.counters.query += 1;
            return Expr::query_simple(ty.clone());
        }
        // Possibly route the answer through an exhaustive match on a
        // data scrutinee (any target type can be matched *into*).
        if depth > 1 && self.has_data && self.rng.gen_bool(self.config.data_prob) {
            return self.gen_match_wrap(ty, depth);
        }
        // Possibly compute an Int by guaranteed-terminating recursion.
        if depth > 1 && *ty == Type::Int && self.rng.gen_bool(self.config.fix_prob) {
            return self.gen_fix_int(depth);
        }
        // Possibly branch on a generated condition.
        if depth > 1 && self.rng.gen_bool(0.15) {
            self.counters.if_then_else += 1;
            let c = self.gen_expr(&Type::Bool, depth - 1);
            let t = self.gen_expr(ty, depth - 1);
            let f = self.gen_expr(ty, depth - 1);
            return Expr::if_(c, t, f);
        }
        // A String can be rendered through the higher-kinded container
        // rule when one is in scope: ?(GpOpt(Int) → String) applied to
        // a freshly injected option.
        if depth > 1
            && *ty == Type::Str
            && self.has_data
            && self.rng.gen_bool(self.config.data_prob)
        {
            let shower = Type::arrow(gp_opt(Type::Int), Type::Str);
            if self.resolvable(&shower) {
                self.counters.hk_query += 1;
                self.counters.query += 1;
                let arg = self.gen_literalish(&gp_opt(Type::Int), depth.saturating_sub(2));
                return Expr::app(Expr::query_simple(shower), arg);
            }
        }
        self.gen_literalish(ty, depth)
    }

    fn gen_scope(&mut self, ty: &Type, depth: usize) -> Expr {
        let mut args: Vec<(Expr, RuleType)> = Vec::new();
        let mut frame: Vec<RuleType> = Vec::new();
        // A base value of a random simple type.
        let base_ty = self.gen_type(1);
        let base = self.gen_literalish(&base_ty, 0);
        args.push((base, base_ty.clone().promote()));
        frame.push(base_ty.promote());
        // Sometimes add the structural pair rule.
        if self.rng.gen_bool(0.5) {
            let a = fresh("g");
            let rty = RuleType::new(
                vec![a],
                vec![Type::var(a).promote()],
                Type::prod(Type::var(a), Type::var(a)),
            );
            let body = Expr::pair(
                Expr::query_simple(Type::var(a)),
                Expr::query_simple(Type::var(a)),
            );
            // Only add when it keeps the frame overlap-free: the pair
            // rule overlaps a product base value.
            if !matches!(frame[0].head(), Type::Prod(_, _)) {
                self.counters.poly_rule += 1;
                args.push((Expr::rule_abs(rty.clone(), body), rty.clone()));
                frame.push(rty);
            }
        }
        // Sometimes add the §1-shaped container rule over an applied
        // type constructor — ∀b. {b → String} ⇒ GpOpt(b) → String —
        // together with the Int element shower it recursively needs.
        if self.has_data && self.rng.gen_bool(self.config.data_prob) {
            let (elem_e, elem_r, hk_e, hk_r) = self.container_rule_pair();
            self.counters.hk_rule += 1;
            args.push((elem_e, elem_r.clone()));
            frame.push(elem_r);
            args.push((hk_e, hk_r.clone()));
            frame.push(hk_r);
        }
        self.env.push(frame);
        self.scope_depth += 1;
        self.counters.implicit_scope += 1;
        self.counters.max_scope_depth = self.counters.max_scope_depth.max(self.scope_depth as u64);
        let body = self.gen_expr(ty, depth - 1);
        self.scope_depth -= 1;
        self.env.pop();
        Expr::implicit(args, body, ty.clone())
    }

    /// The element shower `λn:Int. intToStr n : Int → String` and the
    /// higher-kinded container rule
    /// `rule(∀b. {b → String} ⇒ GpOpt(b) → String)(λo. match o …)`.
    fn container_rule_pair(&mut self) -> (Expr, RuleType, Expr, RuleType) {
        let n = fresh("gn");
        let elem_r = Type::arrow(Type::Int, Type::Str).promote();
        let elem_e = Expr::lam(
            n,
            Type::Int,
            Expr::UnOp(UnOp::IntToStr, std::rc::Rc::new(Expr::Var(n))),
        );
        let b = fresh("gb");
        let hk_r = RuleType::new(
            vec![b],
            vec![Type::arrow(Type::var(b), Type::Str).promote()],
            Type::arrow(gp_opt(Type::var(b)), Type::Str),
        );
        let o = fresh("go");
        let x = fresh("gx");
        self.counters.query += 1;
        let hk_body = Expr::lam(
            o,
            gp_opt(Type::var(b)),
            Expr::Match(
                std::rc::Rc::new(Expr::Var(o)),
                vec![
                    implicit_core::syntax::MatchArm {
                        ctor: Symbol::intern("GpNone"),
                        binders: vec![],
                        body: Expr::Str("none".into()),
                    },
                    implicit_core::syntax::MatchArm {
                        ctor: Symbol::intern("GpSome"),
                        binders: vec![x],
                        body: Expr::app(
                            Expr::query_simple(Type::arrow(Type::var(b), Type::Str)),
                            Expr::Var(x),
                        ),
                    },
                ],
            ),
        );
        self.counters.match_arms += 2;
        let hk_e = Expr::rule_abs(hk_r.clone(), hk_body);
        (elem_e, elem_r, hk_e, hk_r)
    }

    /// Routes a value of type `ty` through an exhaustive match on a
    /// random data scrutinee.
    fn gen_match_wrap(&mut self, ty: &Type, depth: usize) -> Expr {
        if self.rng.gen_bool(0.5) {
            // match on GpColor: three arms of the target type.
            let color = ["GpRed", "GpGreen", "GpBlue"][self.rng.gen_range(0..3usize)];
            self.counters.inject += 1;
            self.counters.match_arms += 3;
            let scrut = Expr::Inject(Symbol::intern(color), vec![], vec![]);
            let arms = ["GpRed", "GpGreen", "GpBlue"]
                .iter()
                .map(|c| implicit_core::syntax::MatchArm {
                    ctor: Symbol::intern(c),
                    binders: vec![],
                    body: self.gen_expr(ty, depth - 1),
                })
                .collect();
            Expr::Match(std::rc::Rc::new(scrut), arms)
        } else {
            // match on GpOpt(τ): the Some arm can use the payload when
            // the element type is the target type itself.
            let elem = if self.rng.gen_bool(0.5) {
                ty.clone()
            } else {
                self.gen_type(1)
            };
            let scrut = self.gen_literalish(&gp_opt(elem.clone()), depth.saturating_sub(1));
            let x = fresh("gm");
            let some_body = if elem == *ty && self.rng.gen_bool(0.8) {
                Expr::Var(x)
            } else {
                self.gen_expr(ty, depth - 1)
            };
            self.counters.match_arms += 2;
            Expr::Match(
                std::rc::Rc::new(scrut),
                vec![
                    implicit_core::syntax::MatchArm {
                        ctor: Symbol::intern("GpNone"),
                        binders: vec![],
                        body: self.gen_expr(ty, depth - 1),
                    },
                    implicit_core::syntax::MatchArm {
                        ctor: Symbol::intern("GpSome"),
                        binders: vec![x],
                        body: some_body,
                    },
                ],
            )
        }
    }

    /// A guaranteed-terminating `Int` recursion: either a countdown
    /// loop or a length fold over a freshly generated list (recursion
    /// over a polymorphic container, instantiated at a random element
    /// type per program).
    fn gen_fix_int(&mut self, depth: usize) -> Expr {
        self.counters.fix_rec += 1;
        if self.rng.gen_bool(0.5) {
            // (fix f : Int → Int. λn. if n ≤ 0 then base else step + f (n−1)) k
            self.counters.if_then_else += 1;
            let f = fresh("gf");
            let n = fresh("gn");
            let base = self.gen_literalish(&Type::Int, depth.saturating_sub(2));
            let step = self.gen_literalish(&Type::Int, depth.saturating_sub(2));
            let fty = Type::arrow(Type::Int, Type::Int);
            let body = Expr::lam(
                n,
                Type::Int,
                Expr::if_(
                    Expr::binop(BinOp::Le, Expr::Var(n), Expr::Int(0)),
                    base,
                    Expr::binop(
                        BinOp::Add,
                        step,
                        Expr::app(
                            Expr::Var(f),
                            Expr::binop(BinOp::Sub, Expr::Var(n), Expr::Int(1)),
                        ),
                    ),
                ),
            );
            let k = self.rng.gen_range(0..5);
            Expr::app(Expr::Fix(f, fty, std::rc::Rc::new(body)), Expr::Int(k))
        } else {
            // (fix len : [τ] → Int. λxs. case xs of nil → 0 | h::t → 1 + len t) list
            self.counters.list_case += 1;
            let elem = self.gen_type(1);
            let len = fresh("gl");
            let xs = fresh("gxs");
            let h = fresh("gh");
            let t = fresh("gt");
            let fty = Type::arrow(Type::list(elem.clone()), Type::Int);
            let body = Expr::lam(
                xs,
                Type::list(elem.clone()),
                Expr::ListCase {
                    scrut: std::rc::Rc::new(Expr::Var(xs)),
                    nil: std::rc::Rc::new(Expr::Int(0)),
                    head: h,
                    tail: t,
                    cons: std::rc::Rc::new(Expr::binop(
                        BinOp::Add,
                        Expr::Int(1),
                        Expr::app(Expr::Var(len), Expr::Var(t)),
                    )),
                },
            );
            let list = self.gen_literalish(&Type::list(elem), depth.saturating_sub(2));
            Expr::app(Expr::Fix(len, fty, std::rc::Rc::new(body)), list)
        }
    }

    fn gen_literalish(&mut self, ty: &Type, depth: usize) -> Expr {
        match ty {
            Type::Int => {
                if depth > 0 && self.rng.gen_bool(0.5) {
                    self.counters.binop += 1;
                    let a = self.gen_expr(&Type::Int, depth - 1);
                    let b = self.gen_expr(&Type::Int, depth - 1);
                    let op = [BinOp::Add, BinOp::Sub, BinOp::Mul][self.rng.gen_range(0..3usize)];
                    Expr::binop(op, a, b)
                } else {
                    self.counters.int_lit += 1;
                    Expr::Int(self.rng.gen_range(-100..100))
                }
            }
            Type::Bool => {
                if depth > 0 && self.rng.gen_bool(0.4) {
                    self.counters.binop += 1;
                    let a = self.gen_expr(&Type::Int, depth - 1);
                    let b = self.gen_expr(&Type::Int, depth - 1);
                    Expr::binop(BinOp::Lt, a, b)
                } else {
                    self.counters.bool_lit += 1;
                    Expr::Bool(self.rng.gen_bool(0.5))
                }
            }
            Type::Str => {
                if depth > 0 && self.rng.gen_bool(0.4) {
                    Expr::UnOp(
                        UnOp::IntToStr,
                        std::rc::Rc::new(self.gen_expr(&Type::Int, depth - 1)),
                    )
                } else {
                    self.counters.str_lit += 1;
                    let n = self.rng.gen_range(0..100);
                    Expr::Str(format!("s{n}"))
                }
            }
            Type::Prod(a, b) => {
                self.counters.pair += 1;
                let ea = self.gen_expr(a, depth.saturating_sub(1));
                let eb = self.gen_expr(b, depth.saturating_sub(1));
                Expr::pair(ea, eb)
            }
            Type::List(el) => {
                self.counters.list += 1;
                let n = self.rng.gen_range(0..3);
                let items = (0..n)
                    .map(|_| self.gen_expr(el, depth.saturating_sub(1)))
                    .collect();
                Expr::list((**el).clone(), items)
            }
            Type::Con(name, targs) if self.has_data => {
                self.counters.inject += 1;
                if name.as_str() == "GpColor" {
                    let color = ["GpRed", "GpGreen", "GpBlue"][self.rng.gen_range(0..3usize)];
                    Expr::Inject(Symbol::intern(color), vec![], vec![])
                } else if name.as_str() == "GpOpt" && targs.len() == 1 {
                    if depth > 0 && self.rng.gen_bool(0.7) {
                        let payload = self.gen_expr(&targs[0], depth - 1);
                        Expr::Inject(Symbol::intern("GpSome"), targs.clone(), vec![payload])
                    } else {
                        Expr::Inject(Symbol::intern("GpNone"), targs.clone(), vec![])
                    }
                } else {
                    self.gen_literalish_fallback(ty)
                }
            }
            // If-wrapping keeps other types inhabitable too.
            other => {
                self.counters.if_then_else += 1;
                let c = self.gen_expr(&Type::Bool, depth.saturating_sub(1));
                let t = self.gen_literalish_fallback(other);
                let f = self.gen_literalish_fallback(other);
                Expr::if_(c, t, f)
            }
        }
    }

    fn gen_literalish_fallback(&mut self, ty: &Type) -> Expr {
        match ty {
            Type::Int => Expr::Int(0),
            Type::Bool => Expr::Bool(false),
            Type::Str => Expr::Str(String::new()),
            Type::Unit => Expr::Unit,
            Type::Prod(a, b) => Expr::pair(
                self.gen_literalish_fallback(a),
                self.gen_literalish_fallback(b),
            ),
            Type::List(el) => Expr::Nil((**el).clone()),
            Type::Arrow(a, b) => {
                let x = fresh("x");
                Expr::Lam(x, (**a).clone(), self.gen_literalish_fallback(b).into())
            }
            Type::Con(name, targs) if name.as_str() == "GpOpt" && targs.len() == 1 => {
                Expr::Inject(Symbol::intern("GpNone"), targs.clone(), vec![])
            }
            Type::Con(name, targs) if name.as_str() == "GpColor" && targs.is_empty() => {
                Expr::Inject(Symbol::intern("GpRed"), vec![], vec![])
            }
            _ => Expr::Unit,
        }
    }
}

/// A fixed declaration prelude for data-typed random programs: a
/// simple enum and an option-like container.
pub fn data_prelude() -> implicit_core::syntax::Declarations {
    let mut decls = implicit_core::syntax::Declarations::new();
    let color = implicit_core::syntax::DataDecl::infer(
        Symbol::intern("GpColor"),
        vec![],
        vec![
            (Symbol::intern("GpRed"), vec![]),
            (Symbol::intern("GpGreen"), vec![]),
            (Symbol::intern("GpBlue"), vec![]),
        ],
    )
    .expect("well-kinded");
    decls.declare_data(color).expect("fresh name");
    let opt = implicit_core::syntax::DataDecl::infer(
        Symbol::intern("GpOpt"),
        vec![Symbol::intern("gp_opt_a")],
        vec![
            (Symbol::intern("GpNone"), vec![]),
            (
                Symbol::intern("GpSome"),
                vec![Type::Var(Symbol::intern("gp_opt_a"))],
            ),
        ],
    )
    .expect("well-kinded");
    decls.declare_data(opt).expect("fresh name");
    decls
}

/// Generates a random well-typed program over the [`data_prelude`]
/// declarations, mixing the full construct set of
/// [`gen_program_with`] with a guaranteed `con`/`match` wrapper (so
/// every data program exercises `Inject` and `Match` at least once).
pub fn gen_data_program(rng: &mut impl Rng, config: &GenConfig) -> GenProgram {
    let decls = data_prelude();
    let mut base = gen_program_with(rng, config, &decls);
    base.counters.inject += 2;
    base.counters.match_arms += 5;
    // Wrap the generated program in data-typed scaffolding: inject it
    // into GpOpt and match it back, and branch on a random GpColor.
    let color = ["GpRed", "GpGreen", "GpBlue"][rng.gen_range(0..3usize)];
    let scrut = Expr::Inject(Symbol::intern(color), vec![], vec![]);
    let color_pick = Expr::Match(
        std::rc::Rc::new(scrut),
        vec![
            implicit_core::syntax::MatchArm {
                ctor: Symbol::intern("GpRed"),
                binders: vec![],
                body: Expr::Int(0),
            },
            implicit_core::syntax::MatchArm {
                ctor: Symbol::intern("GpGreen"),
                binders: vec![],
                body: Expr::Int(1),
            },
            implicit_core::syntax::MatchArm {
                ctor: Symbol::intern("GpBlue"),
                binders: vec![],
                body: Expr::Int(2),
            },
        ],
    );
    let x = fresh("gpx");
    let wrapped = Expr::Match(
        std::rc::Rc::new(Expr::Inject(
            Symbol::intern("GpSome"),
            vec![base.ty.clone()],
            vec![base.expr],
        )),
        vec![
            implicit_core::syntax::MatchArm {
                ctor: Symbol::intern("GpNone"),
                binders: vec![],
                body: Expr::pair(Expr::Int(-1), gen_fallback(&base.ty)),
            },
            implicit_core::syntax::MatchArm {
                ctor: Symbol::intern("GpSome"),
                binders: vec![x],
                body: Expr::pair(color_pick, Expr::Var(x)),
            },
        ],
    );
    GenProgram {
        expr: wrapped,
        ty: Type::prod(Type::Int, base.ty),
        counters: base.counters,
    }
}

fn gen_fallback(ty: &Type) -> Expr {
    match ty {
        Type::Int => Expr::Int(0),
        Type::Bool => Expr::Bool(false),
        Type::Str => Expr::Str(String::new()),
        Type::Unit => Expr::Unit,
        Type::Prod(a, b) => Expr::pair(gen_fallback(a), gen_fallback(b)),
        Type::List(el) => Expr::Nil((**el).clone()),
        Type::Con(name, targs) if name.as_str() == "GpOpt" && targs.len() == 1 => {
            Expr::Inject(Symbol::intern("GpNone"), targs.clone(), vec![])
        }
        Type::Con(name, _) if name.as_str() == "GpColor" => {
            Expr::Inject(Symbol::intern("GpRed"), vec![], vec![])
        }
        _ => Expr::Unit,
    }
}

/// A random ground substitution over the given variables (used for
/// stability properties).
pub fn gen_subst(rng: &mut impl Rng, vars: &[Symbol]) -> TySubst {
    let mut s = TySubst::new();
    for &v in vars {
        let t = match rng.gen_range(0..4) {
            0 => Type::Int,
            1 => Type::Bool,
            2 => Type::Str,
            _ => Type::prod(Type::Int, Type::Bool),
        };
        s.bind(v, t);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_env_resolves_in_n_plus_one_steps() {
        for n in [0, 1, 5, 20] {
            let (env, q) = chain_env(n);
            let res = resolve(&env, &q, &ResolutionPolicy::paper().with_max_depth(4096)).unwrap();
            assert_eq!(res.steps(), n + 1, "chain length {n}");
        }
    }

    #[test]
    fn wide_env_resolves_everywhere() {
        for pos in [0.0, 0.5, 1.0] {
            let (env, q) = wide_env(64, pos);
            assert!(resolve(&env, &q, &ResolutionPolicy::paper()).is_ok());
        }
    }

    #[test]
    fn deep_stack_env_descends() {
        let (env, q) = deep_stack_env(32);
        let res = resolve(&env, &q, &ResolutionPolicy::paper()).unwrap();
        assert_eq!(res.steps(), 1);
        match res.rule {
            implicit_core::resolve::RuleRef::Env { frame, .. } => assert_eq!(frame, 32),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn poly_env_resolves() {
        let (env, q) = poly_env(16);
        assert!(resolve(&env, &q, &ResolutionPolicy::paper()).is_ok());
    }

    #[test]
    fn partial_env_mixes_assumed_and_derived() {
        let (env, q) = partial_env(6, 3);
        let res = resolve(&env, &q, &ResolutionPolicy::paper()).unwrap();
        assert!(res.is_partial());
        let assumed = res
            .premises
            .iter()
            .filter(|p| matches!(p, implicit_core::resolve::Premise::Assumed { .. }))
            .count();
        assert_eq!(assumed, 3);
    }

    #[test]
    fn chain_programs_typecheck() {
        let decls = implicit_core::syntax::Declarations::new();
        for n in [0, 3, 8] {
            let e = chain_program(n);
            implicit_core::typeck::Typechecker::new(&decls)
                .check_closed(&e)
                .unwrap_or_else(|err| panic!("chain {n}: {err}"));
        }
    }

    #[test]
    fn generated_programs_typecheck() {
        let decls = implicit_core::syntax::Declarations::new();
        let mut r = rng(42);
        for i in 0..200 {
            let p = gen_program(&mut r, &GenConfig::default());
            let got = implicit_core::typeck::Typechecker::new(&decls)
                .check_closed(&p.expr)
                .unwrap_or_else(|err| panic!("program {i} ill-typed: {err}\n{}", p.expr));
            assert!(
                implicit_core::typeck::types_equal(&got, &p.ty),
                "program {i}: expected {}, got {got}",
                p.ty
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = gen_program(&mut rng(7), &GenConfig::default());
        let b = gen_program(&mut rng(7), &GenConfig::default());
        assert_eq!(format!("{}", a.expr), format!("{}", b.expr));
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn data_aware_programs_typecheck_with_full_construct_set() {
        let decls = data_prelude();
        let mut r = rng(2024);
        let mut total = GenCounters::default();
        for i in 0..300 {
            let p = gen_program_with(&mut r, &GenConfig::default(), &decls);
            let got = implicit_core::typeck::Typechecker::new(&decls)
                .check_closed(&p.expr)
                .unwrap_or_else(|err| panic!("program {i} ill-typed: {err}\n{}", p.expr));
            assert!(
                implicit_core::typeck::types_equal(&got, &p.ty),
                "program {i}: expected {}, got {got}",
                p.ty
            );
            total.merge(&p.counters);
        }
        // The v2 construct set is actually exercised across a sweep.
        assert!(total.inject > 0, "no constructor applications emitted");
        assert!(total.match_arms > 0, "no matches emitted");
        assert!(total.fix_rec > 0, "no recursion emitted");
        assert!(total.hk_rule > 0, "no higher-kinded rules emitted");
        assert!(total.applied_ctor_type > 0, "no applied constructors");
        assert!(total.query > 0 && total.implicit_scope > 0);
    }

    #[test]
    fn scope_depth_knob_bounds_nesting() {
        let cfg = GenConfig {
            scope_prob: 0.95,
            max_depth: 8,
            max_scope_depth: 2,
            ..GenConfig::default()
        };
        let mut r = rng(11);
        for _ in 0..100 {
            let p = gen_program(&mut r, &cfg);
            assert!(p.counters.max_scope_depth <= 2);
        }
    }

    #[test]
    fn counters_merge_sums_and_maxes() {
        let mut a = GenCounters {
            int_lit: 3,
            max_scope_depth: 1,
            ..GenCounters::default()
        };
        let b = GenCounters {
            int_lit: 4,
            query: 2,
            max_scope_depth: 5,
            ..GenCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.int_lit, 7);
        assert_eq!(a.query, 2);
        assert_eq!(a.max_scope_depth, 5);
        assert_eq!(a.as_pairs().len(), 22);
    }

    /// Acceptance criterion for the wild mode: the default
    /// (field-study) shape emits ≥100 rules in at least one frame,
    /// with a skewed head-constructor histogram — the most popular
    /// constructor owns several rules while the tail is singletons.
    #[test]
    fn wild_coverage_histogram_is_production_shaped() {
        for seed in 0..8u64 {
            let w = wild_workload(seed, &WildConfig::field_study());
            let hist = &w.histogram;
            // One huge import frame…
            let biggest = *hist.rules_per_frame.iter().max().unwrap();
            assert!(
                biggest >= 100,
                "seed {seed}: biggest frame has only {biggest} rules"
            );
            assert_eq!(hist.rules_per_frame.len(), 4);
            assert_eq!(hist.total_rules(), env_rule_count(&w.env) as u64);
            // …with Zipf-skewed head popularity: the top constructor
            // owns a long chain, the tail is singletons, and the gap
            // between them is wide.
            let (_, top) = hist.top_constructor().unwrap();
            let (_, bottom) = *hist.head_constructors.last().unwrap();
            assert!(
                top >= 8 && bottom <= 2 && top >= 4 * bottom,
                "seed {seed}: skew too flat (top {top}, bottom {bottom})"
            );
            let singletons = hist
                .head_constructors
                .iter()
                .filter(|(_, n)| *n == 1)
                .count();
            assert!(
                singletons * 2 >= hist.head_constructors.len(),
                "seed {seed}: tail not singleton-heavy ({singletons} of {})",
                hist.head_constructors.len()
            );
            // Deep conversion chains and every rule category present.
            assert!(hist.max_chain_len >= 8, "seed {seed}");
            assert!(hist.base_rules > 0 && hist.conversion_rules > 0);
            assert!(hist.poly_rules > 0 && hist.bridge_rules > 0);
            // Hot/cold mix roughly matches the configured fraction.
            assert_eq!(hist.hot_queries + hist.cold_queries, 32);
            assert!(hist.hot_queries >= 16, "seed {seed}: {hist:?}");
            // The rendered table is well-formed markdown.
            let table = hist.render_table(5);
            assert!(table.starts_with("| head constructor | rules |"));
            assert!(table.contains("more"));
        }
    }

    fn env_rule_count(env: &ImplicitEnv) -> usize {
        env.frames_innermost_first()
            .map(|(_, frame)| frame.len())
            .sum()
    }

    /// Every wild query resolves (the oracle legs demand success),
    /// under both the logic resolver and the subtyping resolver, with
    /// identical evidence.
    #[test]
    fn wild_queries_all_resolve_and_engines_agree() {
        let policy = ResolutionPolicy::paper().with_max_depth(4096);
        for seed in [0u64, 1, 7, 42] {
            let w = wild_workload(seed, &WildConfig::field_study());
            for q in &w.queries {
                let res = resolve(&w.env, q, &policy)
                    .unwrap_or_else(|e| panic!("seed {seed}, query {q}: {e:?}"));
                let sub = implicit_core::subtyping::subtype_resolve(&w.env, q, &policy)
                    .unwrap_or_else(|e| panic!("seed {seed}, query {q} (subtyping): {e:?}"));
                assert_eq!(res, sub.to_resolution(), "seed {seed}, query {q}");
            }
        }
    }

    /// The wild environment passes the source-level termination and
    /// coherence guards — production-shaped, not pathological.
    #[test]
    fn wild_env_passes_guards() {
        let w = wild_workload(3, &WildConfig::field_study());
        for (_, frame) in w.env.frames_innermost_first() {
            for rule in frame.iter() {
                implicit_core::termination::check_rule(rule)
                    .unwrap_or_else(|e| panic!("{rule}: {e:?}"));
            }
            implicit_core::coherence::unique_instances(frame)
                .unwrap_or_else(|e| panic!("overlap: {e:?}"));
        }
    }

    #[test]
    fn wild_workload_is_deterministic_per_seed() {
        let cfg = WildConfig::field_study();
        let a = wild_workload(9, &cfg);
        let b = wild_workload(9, &cfg);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.histogram.head_constructors, b.histogram.head_constructors);
        let c = wild_workload(10, &cfg);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn record_wild_folds_histogram_into_counters() {
        let w = wild_workload(0, &WildConfig::field_study());
        let mut counters = GenCounters::default();
        counters.record_wild(&w.histogram);
        assert_eq!(counters.wild_rules, w.histogram.total_rules());
        assert_eq!(counters.wild_hot_queries + counters.wild_cold_queries, 32);
        assert_eq!(counters.wild_max_chain, w.histogram.max_chain_len);
    }
}
