//! # `genprog` — generators for environments, queries and programs
//!
//! Deterministic *workload families* (used by the benchmark harness
//! to reproduce the scaling experiments in `EXPERIMENTS.md`) and
//! seeded *random well-typed program* generators (used by the
//! property-test suites to exercise type preservation, semantic
//! agreement and resolution stability on thousands of programs).
//!
//! All randomness is driven by a caller-supplied [`rand::Rng`], so
//! every workload is reproducible from its seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use implicit_core::env::ImplicitEnv;
use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_core::subst::TySubst;
use implicit_core::symbol::{fresh, Symbol};
use implicit_core::syntax::{BinOp, Expr, RuleType, Type, UnOp};

/// A seeded RNG for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// ---------------------------------------------------------------
// Deterministic workload families (benchmarks)
// ---------------------------------------------------------------

/// A pairwise-distinct family of simple types: `Tₖ = Listᵏ(Int)`.
pub fn distinct_type(k: usize) -> Type {
    let mut t = Type::Int;
    for _ in 0..k {
        t = Type::list(t);
    }
    t
}

/// A resolution *chain* of length `n`: rules
/// `{T₀}⇒T₁, {T₁}⇒T₂, …` plus the base value type `T₀ = Int`, where
/// `Tₖ = Listᵏ(Int)`. Resolving `Tₙ` performs exactly `n + 1`
/// `TyRes` steps.
pub fn chain_env(n: usize) -> (ImplicitEnv, RuleType) {
    let mut frame: Vec<RuleType> = vec![Type::Int.promote()];
    for k in 1..=n {
        frame.push(RuleType::mono(
            vec![distinct_type(k - 1).promote()],
            distinct_type(k),
        ));
    }
    (ImplicitEnv::with_frame(frame), distinct_type(n).promote())
}

/// A single *wide* frame with `n` unrelated monomorphic rules plus
/// the queried one at the configured position.
///
/// `position` is a fraction in `[0, 1]`: 0 puts the match first in
/// the frame, 1 last (lookup scans the frame linearly, so this
/// controls scan distance).
pub fn wide_env(n: usize, position: f64) -> (ImplicitEnv, RuleType) {
    let target = Type::prod(Type::Bool, Type::Bool);
    let ix = ((n as f64) * position.clamp(0.0, 1.0)) as usize;
    let mut frame = Vec::with_capacity(n + 1);
    for k in 0..n {
        frame.push(distinct_type(k + 1).promote());
        if k + 1 == ix {
            frame.push(target.promote());
        }
    }
    if ix == 0 || ix > n {
        frame.insert(0, target.promote());
    }
    (ImplicitEnv::with_frame(frame), target.promote())
}

/// A *deep stack* of `n` frames with the match in the outermost
/// frame: lookup must descend through every scope.
pub fn deep_stack_env(n: usize) -> (ImplicitEnv, RuleType) {
    let mut env = ImplicitEnv::new();
    env.push(vec![Type::Int.promote()]); // outermost: the match
    for k in 0..n {
        env.push(vec![distinct_type(k + 1).promote()]);
    }
    (env, Type::Int.promote())
}

/// A *wide* frame whose `n` decoys all share the query's head
/// constructor and are polymorphic, so a head-constructor index
/// cannot rule them out: each lookup must attempt unification with
/// every decoy (`∀a. a * Listᵏ⁺¹(a)` never matches `Bool * Bool`
/// because the second component disagrees). This is the regime where
/// only derivation caching — not indexing — can amortize lookup.
pub fn poly_wide_env(n: usize) -> (ImplicitEnv, RuleType) {
    let target = Type::prod(Type::Bool, Type::Bool);
    let mut frame = Vec::with_capacity(n + 1);
    for k in 0..n {
        let a = Symbol::intern("gw_a");
        let mut second = Type::var(a);
        for _ in 0..=k {
            second = Type::list(second);
        }
        frame.push(RuleType::new(
            vec![a],
            vec![],
            Type::prod(Type::var(a), second),
        ));
    }
    frame.push(target.promote());
    (ImplicitEnv::with_frame(frame), target.promote())
}

/// `n` *polymorphic* candidate rules with distinct head shapes plus
/// the structural pair rule; the query requires matching against all
/// non-matching candidates in the same frame.
pub fn poly_env(n: usize) -> (ImplicitEnv, RuleType) {
    let mut frame = Vec::with_capacity(n + 2);
    for k in 0..n {
        // ∀a. [Listᵏ(a)] → Int — heads that never match a product.
        let a = Symbol::intern("gp_a");
        let mut head = Type::var(a);
        for _ in 0..k {
            head = Type::list(head);
        }
        frame.push(RuleType::new(vec![a], vec![], Type::arrow(head, Type::Int)));
    }
    let a = Symbol::intern("gp_b");
    frame.push(RuleType::new(
        vec![a],
        vec![Type::var(a).promote()],
        Type::prod(Type::var(a), Type::var(a)),
    ));
    frame.push(Type::Int.promote());
    let query = Type::prod(Type::Int, Type::Int).promote();
    (ImplicitEnv::with_frame(frame), query)
}

/// A higher-order workload: a rule with a context of `n` premises of
/// which `assumed` are assumed by the query (partial resolution) and
/// the rest must be recursively resolved.
pub fn partial_env(n: usize, assumed: usize) -> (ImplicitEnv, RuleType) {
    assert!(assumed <= n, "cannot assume more premises than exist");
    let premises: Vec<RuleType> = (0..n).map(|k| distinct_type(k + 1).promote()).collect();
    let head = Type::prod(Type::Bool, Type::Bool);
    let rule = RuleType::mono(premises.clone(), head.clone());
    let mut frame: Vec<RuleType> = premises[assumed..].to_vec(); // resolvable premises
    frame.push(rule);
    let query = RuleType::mono(premises[..assumed].to_vec(), head);
    (ImplicitEnv::with_frame(frame), query)
}

/// A higher-kinded workload: the §1-shaped container rule
/// `∀b. {b → String} ⇒ f b → String` plus the element rule
/// `a → String` (with `f`, `a` free skolems); the query asks for a
/// shower of the `n`-fold nesting `fⁿ a → String`, which resolves in
/// `n + 1` steps through constructor matching.
pub fn hk_nested_env(n: usize) -> (ImplicitEnv, RuleType) {
    let f = Symbol::intern("gp_hk_f");
    let a = Symbol::intern("gp_hk_a");
    let b = Symbol::intern("gp_hk_b");
    let container = RuleType::new(
        vec![b],
        vec![Type::arrow(Type::Var(b), Type::Str).promote()],
        Type::arrow(Type::var_app(f, vec![Type::Var(b)]), Type::Str),
    );
    let elem = Type::arrow(Type::Var(a), Type::Str).promote();
    let env = ImplicitEnv::with_frame(vec![container, elem]);
    let mut t = Type::Var(a);
    for _ in 0..n.max(1) {
        t = Type::var_app(f, vec![t]);
    }
    (env, Type::arrow(t, Type::Str).promote())
}

/// The λ⇒ *program* corresponding to [`chain_env`]: nested rule
/// abstractions whose innermost body queries the chain's end. Useful
/// for end-to-end (elaborate+evaluate vs. interpret) comparisons.
pub fn chain_program(n: usize) -> Expr {
    // implicit {0 : Int, step₁ : {T₀}⇒T₁, …} in ?Tₙ
    let mut args: Vec<(Expr, RuleType)> = vec![(Expr::Int(0), Type::Int.promote())];
    for k in 1..=n {
        let prem = distinct_type(k - 1);
        let rty = RuleType::mono(vec![prem.clone().promote()], distinct_type(k));
        // rule({T_{k-1}} ⇒ Tₖ)( ?T_{k-1} :: nil )
        let body = Expr::Cons(
            Expr::query_simple(prem.clone()).into(),
            Expr::Nil(prem).into(),
        );
        args.push((Expr::rule_abs(rty.clone(), body), rty));
    }
    Expr::implicit(args, Expr::query_simple(distinct_type(n)), distinct_type(n))
}

// ---------------------------------------------------------------
// Random well-typed programs (property tests)
// ---------------------------------------------------------------

/// Configuration for the random program generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum expression depth.
    pub max_depth: usize,
    /// Probability of wrapping a subterm in a new `implicit` scope.
    pub scope_prob: f64,
    /// Probability of answering a request with a query (when
    /// resolvable).
    pub query_prob: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_depth: 5,
            scope_prob: 0.3,
            query_prob: 0.5,
        }
    }
}

/// A generated well-typed program.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// The program.
    pub expr: Expr,
    /// Its type.
    pub ty: Type,
}

/// Generates a random closed, well-typed λ⇒ program whose queries
/// are all resolvable. Programs combine literals, arithmetic,
/// pairs, conditionals, nested `implicit` scopes, polymorphic rules
/// and queries.
pub fn gen_program(rng: &mut impl Rng, config: &GenConfig) -> GenProgram {
    let mut g = Gen {
        rng,
        config: config.clone(),
        env: ImplicitEnv::new(),
        policy: ResolutionPolicy::paper(),
    };
    let ty = g.gen_type(2);
    let expr = g.gen_expr(&ty, config.max_depth);
    GenProgram { expr, ty }
}

struct Gen<'r, R: Rng> {
    rng: &'r mut R,
    config: GenConfig,
    env: ImplicitEnv,
    policy: ResolutionPolicy,
}

impl<R: Rng> Gen<'_, R> {
    fn gen_type(&mut self, depth: usize) -> Type {
        if depth == 0 {
            return match self.rng.gen_range(0..3) {
                0 => Type::Int,
                1 => Type::Bool,
                _ => Type::Str,
            };
        }
        match self.rng.gen_range(0..5) {
            0 => Type::Int,
            1 => Type::Bool,
            2 => Type::Str,
            3 => Type::prod(self.gen_type(depth - 1), self.gen_type(depth - 1)),
            _ => Type::list(self.gen_type(depth - 1)),
        }
    }

    fn resolvable(&self, ty: &Type) -> bool {
        resolve(&self.env, &ty.promote(), &self.policy).is_ok()
    }

    fn gen_expr(&mut self, ty: &Type, depth: usize) -> Expr {
        // Possibly wrap in a new implicit scope that provides this
        // type (and possibly a structural pair rule).
        if depth > 0 && self.rng.gen_bool(self.config.scope_prob) {
            return self.gen_scope(ty, depth);
        }
        // Possibly answer with a query.
        if self.rng.gen_bool(self.config.query_prob) && self.resolvable(ty) {
            return Expr::query_simple(ty.clone());
        }
        self.gen_literalish(ty, depth)
    }

    fn gen_scope(&mut self, ty: &Type, depth: usize) -> Expr {
        let mut args: Vec<(Expr, RuleType)> = Vec::new();
        let mut frame: Vec<RuleType> = Vec::new();
        // A base value of a random simple type.
        let base_ty = self.gen_type(1);
        let base = self.gen_literalish(&base_ty, 0);
        args.push((base, base_ty.clone().promote()));
        frame.push(base_ty.promote());
        // Sometimes add the structural pair rule.
        if self.rng.gen_bool(0.5) {
            let a = fresh("g");
            let rty = RuleType::new(
                vec![a],
                vec![Type::var(a).promote()],
                Type::prod(Type::var(a), Type::var(a)),
            );
            let body = Expr::pair(
                Expr::query_simple(Type::var(a)),
                Expr::query_simple(Type::var(a)),
            );
            // Only add when it keeps the frame overlap-free: the pair
            // rule overlaps a product base value.
            if !matches!(frame[0].head(), Type::Prod(_, _)) {
                args.push((Expr::rule_abs(rty.clone(), body), rty.clone()));
                frame.push(rty);
            }
        }
        self.env.push(frame);
        let body = self.gen_expr(ty, depth - 1);
        self.env.pop();
        Expr::implicit(args, body, ty.clone())
    }

    fn gen_literalish(&mut self, ty: &Type, depth: usize) -> Expr {
        match ty {
            Type::Int => {
                if depth > 0 && self.rng.gen_bool(0.5) {
                    let a = self.gen_expr(&Type::Int, depth - 1);
                    let b = self.gen_expr(&Type::Int, depth - 1);
                    let op = [BinOp::Add, BinOp::Sub, BinOp::Mul][self.rng.gen_range(0..3usize)];
                    Expr::binop(op, a, b)
                } else {
                    Expr::Int(self.rng.gen_range(-100..100))
                }
            }
            Type::Bool => {
                if depth > 0 && self.rng.gen_bool(0.4) {
                    let a = self.gen_expr(&Type::Int, depth - 1);
                    let b = self.gen_expr(&Type::Int, depth - 1);
                    Expr::binop(BinOp::Lt, a, b)
                } else {
                    Expr::Bool(self.rng.gen_bool(0.5))
                }
            }
            Type::Str => {
                if depth > 0 && self.rng.gen_bool(0.4) {
                    Expr::UnOp(
                        UnOp::IntToStr,
                        std::rc::Rc::new(self.gen_expr(&Type::Int, depth - 1)),
                    )
                } else {
                    let n = self.rng.gen_range(0..100);
                    Expr::Str(format!("s{n}"))
                }
            }
            Type::Prod(a, b) => {
                let ea = self.gen_expr(a, depth.saturating_sub(1));
                let eb = self.gen_expr(b, depth.saturating_sub(1));
                Expr::pair(ea, eb)
            }
            Type::List(el) => {
                let n = self.rng.gen_range(0..3);
                let items = (0..n)
                    .map(|_| self.gen_expr(el, depth.saturating_sub(1)))
                    .collect();
                Expr::list((**el).clone(), items)
            }
            // If-wrapping keeps other types inhabitable too.
            other => {
                let c = self.gen_expr(&Type::Bool, depth.saturating_sub(1));
                let t = self.gen_literalish_fallback(other);
                let f = self.gen_literalish_fallback(other);
                Expr::if_(c, t, f)
            }
        }
    }

    fn gen_literalish_fallback(&mut self, ty: &Type) -> Expr {
        match ty {
            Type::Int => Expr::Int(0),
            Type::Bool => Expr::Bool(false),
            Type::Str => Expr::Str(String::new()),
            Type::Unit => Expr::Unit,
            Type::Prod(a, b) => Expr::pair(
                self.gen_literalish_fallback(a),
                self.gen_literalish_fallback(b),
            ),
            Type::List(el) => Expr::Nil((**el).clone()),
            Type::Arrow(a, b) => {
                let x = fresh("x");
                Expr::Lam(x, (**a).clone(), self.gen_literalish_fallback(b).into())
            }
            _ => Expr::Unit,
        }
    }
}

/// A fixed declaration prelude for data-typed random programs: a
/// simple enum and an option-like container.
pub fn data_prelude() -> implicit_core::syntax::Declarations {
    let mut decls = implicit_core::syntax::Declarations::new();
    let color = implicit_core::syntax::DataDecl::infer(
        Symbol::intern("GpColor"),
        vec![],
        vec![
            (Symbol::intern("GpRed"), vec![]),
            (Symbol::intern("GpGreen"), vec![]),
            (Symbol::intern("GpBlue"), vec![]),
        ],
    )
    .expect("well-kinded");
    decls.declare_data(color).expect("fresh name");
    let opt = implicit_core::syntax::DataDecl::infer(
        Symbol::intern("GpOpt"),
        vec![Symbol::intern("gp_opt_a")],
        vec![
            (Symbol::intern("GpNone"), vec![]),
            (
                Symbol::intern("GpSome"),
                vec![Type::Var(Symbol::intern("gp_opt_a"))],
            ),
        ],
    )
    .expect("well-kinded");
    decls.declare_data(opt).expect("fresh name");
    decls
}

/// Generates a random well-typed program over the [`data_prelude`]
/// declarations, mixing the scalar fragment of [`gen_program`] with
/// constructor applications and exhaustive matches.
pub fn gen_data_program(rng: &mut impl Rng, config: &GenConfig) -> GenProgram {
    let base = gen_program(rng, config);
    // Wrap the generated program in data-typed scaffolding: inject it
    // into GpOpt and match it back, and branch on a random GpColor.
    let color = ["GpRed", "GpGreen", "GpBlue"][rng.gen_range(0..3usize)];
    let scrut = Expr::Inject(Symbol::intern(color), vec![], vec![]);
    let color_pick = Expr::Match(
        std::rc::Rc::new(scrut),
        vec![
            implicit_core::syntax::MatchArm {
                ctor: Symbol::intern("GpRed"),
                binders: vec![],
                body: Expr::Int(0),
            },
            implicit_core::syntax::MatchArm {
                ctor: Symbol::intern("GpGreen"),
                binders: vec![],
                body: Expr::Int(1),
            },
            implicit_core::syntax::MatchArm {
                ctor: Symbol::intern("GpBlue"),
                binders: vec![],
                body: Expr::Int(2),
            },
        ],
    );
    let x = fresh("gpx");
    let wrapped = Expr::Match(
        std::rc::Rc::new(Expr::Inject(
            Symbol::intern("GpSome"),
            vec![base.ty.clone()],
            vec![base.expr],
        )),
        vec![
            implicit_core::syntax::MatchArm {
                ctor: Symbol::intern("GpNone"),
                binders: vec![],
                body: Expr::pair(Expr::Int(-1), gen_fallback(&base.ty)),
            },
            implicit_core::syntax::MatchArm {
                ctor: Symbol::intern("GpSome"),
                binders: vec![x],
                body: Expr::pair(color_pick, Expr::Var(x)),
            },
        ],
    );
    GenProgram {
        expr: wrapped,
        ty: Type::prod(Type::Int, base.ty),
    }
}

fn gen_fallback(ty: &Type) -> Expr {
    match ty {
        Type::Int => Expr::Int(0),
        Type::Bool => Expr::Bool(false),
        Type::Str => Expr::Str(String::new()),
        Type::Unit => Expr::Unit,
        Type::Prod(a, b) => Expr::pair(gen_fallback(a), gen_fallback(b)),
        Type::List(el) => Expr::Nil((**el).clone()),
        _ => Expr::Unit,
    }
}

/// A random ground substitution over the given variables (used for
/// stability properties).
pub fn gen_subst(rng: &mut impl Rng, vars: &[Symbol]) -> TySubst {
    let mut s = TySubst::new();
    for &v in vars {
        let t = match rng.gen_range(0..4) {
            0 => Type::Int,
            1 => Type::Bool,
            2 => Type::Str,
            _ => Type::prod(Type::Int, Type::Bool),
        };
        s.bind(v, t);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_env_resolves_in_n_plus_one_steps() {
        for n in [0, 1, 5, 20] {
            let (env, q) = chain_env(n);
            let res = resolve(&env, &q, &ResolutionPolicy::paper().with_max_depth(4096)).unwrap();
            assert_eq!(res.steps(), n + 1, "chain length {n}");
        }
    }

    #[test]
    fn wide_env_resolves_everywhere() {
        for pos in [0.0, 0.5, 1.0] {
            let (env, q) = wide_env(64, pos);
            assert!(resolve(&env, &q, &ResolutionPolicy::paper()).is_ok());
        }
    }

    #[test]
    fn deep_stack_env_descends() {
        let (env, q) = deep_stack_env(32);
        let res = resolve(&env, &q, &ResolutionPolicy::paper()).unwrap();
        assert_eq!(res.steps(), 1);
        match res.rule {
            implicit_core::resolve::RuleRef::Env { frame, .. } => assert_eq!(frame, 32),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn poly_env_resolves() {
        let (env, q) = poly_env(16);
        assert!(resolve(&env, &q, &ResolutionPolicy::paper()).is_ok());
    }

    #[test]
    fn partial_env_mixes_assumed_and_derived() {
        let (env, q) = partial_env(6, 3);
        let res = resolve(&env, &q, &ResolutionPolicy::paper()).unwrap();
        assert!(res.is_partial());
        let assumed = res
            .premises
            .iter()
            .filter(|p| matches!(p, implicit_core::resolve::Premise::Assumed { .. }))
            .count();
        assert_eq!(assumed, 3);
    }

    #[test]
    fn chain_programs_typecheck() {
        let decls = implicit_core::syntax::Declarations::new();
        for n in [0, 3, 8] {
            let e = chain_program(n);
            implicit_core::typeck::Typechecker::new(&decls)
                .check_closed(&e)
                .unwrap_or_else(|err| panic!("chain {n}: {err}"));
        }
    }

    #[test]
    fn generated_programs_typecheck() {
        let decls = implicit_core::syntax::Declarations::new();
        let mut r = rng(42);
        for i in 0..200 {
            let p = gen_program(&mut r, &GenConfig::default());
            let got = implicit_core::typeck::Typechecker::new(&decls)
                .check_closed(&p.expr)
                .unwrap_or_else(|err| panic!("program {i} ill-typed: {err}\n{}", p.expr));
            assert!(
                implicit_core::typeck::types_equal(&got, &p.ty),
                "program {i}: expected {}, got {got}",
                p.ty
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = gen_program(&mut rng(7), &GenConfig::default());
        let b = gen_program(&mut rng(7), &GenConfig::default());
        assert_eq!(format!("{}", a.expr), format!("{}", b.expr));
    }
}
