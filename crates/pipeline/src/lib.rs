//! Warm-session batch engine.
//!
//! A [`Session`] typechecks and elaborates a *prelude* — implicit rule
//! bindings plus ordinary `let` bindings — exactly once, snapshots the
//! interning arena and the implicit environment, and then runs each
//! subsequent program as a cheap copy-on-write extension of that
//! snapshot:
//!
//! * the prelude's [`ImplicitEnv`] frame and its **derivation cache**
//!   survive across programs (scope-aware invalidation only discards
//!   entries that depended on the program's own, deeper frames), so
//!   prelude-level queries are cache hits from the second program on;
//! * the elaborated prelude evidence is evaluated once and re-bound
//!   from a persistent System F environment instead of re-elaborated
//!   and re-evaluated per program;
//! * the operational-semantics leg keeps one [`Interpreter`] whose
//!   runtime resolution memo is keyed by persistent-stack identity —
//!   the prelude frame is the *same* `Rc` for every program, so
//!   runtime resolutions memoize across programs too;
//! * between programs the session can roll the thread-local interning
//!   arena back to its prelude watermark ([`Session::trim`]), purging
//!   cache/memo entries whose ids the rollback would orphan.
//!
//! Semantically a warm run of `e` is equivalent to the cold one-shot
//! pipeline on the sugared program `let x̄ = ē in implicit {ē′:ρ̄} in e`
//! (see [`Prelude::wrap`]); the conformance harness and the
//! `warm_cold_equivalence` property test check value-for-value
//! agreement under every resolution policy.
//!
//! [`driver`] adds a std-only work-stealing batch driver that runs N
//! programs across M worker threads, each worker holding its own
//! `Session` built from the same (Send-safe) prelude recipe.

// Error values carry full expressions/types for diagnostics; they are
// cold-path, so precision wins over `Result` size (same policy as the
// core and elab crates).
#![allow(clippy::result_large_err)]

pub mod artifact;
pub mod driver;
pub mod service;

use std::cell::RefCell;
use std::rc::Rc;

use implicit_core::env::{CacheCounters, EnvSnapshot, ImplicitEnv};
use implicit_core::intern::{self, InternSnapshot};
use implicit_core::resolve::ResolutionPolicy;
use implicit_core::symbol::{fresh, fresh_watermark};
use implicit_core::syntax::{Declarations, Expr, RuleType, Type};
use implicit_core::trace::{
    FanSink, MetricsRegistry, MetricsSink, Phase, SharedSink, TraceEvent, TraceSink,
};
use implicit_elab::{translate_decls, translate_rule_type, translate_type, DictCache, Elaborator};
use implicit_elab::{ElabError, RunError, RunOutput};
use implicit_opsem::{ImplStack, Interpreter, OpsemError, VarEnv};
use systemf::compile::CodeSnapshot;
use systemf::eval::Env as FEnv;
use systemf::{CompileError, Compiler, Evaluator, FDeclarations, FExpr, FType, Isa, Vm};

pub use driver::{run_batch, run_batch_scoped, spawn_service_worker, JobSource, WorkerMeta};

use implicit_core::symbol::Symbol;

/// How many *new* interned nodes a program may leave behind before
/// [`Session::maybe_trim`] rolls the arena back to the prelude
/// watermark.
const TRIM_THRESHOLD: usize = 1 << 15;

/// A batch prelude: ordinary `let` bindings (evaluated once, in
/// order, each visible to the later ones) plus implicit rule bindings
/// brought into scope for every program.
///
/// Each implicit binding opens its own scope nested inside the
/// previous ones — binding `k` may query the types of bindings
/// `0..k`, and a later α-equal binding shadows an earlier one —
/// exactly the cold sugar
/// `implicit {e₀:ρ₀} in implicit {e₁:ρ₁} in … in body`.
#[derive(Clone, Debug, Default)]
pub struct Prelude {
    /// `let x : τ = e` bindings, outermost first.
    pub lets: Vec<(Symbol, Type, Expr)>,
    /// `implicit {e : ρ}` bindings, outermost first.
    pub implicits: Vec<(Expr, RuleType)>,
}

impl Prelude {
    /// The empty prelude (a warm session over it degenerates to the
    /// cold pipeline plus a persistent interner).
    pub fn new() -> Prelude {
        Prelude::default()
    }

    /// A prelude of implicit bindings only.
    pub fn implicits(implicits: Vec<(Expr, RuleType)>) -> Prelude {
        Prelude {
            lets: Vec::new(),
            implicits,
        }
    }

    /// The cold one-shot program equivalent to running `body : τ`
    /// inside this prelude:
    /// `let x̄ = ē in implicit {e₀:ρ₀} in … in implicit {eₙ:ρₙ} in body`.
    pub fn wrap(&self, body: Expr, body_ty: Type) -> Expr {
        let mut e = body;
        for (arg, arho) in self.implicits.iter().rev() {
            e = Expr::implicit(vec![(arg.clone(), arho.clone())], e, body_ty.clone());
        }
        for (x, ty, bound) in self.lets.iter().rev() {
            e = Expr::let_(*x, ty.clone(), bound.clone(), e);
        }
        e
    }

    /// Deconstructs the sugared form produced by [`Prelude::wrap`]
    /// back into a prelude — the on-disk `prelude.imp` convention for
    /// batch compilation: outer `let x : τ = e in …` wrappers, then
    /// single-binding `implicit {e : ρ} in …` wrappers, terminated by
    /// the unit literal (`unit` in the concrete syntax).
    ///
    /// Multi-binding `implicit a, b in …` wrappers are rejected: a
    /// flat frame elaborates every binding in the *outer* scope,
    /// which a session (one nested scope per binding) cannot
    /// represent faithfully.
    ///
    /// # Errors
    ///
    /// Returns a description of the first wrapper that does not fit
    /// the convention.
    pub fn from_wrapped(e: &Expr) -> Result<Prelude, String> {
        let mut lets = Vec::new();
        let mut cur = e;
        while let Expr::App(f, bound) = cur {
            match &**f {
                Expr::Lam(x, ty, body) => {
                    lets.push((*x, ty.clone(), (**bound).clone()));
                    cur = body;
                }
                _ => {
                    return Err("prelude: expected `let`/`implicit` wrappers around `()`, \
                         found a plain application"
                        .to_owned())
                }
            }
        }
        let mut implicits = Vec::new();
        loop {
            match cur {
                Expr::RuleApp(f, args) => match &**f {
                    Expr::RuleAbs(_, body) => {
                        if args.len() != 1 {
                            return Err(format!(
                                "prelude: `implicit` wrappers must bind one value each \
                                 (found {}); split `implicit a, b in …` into nested \
                                 single-binding wrappers",
                                args.len()
                            ));
                        }
                        let (a, r) = &args[0];
                        implicits.push((a.clone(), r.clone()));
                        cur = body;
                    }
                    _ => {
                        return Err("prelude: expected `implicit {e : ρ} in …` wrappers, \
                             found a rule application"
                            .to_owned())
                    }
                },
                Expr::Unit => {
                    return Ok(Prelude { lets, implicits });
                }
                other => {
                    return Err(format!(
                        "prelude: body must be the unit literal \
                         (the prelude only *binds*; programs supply the bodies), found `{other}`"
                    ))
                }
            }
        }
    }

    /// The B13 chain-workload prelude: `T₀ = Int`, `Tₖ = T₍ₖ₋₁₎ × Int`,
    /// with an `Int` binding for `T₀` and a *rule* binding
    /// `{T₍ₖ₋₁₎} ⇒ Tₖ` (evidence `(?T₍ₖ₋₁₎, k)`) for every `k ≥ 1` —
    /// so resolving `?Tₙ` is an `n`-deep recursive derivation that a
    /// warm session caches (and runtime-memoizes) across programs.
    pub fn chain(n: usize) -> Prelude {
        let mut implicits = Vec::with_capacity(n + 1);
        let mut ty = Type::Int;
        implicits.push((Expr::Int(0), ty.clone().promote()));
        for k in 1..=n {
            let prev = ty.clone();
            ty = Type::prod(prev.clone(), Type::Int);
            let rho = RuleType::mono(vec![prev.promote()], ty.clone());
            let body = Expr::pair(Expr::query_simple(prev.clone()), Expr::Int(k as i64));
            implicits.push((Expr::rule_abs(rho.clone(), body), rho));
        }
        Prelude {
            lets: Vec::new(),
            implicits,
        }
    }

    /// The head type of the deepest [`Prelude::chain`] binding.
    pub fn chain_head(n: usize) -> Type {
        let mut ty = Type::Int;
        for _ in 0..n {
            ty = Type::prod(ty, Type::Int);
        }
        ty
    }
}

/// An error constructing a [`Session`] — the prelude itself failed to
/// elaborate, typecheck, or evaluate.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // cold path; precision over size
pub enum SessionError {
    /// A prelude binding was rejected (declared-type mismatch,
    /// runtime failure while computing its evidence, …).
    Prelude(String),
    /// A prelude binding failed one of the pipeline stages.
    Run(RunError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Prelude(msg) => write!(f, "prelude rejected: {msg}"),
            SessionError::Run(e) => write!(f, "prelude failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<RunError> for SessionError {
    fn from(e: RunError) -> SessionError {
        SessionError::Run(e)
    }
}

/// Cumulative statistics for one session.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Programs run through the elaboration leg.
    pub programs: u64,
    /// Programs run through the operational-semantics leg.
    pub opsem_programs: u64,
    /// Programs evaluated by the bytecode VM ([`Session::run_compiled`]).
    pub compiled_programs: u64,
    /// Arena rollbacks performed by [`Session::maybe_trim`].
    pub trims: u64,
}

/// Which System F evaluator a session (or the CLI) should use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The `Rc`-cloning tree-walking evaluator ([`systemf::eval`]).
    #[default]
    Tree,
    /// The closure-converted bytecode VM ([`systemf::vm`]) on its
    /// default register ISA — compiled prelude cached per session,
    /// constant host stack.
    Vm,
    /// The same VM on the legacy stack ISA, kept for one release so
    /// the register machine can be compared (and differentially
    /// tested) against it.
    VmStack,
}

impl Backend {
    /// Parses a `--backend` flag value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "tree" => Some(Backend::Tree),
            "vm" => Some(Backend::Vm),
            "vm-stack" => Some(Backend::VmStack),
            _ => None,
        }
    }

    /// The instruction set a compiled backend wants from the session
    /// compiler (`None` for the tree-walker). Sessions fix their ISA
    /// at construction ([`Session::new_configured_isa`]); pass this
    /// when building a session for a specific backend.
    pub fn isa(self) -> Option<Isa> {
        match self {
            Backend::Tree => None,
            Backend::Vm => Some(Isa::Register),
            Backend::VmStack => Some(Isa::Stack),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Tree => f.write_str("tree"),
            Backend::Vm => f.write_str("vm"),
            Backend::VmStack => f.write_str("vm-stack"),
        }
    }
}

/// A warm compilation session over a fixed declaration set, policy,
/// and [`Prelude`]. See the module docs for what is shared between
/// programs.
///
/// Sessions are single-threaded (the interning arena is thread-local
/// and evidence values are `Rc`-based); [`driver::run_batch`] builds
/// one per worker from a shared recipe.
pub struct Session<'d> {
    decls: &'d Declarations,
    policy: ResolutionPolicy,
    elab: Elaborator<'d>,
    fdecls: FDeclarations,
    /// Prelude frame (if any) + warm derivation cache.
    env: ImplicitEnv,
    /// Evidence variable frames aligned with `env`'s frames.
    evidence: Vec<Vec<Symbol>>,
    /// Prelude `let` bindings, in scope for every program.
    gamma: Vec<(Symbol, Type)>,
    /// The prelude's implicit context in canonical (binder) order.
    context: Vec<RuleType>,
    /// System F environment binding `gamma` names and evidence vars.
    fenv: FEnv,
    /// Compiled backend: prelude bindings compiled once, their values
    /// in `vm_globals` (parallel to the compiler's global table);
    /// per-program code is an extension rolled back to `code_base`.
    compiler: Compiler,
    vm_globals: Vec<systemf::Value>,
    code_base: CodeSnapshot,
    /// Dictionary inline cache for the compiled path (attached to the
    /// elaborator only while `dict_ic` is on; see
    /// [`Session::set_dict_ic`]).
    dict: Rc<RefCell<DictCache>>,
    dict_ic: bool,
    /// Preservation-wrapper binders for promoted dictionary globals,
    /// parallel to their `vm_globals`/compiler-global registrations.
    dict_binders: Vec<(Symbol, FType)>,
    /// Operational-semantics leg: one interpreter whose memo persists.
    interp: Interpreter<'d>,
    venv: VarEnv,
    istack: ImplStack,
    intern_base: InternSnapshot,
    env_base: EnvSnapshot,
    stats: SessionStats,
    /// Session-internal metrics accumulator. Phase and evaluator
    /// events are always folded in; resolution-grain events join when
    /// a trace sink is installed (they are only emitted then).
    metrics: Rc<RefCell<MetricsSink>>,
    /// The caller's sink, if any (see [`Session::set_trace`]).
    trace: Option<SharedSink>,
    /// The prelude this session was built from, kept for artifact
    /// serialization and incremental-rebuild diffing.
    prelude: Prelude,
    /// Per-binding dependency read-sets (indices of earlier prelude
    /// bindings each binding's evidence reads), for incremental
    /// artifact invalidation.
    binding_meta: Vec<artifact::BindingMeta>,
    /// Fresh-symbol watermark covering every `fresh` name this
    /// session's persistent state can embed (evidence and promoted
    /// dictionary globals). Serialized so a rehydrating process can
    /// raise its own counter past it.
    fresh_base: u64,
    /// Per-opcode dispatch profiling for compiled runs (see
    /// [`Session::set_profile_dispatch`]).
    profile_dispatch: bool,
    /// Dispatch counts accumulated across profiled compiled runs.
    dispatch_counts: std::collections::HashMap<&'static str, u64>,
}

impl<'d> Session<'d> {
    /// Builds a warm session: elaborates, typechecks, and evaluates
    /// every prelude binding once (through both the elaboration and
    /// the operational-semantics pipelines), pushes the prelude frame,
    /// and records the interner/environment watermarks.
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if any prelude binding is rejected
    /// or fails a pipeline stage.
    pub fn new(
        decls: &'d Declarations,
        policy: ResolutionPolicy,
        prelude: &Prelude,
    ) -> Result<Session<'d>, SessionError> {
        Session::new_configured(decls, policy, prelude, true, false)
    }

    /// [`Session::new`] with the optimization knobs chosen up front:
    /// `fusion` selects superinstruction lowering for *all* code this
    /// session compiles (including the prelude, which
    /// [`Session::set_fusion`] cannot reach — it is compiled here),
    /// and `dict_ic` starts the dictionary inline cache enabled.
    ///
    /// # Errors
    ///
    /// See [`Session::new`].
    pub fn new_configured(
        decls: &'d Declarations,
        policy: ResolutionPolicy,
        prelude: &Prelude,
        fusion: bool,
        dict_ic: bool,
    ) -> Result<Session<'d>, SessionError> {
        Session::new_configured_isa(decls, policy, prelude, fusion, dict_ic, Isa::default())
    }

    /// [`Session::new_configured`] with the compiled backend's
    /// instruction set also chosen up front. The ISA is baked into
    /// every code object this session compiles (prelude included), so
    /// it cannot change later; build one session per ISA to compare
    /// them. Use [`Backend::isa`] to pick the ISA a backend expects.
    ///
    /// # Errors
    ///
    /// See [`Session::new`].
    pub fn new_configured_isa(
        decls: &'d Declarations,
        policy: ResolutionPolicy,
        prelude: &Prelude,
        fusion: bool,
        dict_ic: bool,
        isa: Isa,
    ) -> Result<Session<'d>, SessionError> {
        let elab = Elaborator::with_policy(decls, policy.clone());
        let fdecls = translate_decls(decls);
        let mut interp = Interpreter::new(decls).with_policy(policy.clone());

        // `let` bindings: each elaborates under the earlier ones and
        // is evaluated once in both semantics.
        let mut gamma: Vec<(Symbol, Type)> = Vec::with_capacity(prelude.lets.len());
        let mut binding_meta: Vec<artifact::BindingMeta> = Vec::new();
        let mut fenv = FEnv::new();
        let mut venv = VarEnv::new();
        let mut compiler = Compiler::new_with_isa(isa);
        compiler.set_fusion(fusion);
        let mut vm_globals: Vec<systemf::Value> = Vec::new();
        for (x, ty, bound) in &prelude.lets {
            let mut scratch = ImplicitEnv::new();
            let (got, fb) = elab
                .elaborate_with_env(&mut scratch, &[], &gamma, bound)
                .map_err(|e| SessionError::Run(RunError::Elab(e)))?;
            if !intern::types_equal(&got, ty) {
                return Err(SessionError::Prelude(format!(
                    "let `{x}` declared `{ty}` but its binding has type `{got}`"
                )));
            }
            check_closed(&fdecls, &gamma, &[], &fb)?;
            let v = Evaluator::new()
                .eval_in(&fenv, &fb)
                .map_err(|e| SessionError::Run(RunError::Eval(e)))?;
            fenv = fenv.bind(*x, v);
            // Compiled backend: evaluate the same elaborated binding
            // through the VM and register it as a global.
            let funcs_before = compiler.code().funcs.len();
            let gv = compile_eval(&mut compiler, &vm_globals, &fb)?;
            let funcs_after = compiler.code().funcs.len();
            compiler.add_global(*x);
            vm_globals.push(gv);
            let names: Vec<Symbol> = gamma.iter().map(|(n, _)| *n).collect();
            binding_meta.push(artifact::binding_reads(
                &names,
                &fb,
                compiler.code(),
                funcs_before..funcs_after,
            ));
            let vo = interp
                .eval_in(&venv, &ImplStack::new(), bound)
                .map_err(|e| SessionError::Prelude(format!("let `{x}` diverged in opsem: {e}")))?;
            venv = venv.bind(*x, vo);
            gamma.push((*x, ty.clone()));
        }

        // Implicit bindings: each opens its own nested scope, so
        // binding `k` elaborates and evaluates under the frames of
        // bindings `0..k` — as the cold nested `implicit … in` sugar
        // does. Evidence is computed exactly once per binding.
        let mut env = ImplicitEnv::new();
        let mut evidence: Vec<Vec<Symbol>> = Vec::new();
        let mut context: Vec<RuleType> = Vec::new();
        let mut istack = ImplStack::new();
        for (arg, arho) in &prelude.implicits {
            let (got, ea) = elab
                .elaborate_with_env(&mut env, &evidence, &gamma, arg)
                .map_err(|e| SessionError::Run(RunError::Elab(e)))?;
            let want = arho.to_type();
            if !intern::types_equal(&got, &want) {
                return Err(SessionError::Prelude(format!(
                    "implicit binding declared `{arho}` but has type `{got}`"
                )));
            }
            let outer: Vec<(Symbol, RuleType)> = evidence
                .iter()
                .flat_map(|syms| syms.iter())
                .copied()
                .zip(context.iter().cloned())
                .collect();
            check_closed(&fdecls, &gamma, &outer, &ea)?;
            let v = Evaluator::new()
                .eval_in(&fenv, &ea)
                .map_err(|e| SessionError::Run(RunError::Eval(e)))?;
            let sym = fresh("ev");
            fenv = fenv.bind(sym, v);
            let funcs_before = compiler.code().funcs.len();
            let gv = compile_eval(&mut compiler, &vm_globals, &ea)?;
            let funcs_after = compiler.code().funcs.len();
            compiler.add_global(sym);
            vm_globals.push(gv);
            let names: Vec<Symbol> = gamma
                .iter()
                .map(|(n, _)| *n)
                .chain(evidence.iter().flat_map(|syms| syms.iter()).copied())
                .collect();
            binding_meta.push(artifact::binding_reads(
                &names,
                &ea,
                compiler.code(),
                funcs_before..funcs_after,
            ));
            let av = interp.eval_in(&venv, &istack, arg).map_err(|e| {
                SessionError::Prelude(format!("implicit binding `{arho}` in opsem: {e}"))
            })?;
            istack = istack.pushed(vec![(arho.clone(), av)]);
            env.push(vec![arho.clone()]);
            evidence.push(vec![sym]);
            context.push(arho.clone());
        }

        let intern_base = intern::snapshot();
        let env_base = env.snapshot();
        let code_base = compiler.snapshot();
        let fresh_base = fresh_watermark();
        let dict = Rc::new(RefCell::new(DictCache::new(evidence.len())));
        Ok(Session {
            decls,
            policy,
            elab,
            fdecls,
            env,
            evidence,
            gamma,
            context,
            fenv,
            compiler,
            vm_globals,
            code_base,
            dict,
            dict_ic,
            dict_binders: Vec::new(),
            interp,
            venv,
            istack,
            intern_base,
            env_base,
            stats: SessionStats::default(),
            metrics: Rc::new(RefCell::new(MetricsSink::new())),
            trace: None,
            prelude: prelude.clone(),
            binding_meta,
            fresh_base,
            profile_dispatch: false,
            dispatch_counts: std::collections::HashMap::new(),
        })
    }

    /// Folds `n` artifact-load fallbacks (corrupt/stale/mismatched
    /// artifacts that forced a cold build; see [`crate::artifact`])
    /// into this session's metrics.
    pub fn note_artifact_fallbacks(&mut self, n: u64) {
        self.metrics.borrow_mut().metrics.artifact_fallbacks += n;
    }

    /// Installs (or clears, with `None`) a trace sink: pipeline phase
    /// spans, evaluator events, resolution events from the
    /// elaboration leg, and runtime-memo events from the opsem leg
    /// all flow to `sink`. Resolution and memo events are also folded
    /// into the session's own [`Session::metrics`] snapshot while a
    /// sink is installed.
    pub fn set_trace(&mut self, sink: Option<SharedSink>) {
        match &sink {
            Some(user) => {
                let fan = FanSink {
                    sinks: vec![SharedSink::from_rc(self.metrics.clone()), user.clone()],
                };
                let fan = SharedSink::new(fan);
                self.elab.set_trace(Some(fan.clone()));
                self.interp.set_trace(Some(fan));
            }
            None => {
                self.elab.set_trace(None);
                self.interp.set_trace(None);
            }
        }
        self.trace = sink;
    }

    /// The unified [`MetricsRegistry`] snapshot for this session:
    /// cache and memo counters, session program/trim counts, and
    /// evaluator fuel are always live; resolution-grain counters
    /// (queries, candidates) fill in while a trace sink is installed.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = self.metrics.borrow().metrics;
        m.set_cache_counters(self.env.cache_counters());
        let (memo_hits, memo_misses) = self.interp.memo_counters();
        m.memo_hits = memo_hits;
        m.memo_misses = memo_misses;
        let (ic_hits, ic_misses) = self.dict.borrow().counters();
        m.ic_hits = ic_hits;
        m.ic_misses = ic_misses;
        m.programs = self.stats.programs;
        m.opsem_programs = self.stats.opsem_programs;
        m.compiled_programs = self.stats.compiled_programs;
        m.trims = self.stats.trims;
        m
    }

    /// Folds an event into the session metrics and forwards it to the
    /// installed sink, if any.
    fn emit(&mut self, ev: TraceEvent) {
        self.metrics.borrow_mut().metrics.record(&ev);
        if let Some(sink) = &self.trace {
            let mut sink = sink.clone();
            if sink.enabled() {
                sink.event(ev);
            }
        }
    }

    /// The declarations this session compiles against.
    pub fn decls(&self) -> &'d Declarations {
        self.decls
    }

    /// The resolution policy in force.
    pub fn policy(&self) -> &ResolutionPolicy {
        &self.policy
    }

    /// The warm implicit environment (prelude frame + derivation
    /// cache) — read-only access for stats and derivation replay.
    pub fn env(&self) -> &ImplicitEnv {
        &self.env
    }

    /// The prelude's implicit context, canonical order.
    pub fn context(&self) -> &[RuleType] {
        &self.context
    }

    /// Derivation-cache counters of the warm environment. On the
    /// second and later programs, prelude-level queries show up here
    /// as hits.
    pub fn cache_counters(&self) -> CacheCounters {
        self.env.cache_counters()
    }

    /// `(hits, misses)` of the opsem leg's runtime resolution memo.
    pub fn memo_counters(&self) -> (u64, u64) {
        self.interp.memo_counters()
    }

    /// Enables or disables the **dictionary inline cache** on the
    /// compiled path ([`Session::run_compiled`]): ground context-free
    /// queries whose resolution is prelude-pure get their evaluated
    /// evidence promoted to a session global, and later occurrences
    /// compile to a single global load. Off by default; the tree and
    /// opsem legs are never affected. Disabling detaches the cache
    /// but keeps promoted entries, so re-enabling resumes warm.
    pub fn set_dict_ic(&mut self, on: bool) {
        self.dict_ic = on;
    }

    /// Whether the dictionary inline cache is enabled.
    pub fn dict_ic_enabled(&self) -> bool {
        self.dict_ic
    }

    /// `(hits, misses)` of the dictionary inline cache.
    pub fn dict_counters(&self) -> (u64, u64) {
        self.dict.borrow().counters()
    }

    /// Number of promoted dictionary entries.
    pub fn dict_entries(&self) -> usize {
        self.dict.borrow().len()
    }

    /// Superinstruction knob for the session compiler: affects code
    /// compiled from now on (existing code keeps its shape). For a
    /// fusion-free session build the session with this off before
    /// running anything — already-compiled prelude functions are not
    /// re-lowered.
    pub fn set_fusion(&mut self, on: bool) {
        self.compiler.set_fusion(on);
    }

    /// Cumulative superinstruction statistics of the session compiler.
    pub fn fusion_stats(&self) -> &systemf::compile::FusionStats {
        self.compiler.fusion_stats()
    }

    /// Turns per-opcode dispatch profiling on for every subsequent
    /// compiled run; counts accumulate across runs (see
    /// [`Session::dispatch_histogram`]). Off by default — the
    /// unprofiled dispatch loop carries no counting overhead.
    pub fn set_profile_dispatch(&mut self, on: bool) {
        self.profile_dispatch = on;
    }

    /// Dispatch counts accumulated by profiled compiled runs, sorted
    /// by count descending (mnemonic ascending on ties).
    pub fn dispatch_histogram(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> =
            self.dispatch_counts.iter().map(|(k, n)| (*k, *n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Per-function frame widths (registers per activation window) of
    /// everything this session has compiled — the register-pressure
    /// companion to the dispatch histogram.
    pub fn frame_widths(&self) -> Vec<u16> {
        self.compiler
            .code()
            .funcs
            .iter()
            .map(|f| f.nslots)
            .collect()
    }

    /// Cumulative session statistics.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Runs one program through elaborate → preservation-check →
    /// evaluate, reusing every warm structure. Equivalent to
    /// `implicit_elab::run_with(decls, &prelude.wrap(e, τ), policy)`
    /// up to evidence-variable naming.
    ///
    /// # Errors
    ///
    /// Returns the same [`RunError`] stages as the cold pipeline.
    pub fn run(&mut self, e: &Expr) -> Result<RunOutput, RunError> {
        // The dictionary IC rewrites query sites to compiled-backend
        // globals, which a tree-walker environment cannot resolve —
        // the tree leg always elaborates with the cache detached.
        self.elab.set_dict_cache(None);
        let out = self.run_inner(e);
        // Elaboration pushes/pops its own frames even on error, but be
        // defensive: never let a failed program leak frames into the
        // warm environment.
        let base = self.env_base;
        self.env.restore(&base);
        self.stats.programs += 1;
        self.maybe_trim();
        out
    }

    fn run_inner(&mut self, e: &Expr) -> Result<RunOutput, RunError> {
        let (source_type, target, target_type) = self.elaborate_and_check(e)?;
        self.emit(TraceEvent::PhaseStart { phase: Phase::Eval });
        let mut ev = Evaluator::new();
        let value = ev.eval_in(&self.fenv, &target);
        self.emit(TraceEvent::TreeEval {
            fuel: ev.fuel_used(),
        });
        self.emit(TraceEvent::PhaseEnd { phase: Phase::Eval });
        let value = value.map_err(RunError::Eval)?;
        Ok(RunOutput {
            source_type,
            target,
            target_type,
            value,
        })
    }

    /// Elaborates `e` under the warm environment and typechecks the
    /// closed wrapper (preservation), returning the source type, the
    /// open target term, and its type.
    fn elaborate_and_check(&mut self, e: &Expr) -> Result<(Type, FExpr, FType), RunError> {
        self.emit(TraceEvent::PhaseStart {
            phase: Phase::Elaborate,
        });
        let elaborated =
            self.elab
                .elaborate_with_env(&mut self.env, &self.evidence, &self.gamma, e);
        self.emit(TraceEvent::PhaseEnd {
            phase: Phase::Elaborate,
        });
        let (source_type, target) = elaborated.map_err(RunError::Elab)?;
        // `target` has the prelude's evidence and `let` variables
        // free; preservation is checked on the closed wrapper.
        let mut closed = target.clone();
        let binders: Vec<(Symbol, FType)> = self
            .gamma
            .iter()
            .map(|(x, ty)| (*x, translate_type(ty)))
            .chain(
                self.evidence
                    .iter()
                    .flat_map(|syms| syms.iter())
                    .copied()
                    .zip(self.context.iter().map(translate_rule_type)),
            )
            // Promoted dictionary globals are free variables of
            // IC-hit targets; bind them in the preservation wrapper
            // like any other piece of session state.
            .chain(self.dict_binders.iter().cloned())
            .collect();
        for (x, fty) in binders.iter().rev() {
            closed = FExpr::Lam(*x, fty.clone(), closed.into());
        }
        self.emit(TraceEvent::PhaseStart {
            phase: Phase::Preservation,
        });
        let checked = systemf::typecheck(&self.fdecls, &closed);
        self.emit(TraceEvent::PhaseEnd {
            phase: Phase::Preservation,
        });
        let mut target_type = checked.map_err(RunError::PreservationViolated)?;
        for _ in 0..binders.len() {
            let FType::Arrow(_, r) = target_type else {
                unreachable!("wrapper type mirrors the wrapper lambdas");
            };
            target_type = (*r).clone();
        }
        Ok((source_type, target, target_type))
    }

    /// Runs one program like [`Session::run`], but evaluates the
    /// elaborated term on the bytecode VM against the session's
    /// compiled prelude: the program compiles as an extension of the
    /// warm code object (prelude bindings are [`Instr::Global`] loads
    /// of already-computed values) and the extension is rolled back
    /// afterwards, mirroring the interner's watermark discipline.
    ///
    /// # Errors
    ///
    /// Returns the same [`RunError`] stages as [`Session::run`].
    ///
    /// [`Instr::Global`]: systemf::compile::Instr::Global
    pub fn run_compiled(&mut self, e: &Expr) -> Result<RunOutput, RunError> {
        self.elab
            .set_dict_cache(self.dict_ic.then(|| self.dict.clone()));
        let out = self.run_compiled_inner(e);
        self.elab.set_dict_cache(None);
        let base = self.env_base;
        self.env.restore(&base);
        let code_base = self.code_base;
        self.compiler.rollback(&code_base);
        // Promote after the per-program extension is gone, so the
        // dictionaries' code and globals become part of the session
        // watermark instead of being swept by the next rollback.
        self.promote_dicts();
        self.stats.programs += 1;
        self.stats.compiled_programs += 1;
        self.maybe_trim();
        out
    }

    /// Compiles and evaluates the evidence the dictionary IC recorded
    /// this program, registering each value as a session global. The
    /// evaluation happens against prelude globals only (the evidence
    /// is prelude-pure by construction), in scratch code space that
    /// becomes part of the session watermark on success.
    ///
    /// Only *first-order* values are promoted: a dictionary that
    /// evaluates to a closure would pin compiled function indices and
    /// is skipped (`try_eq` on the value with itself is the
    /// first-order test the equality primitive already defines).
    /// Evidence that fails to evaluate — possible when its query site
    /// sat in a branch the program never took — is skipped silently;
    /// the query keeps elaborating to fresh evidence, preserving the
    /// cold semantics exactly.
    fn promote_dicts(&mut self) {
        if !self.dict_ic {
            return;
        }
        let pending = self.dict.borrow_mut().take_pending();
        let promoted_any = !pending.is_empty();
        for (query, ev) in pending {
            let snap = self.compiler.snapshot();
            match compile_eval(&mut self.compiler, &self.vm_globals, &ev) {
                Ok(v) if v.try_eq(&v) == Some(true) => {
                    let g = fresh("dict");
                    self.compiler.add_global(g);
                    self.vm_globals.push(v);
                    self.dict_binders.push((g, translate_rule_type(&query)));
                    self.dict.borrow_mut().insert(&query, g);
                    self.code_base = self.compiler.snapshot();
                }
                _ => self.compiler.rollback(&snap),
            }
        }
        if promoted_any {
            // Promotions mint fresh `dict` globals; widen the
            // serialized watermark so artifacts cover them.
            self.fresh_base = self.fresh_base.max(fresh_watermark());
        }
    }

    fn run_compiled_inner(&mut self, e: &Expr) -> Result<RunOutput, RunError> {
        let (source_type, target, target_type) = self.elaborate_and_check(e)?;
        self.emit(TraceEvent::PhaseStart {
            phase: Phase::Compile,
        });
        let (scanned0, fused0) = {
            let fs = self.compiler.fusion_stats();
            (fs.instrs_scanned, fs.fused)
        };
        let compiled = self.compiler.compile(&target);
        let (scanned1, fused1) = {
            let fs = self.compiler.fusion_stats();
            (fs.instrs_scanned, fs.fused)
        };
        self.emit(TraceEvent::Fusion {
            scanned: scanned1 - scanned0,
            fused: fused1 - fused0,
        });
        self.emit(TraceEvent::PhaseEnd {
            phase: Phase::Compile,
        });
        let main = compiled.map_err(|err| RunError::Eval(compile_error_to_eval(err)))?;
        self.emit(TraceEvent::PhaseStart { phase: Phase::Vm });
        let mut vm = Vm::new();
        vm.set_profile(self.profile_dispatch);
        let value = vm.run(self.compiler.code(), main, &self.vm_globals);
        if self.profile_dispatch {
            for (mnemonic, n) in vm.dispatch_histogram() {
                *self.dispatch_counts.entry(mnemonic).or_insert(0) += n;
            }
        }
        let stats = vm.stats();
        self.emit(TraceEvent::VmRun {
            fuel: stats.fuel_used,
            tail_calls: stats.tail_calls,
            fix_unfolds: stats.fix_unfolds,
            match_ic_hits: stats.match_ic_hits,
            match_ic_misses: stats.match_ic_misses,
        });
        self.emit(TraceEvent::PhaseEnd { phase: Phase::Vm });
        let value = value.map_err(RunError::Eval)?;
        Ok(RunOutput {
            source_type,
            target,
            target_type,
            value,
        })
    }

    /// Runs one program on the chosen [`Backend`].
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn run_with_backend(&mut self, e: &Expr, backend: Backend) -> Result<RunOutput, RunError> {
        match backend {
            Backend::Tree => self.run(e),
            Backend::Vm | Backend::VmStack => {
                debug_assert_eq!(
                    backend.isa(),
                    Some(self.isa()),
                    "session compiled for a different ISA than {backend} expects"
                );
                self.run_compiled(e)
            }
        }
    }

    /// The instruction set this session's compiled backend emits,
    /// fixed at construction ([`Session::new_configured_isa`]).
    pub fn isa(&self) -> Isa {
        self.compiler.isa()
    }

    /// Elaborates and preservation-checks one program without
    /// evaluating it, returning its λ⇒ type. Rolls back exactly like
    /// [`Session::run`] — the typecheck-only route of the daemon
    /// protocol.
    ///
    /// # Errors
    ///
    /// [`RunError::Elab`] / [`RunError::PreservationViolated`] as in
    /// [`Session::run`]; evaluation errors cannot occur.
    pub fn typecheck(&mut self, e: &Expr) -> Result<Type, RunError> {
        self.elab.set_dict_cache(None);
        let out = self.elaborate_and_check(e).map(|(ty, _, _)| ty);
        let base = self.env_base;
        self.env.restore(&base);
        self.stats.programs += 1;
        self.maybe_trim();
        out
    }

    /// Runs one program through the runtime-resolution semantics,
    /// with a full fuel budget but the session's persistent memo.
    ///
    /// # Errors
    ///
    /// Returns an [`OpsemError`] exactly as a cold interpreter would.
    pub fn run_opsem(&mut self, e: &Expr) -> Result<implicit_opsem::Value, OpsemError> {
        self.run_opsem_with_fuel(e, implicit_opsem::DEFAULT_FUEL)
    }

    /// [`Session::run_opsem`] under an explicit fuel budget — the
    /// daemon's per-request opsem budget ([`OpsemError::OutOfFuel`]
    /// maps to the protocol's `fuel_exhausted`).
    ///
    /// # Errors
    ///
    /// See [`Session::run_opsem`].
    pub fn run_opsem_with_fuel(
        &mut self,
        e: &Expr,
        fuel: u64,
    ) -> Result<implicit_opsem::Value, OpsemError> {
        self.interp.refuel(fuel);
        self.stats.opsem_programs += 1;
        self.emit(TraceEvent::PhaseStart {
            phase: Phase::Opsem,
        });
        let out = self.interp.eval_in(&self.venv, &self.istack, e);
        self.emit(TraceEvent::PhaseEnd {
            phase: Phase::Opsem,
        });
        self.maybe_trim();
        out
    }

    /// Rolls the interning arena back to the prelude watermark if the
    /// last program(s) left more than [`TRIM_THRESHOLD`] nodes behind,
    /// first purging every cache/memo entry whose interned id the
    /// rollback would orphan.
    pub fn maybe_trim(&mut self) {
        let (types, rules) = intern::arena_len();
        if types > self.intern_base.type_count() + TRIM_THRESHOLD
            || rules > self.intern_base.rule_count() + TRIM_THRESHOLD
        {
            self.trim();
        }
    }

    /// Restores the prelude watermarks after an *aborted* program — a
    /// panic caught mid-run skipped the entry points' own rollback.
    /// Pops any leaked environment frames, sweeps the per-program
    /// code extension, and rolls the arena back, leaving the session
    /// exactly on its warm snapshot. Used by the daemon's
    /// `catch_unwind` containment ([`crate::service`]).
    pub fn recover(&mut self) {
        let base = self.env_base;
        self.env.restore(&base);
        let code_base = self.code_base;
        self.compiler.rollback(&code_base);
        self.trim();
    }

    /// Folds an externally accumulated counter snapshot (e.g. the
    /// daemon's resolve-route [`MetricsRegistry`]) into this
    /// session's metrics.
    pub fn fold_metrics(&mut self, m: &MetricsRegistry) {
        self.metrics.borrow_mut().metrics.merge(m);
    }

    /// Unconditional arena rollback; see [`Session::maybe_trim`].
    pub fn trim(&mut self) {
        let base = self.intern_base;
        self.env.retain_cache(|id| base.covers_rule(id));
        self.interp.retain_memo(|id| base.covers_rule(id));
        // Dictionary entries are keyed by interned rule id; drop the
        // ones the truncation would orphan *before* truncating (ids
        // below the watermark are prefix-stable). Their globals stay
        // registered — harmless dead weight, re-promoted on demand.
        self.dict.borrow_mut().retain_covered(&base);
        intern::truncate_to(&base);
        self.stats.trims += 1;
    }
}

/// Compiles an elaborated prelude binding and evaluates it on the VM
/// against the globals registered so far.
fn compile_eval(
    compiler: &mut Compiler,
    globals: &[systemf::Value],
    fe: &FExpr,
) -> Result<systemf::Value, SessionError> {
    let main = compiler
        .compile(fe)
        .map_err(|e| SessionError::Run(RunError::Eval(compile_error_to_eval(e))))?;
    Vm::new()
        .run(compiler.code(), main, globals)
        .map_err(|e| SessionError::Run(RunError::Eval(e)))
}

/// A compile error on elaborated input can only be an unbound
/// variable, which the tree-walker would also report (just later, at
/// evaluation time).
fn compile_error_to_eval(e: CompileError) -> systemf::EvalError {
    match e {
        CompileError::Unbound(x) => systemf::EvalError::UnboundVar(x),
    }
}

/// Preservation check for a prelude binding: closes `fe` over the
/// `let` and evidence binders in scope and typechecks it.
fn check_closed(
    fdecls: &FDeclarations,
    gamma: &[(Symbol, Type)],
    evidence: &[(Symbol, RuleType)],
    fe: &FExpr,
) -> Result<(), SessionError> {
    let mut closed = fe.clone();
    let binders = gamma
        .iter()
        .map(|(x, ty)| (*x, translate_type(ty)))
        .chain(evidence.iter().map(|(x, r)| (*x, translate_rule_type(r))))
        .collect::<Vec<_>>();
    for (x, fty) in binders.iter().rev() {
        closed = FExpr::Lam(*x, fty.clone(), closed.into());
    }
    systemf::typecheck(fdecls, &closed)
        .map(|_| ())
        .map_err(|e| SessionError::Run(RunError::PreservationViolated(e)))
}

/// A convenience error type unifying both legs for batch reporting.
#[derive(Debug)]
pub enum BatchError {
    /// The elaboration leg failed.
    Run(RunError),
    /// The operational-semantics leg failed.
    Opsem(OpsemError),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Run(e) => write!(f, "{e}"),
            BatchError::Opsem(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// Re-exported so downstream crates name one `ElabError` type.
pub type Elab = ElabError;

#[cfg(test)]
mod tests {
    use super::*;
    use implicit_core::syntax::BinOp;

    /// Chain preludes drive derivations a dozen-plus recursion levels
    /// deep through resolve/elaborate/eval; debug-build frames for
    /// that interleaving overflow the default test-thread stack.
    fn with_big_stack(f: impl FnOnce() + Send + 'static) {
        std::thread::Builder::new()
            .stack_size(64 << 20)
            .spawn(f)
            .unwrap()
            .join()
            .unwrap();
    }

    fn chain_query_program(n: usize, j: i64) -> Expr {
        // snd(?T_n) + j — resolving ?T_n walks the whole chain.
        Expr::binop(
            BinOp::Add,
            Expr::Snd(Expr::query_simple(Prelude::chain_head(n)).into()),
            Expr::Int(j),
        )
    }

    #[test]
    fn warm_session_matches_cold_pipeline_on_the_chain_workload() {
        with_big_stack(|| {
            let decls = Declarations::default();
            let prelude = Prelude::chain(12);
            let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
            for j in 0..8 {
                let e = chain_query_program(12, j);
                let warm = sess.run(&e).unwrap();
                let cold = implicit_elab::run_with(
                    &decls,
                    &prelude.wrap(e.clone(), Type::Int),
                    &ResolutionPolicy::paper(),
                )
                .unwrap();
                assert_eq!(warm.value.to_string(), cold.value.to_string());
                assert_eq!(warm.source_type.to_string(), cold.source_type.to_string());
                assert_eq!(
                    warm.target_type.to_string(),
                    cold.target_type.to_string(),
                    "stripped wrapper type must match the cold elaboration type"
                );
                let vo = sess.run_opsem(&e).unwrap();
                assert_eq!(vo.to_string(), warm.value.to_string());
            }
        });
    }

    #[test]
    fn second_program_hits_the_warm_derivation_cache() {
        with_big_stack(|| {
            let decls = Declarations::default();
            let prelude = Prelude::chain(10);
            let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
            sess.run(&chain_query_program(10, 0)).unwrap();
            let after_first = sess.cache_counters();
            sess.run(&chain_query_program(10, 1)).unwrap();
            let after_second = sess.cache_counters();
            assert!(
                after_second.hits > after_first.hits,
                "prelude-level queries must be cache hits on the 2nd program \
                 (first {after_first:?}, second {after_second:?})"
            );
        });
    }

    #[test]
    fn second_program_hits_the_runtime_memo() {
        with_big_stack(|| {
            let decls = Declarations::default();
            let prelude = Prelude::chain(10);
            let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
            sess.run_opsem(&chain_query_program(10, 0)).unwrap();
            let (h1, _) = sess.memo_counters();
            sess.run_opsem(&chain_query_program(10, 1)).unwrap();
            let (h2, _) = sess.memo_counters();
            assert!(
                h2 > h1,
                "runtime resolutions must memoize across programs ({h1} → {h2})"
            );
        });
    }

    #[test]
    fn lets_are_in_scope_and_evaluated_once() {
        let decls = Declarations::default();
        let prelude = Prelude {
            lets: vec![(
                Symbol::from("base"),
                Type::Int,
                Expr::binop(BinOp::Mul, Expr::Int(6), Expr::Int(7)),
            )],
            implicits: vec![(Expr::var("base"), Type::Int.promote())],
        };
        let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
        let e = Expr::binop(BinOp::Add, Expr::var("base"), Expr::query_simple(Type::Int));
        let warm = sess.run(&e).unwrap();
        assert_eq!(warm.value.to_string(), "84");
        let cold = implicit_elab::run(&decls, &prelude.wrap(e.clone(), Type::Int)).unwrap();
        assert_eq!(cold.value.to_string(), "84");
        assert_eq!(sess.run_opsem(&e).unwrap().to_string(), "84");
    }

    #[test]
    fn later_alpha_equal_bindings_shadow_earlier_ones() {
        let decls = Declarations::default();
        let prelude = Prelude::implicits(vec![
            (Expr::Int(1), Type::Int.promote()),
            (Expr::Int(2), Type::Int.promote()),
        ]);
        let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
        let e = Expr::query_simple(Type::Int);
        let warm = sess.run(&e).unwrap();
        let cold = implicit_elab::run(&decls, &prelude.wrap(e.clone(), Type::Int)).unwrap();
        assert_eq!(warm.value.to_string(), "2", "inner scope wins");
        assert_eq!(cold.value.to_string(), "2");
        assert_eq!(sess.run_opsem(&e).unwrap().to_string(), "2");
    }

    #[test]
    fn trim_rolls_the_arena_back_and_keeps_results_correct() {
        with_big_stack(|| {
            let decls = Declarations::default();
            let prelude = Prelude::chain(8);
            let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
            let (base_types, _) = intern::arena_len();
            for j in 0..4 {
                sess.run(&chain_query_program(8, j)).unwrap();
            }
            // Force growth past the prelude watermark, then trim.
            for k in 0..64 {
                let mut t = Type::Str;
                for _ in 0..k {
                    t = Type::prod(t, Type::Bool);
                }
                intern::type_id(&t);
            }
            sess.trim();
            let (types_after, _) = intern::arena_len();
            assert!(
                types_after <= base_types,
                "trim must roll the arena back to the prelude watermark \
                 ({base_types} → {types_after})"
            );
            // And the session still answers correctly afterwards.
            let warm = sess.run(&chain_query_program(8, 5)).unwrap();
            let cold =
                implicit_elab::run(&decls, &prelude.wrap(chain_query_program(8, 5), Type::Int))
                    .unwrap();
            assert_eq!(warm.value.to_string(), cold.value.to_string());
            assert!(sess.stats().trims >= 1);
        });
    }

    #[test]
    fn compiled_backend_matches_the_tree_walker_and_rolls_back() {
        with_big_stack(|| {
            let decls = Declarations::default();
            let prelude = Prelude::chain(8);
            let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
            let funcs_base = sess.compiler.code().funcs.len();
            for j in 0..6 {
                let e = chain_query_program(8, j);
                let vm = sess.run_compiled(&e).unwrap();
                let tree = sess.run(&e).unwrap();
                assert_eq!(vm.value.to_string(), tree.value.to_string());
                assert_eq!(vm.source_type.to_string(), tree.source_type.to_string());
                assert_eq!(vm.target_type.to_string(), tree.target_type.to_string());
                assert_eq!(
                    sess.compiler.code().funcs.len(),
                    funcs_base,
                    "per-program code must be rolled back to the prelude watermark"
                );
            }
            assert_eq!(sess.stats().compiled_programs, 6);
        });
    }

    #[test]
    fn run_with_backend_dispatches() {
        let decls = Declarations::default();
        let prelude = Prelude::implicits(vec![(Expr::Int(5), Type::Int.promote())]);
        let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
        let e = Expr::binop(BinOp::Add, Expr::query_simple(Type::Int), Expr::Int(2));
        let t = sess.run_with_backend(&e, Backend::Tree).unwrap();
        let v = sess.run_with_backend(&e, Backend::Vm).unwrap();
        assert_eq!(t.value.to_string(), "7");
        assert_eq!(v.value.to_string(), "7");
        assert_eq!(sess.isa(), Isa::Register);
        let mut stack_sess = Session::new_configured_isa(
            &decls,
            ResolutionPolicy::paper(),
            &prelude,
            true,
            false,
            Isa::Stack,
        )
        .unwrap();
        let s = stack_sess.run_with_backend(&e, Backend::VmStack).unwrap();
        assert_eq!(s.value.to_string(), "7");
        assert_eq!(stack_sess.isa(), Isa::Stack);
        assert_eq!(Backend::parse("vm"), Some(Backend::Vm));
        assert_eq!(Backend::parse("vm-stack"), Some(Backend::VmStack));
        assert_eq!(Backend::parse("tree"), Some(Backend::Tree));
        assert_eq!(Backend::parse("jit"), None);
        assert_eq!(Backend::VmStack.to_string(), "vm-stack");
        assert_eq!(Backend::Vm.isa(), Some(Isa::Register));
        assert_eq!(Backend::VmStack.isa(), Some(Isa::Stack));
        assert_eq!(Backend::Tree.isa(), None);
    }

    #[test]
    fn from_wrapped_round_trips_the_prelude_convention() {
        let mut prelude = Prelude::chain(3);
        prelude
            .lets
            .push((Symbol::from("b"), Type::Int, Expr::Int(7)));
        let wrapped = prelude.wrap(Expr::Unit, Type::Unit);
        let back = Prelude::from_wrapped(&wrapped).unwrap();
        assert_eq!(back.lets.len(), 1);
        assert_eq!(back.implicits.len(), prelude.implicits.len());
        assert_eq!(back.wrap(Expr::Unit, Type::Unit), wrapped);
        // Non-unit terminal bodies are rejected: the prelude binds,
        // programs supply the bodies.
        assert!(Prelude::from_wrapped(&prelude.wrap(Expr::Int(1), Type::Int)).is_err());
    }

    #[test]
    fn elaboration_errors_leave_the_session_reusable() {
        let decls = Declarations::default();
        let prelude = Prelude::chain(4);
        let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
        // Unresolvable query: Str is not in the prelude.
        let bad = Expr::query_simple(Type::Str);
        assert!(sess.run(&bad).is_err());
        let good = chain_query_program(4, 3);
        let warm = sess.run(&good).unwrap();
        let cold = implicit_elab::run(&decls, &prelude.wrap(good.clone(), Type::Int)).unwrap();
        assert_eq!(warm.value.to_string(), cold.value.to_string());
    }
}
