//! Versioned on-disk session artifacts.
//!
//! A warm [`Session`] is a pure function of `(declarations, prelude
//! source, policy, ISA, knobs)` — resolution is deterministic and
//! coherent, so the prelude's elaborated evidence, compiled bytecode,
//! derivation cache, and runtime-memo roots can be serialized once and
//! rehydrated by a later process without re-running any pipeline
//! phase. This module is that serialization layer:
//!
//! * [`Session::to_artifact`] encodes the whole base-state session —
//!   interned prelude types ride along structurally, the compiled
//!   prelude rides as [`CodeParts`], evidence values as the System F
//!   value graph (sharing preserved), the opsem leg as its
//!   environment/stack/memo-roots — into one checksummed byte vector
//!   keyed by a content hash of the inputs;
//! * [`Session::from_artifact`] rehydrates it, validating the magic,
//!   format version, checksum, and content key, so a stale or
//!   corrupted artifact is an `Err` (never a panic, never stale code);
//! * [`rebuild_incremental`] diffs an old artifact against an edited
//!   prelude and re-runs *only* the dependency cone of the edited
//!   bindings, reusing every surviving value, compiled global, cache
//!   entry, and memo root;
//! * [`ArtifactStore`] is the content-addressed directory layout
//!   (`<key>.iart` plus a `<config>.head` pointer for incremental
//!   lookup on exact-miss) with atomic writes, and [`load_or_build`]
//!   is the exact → incremental → cold loading ladder. Every decode
//!   or validation failure on the way down is counted and reported
//!   via [`Session::note_artifact_fallbacks`].
//!
//! The dependency metadata behind the incremental path is
//! [`BindingMeta`]: for each prelude binding (lets first, then
//! implicits — the same order as the compiler's global slots) the
//! indices of earlier bindings its elaborated evidence reads, from
//! both the free term variables of the elaborated System F term and
//! the global slots its compiled functions load.

use std::cell::RefCell;
use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use implicit_core::env::{CacheExport, ImplicitEnv};
use implicit_core::intern;
use implicit_core::resolve::ResolutionPolicy;
use implicit_core::symbol::{ensure_fresh_at_least, fresh_watermark, Symbol};
use implicit_core::syntax::{Declarations, RuleType, Type};
use implicit_core::trace::MetricsSink;
use implicit_core::wire::{fnv64, Dec, Enc, WireError};
use implicit_elab::{translate_decls, DictCache, Elaborator};
use implicit_opsem::interp::MemoExport;
use implicit_opsem::wire::{OpDec, OpEnc};
use implicit_opsem::{ImplStack, Interpreter, VarEnv};
use systemf::compile::{func_global_reads, CodeObject, CodeParts};
use systemf::eval::Env as FEnv;
use systemf::wire::{SfDec, SfEnc};
use systemf::{Compiler, Evaluator, FExpr, FType, Isa};

use crate::{check_closed, compile_eval, Prelude, Session, SessionError, SessionStats};

/// Artifact file magic.
const MAGIC: [u8; 4] = *b"IART";

/// On-disk format version; bumped on any wire-layout change so older
/// processes reject newer artifacts (and vice versa) instead of
/// misreading them.
pub const FORMAT_VERSION: u32 = 1;

/// An artifact failed to decode, validate, or rebuild. Always a
/// recoverable condition: callers fall back to a cold build.
#[derive(Debug)]
pub struct ArtifactError(pub String);

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "artifact: {}", self.0)
    }
}

impl std::error::Error for ArtifactError {}

impl From<WireError> for ArtifactError {
    fn from(e: WireError) -> ArtifactError {
        ArtifactError(format!("wire: {e}"))
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, ArtifactError> {
    Err(ArtifactError(msg.into()))
}

/// Per-binding dependency metadata: indices (into the unified
/// lets-then-implicits binding order) of the earlier bindings this
/// binding's evidence reads. Sorted, deduplicated; reads always point
/// strictly earlier, so invalidation is a single forward pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BindingMeta {
    /// Indices of earlier bindings read by this one.
    pub reads: Vec<u32>,
}

/// Free term variables of an elaborated System F term, in first-use
/// order (scope-tracked; binders shadow).
fn free_term_vars(e: &FExpr) -> Vec<Symbol> {
    fn go(e: &FExpr, scope: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
        match e {
            FExpr::Int(_) | FExpr::Bool(_) | FExpr::Str(_) | FExpr::Unit | FExpr::Nil(_) => {}
            FExpr::Var(x) => {
                if !scope.contains(x) && !out.contains(x) {
                    out.push(*x);
                }
            }
            FExpr::Lam(x, _, b) | FExpr::Fix(x, _, b) => {
                scope.push(*x);
                go(b, scope, out);
                scope.pop();
            }
            FExpr::App(f, a) | FExpr::Pair(f, a) | FExpr::Cons(f, a) => {
                go(f, scope, out);
                go(a, scope, out);
            }
            FExpr::BinOp(_, l, r) => {
                go(l, scope, out);
                go(r, scope, out);
            }
            FExpr::TyAbs(_, b)
            | FExpr::TyApp(b, _)
            | FExpr::UnOp(_, b)
            | FExpr::Fst(b)
            | FExpr::Snd(b)
            | FExpr::Proj(b, _) => go(b, scope, out),
            FExpr::If(c, t, f) => {
                go(c, scope, out);
                go(t, scope, out);
                go(f, scope, out);
            }
            FExpr::ListCase {
                scrut,
                nil,
                head,
                tail,
                cons,
            } => {
                go(scrut, scope, out);
                go(nil, scope, out);
                scope.push(*head);
                scope.push(*tail);
                go(cons, scope, out);
                scope.pop();
                scope.pop();
            }
            FExpr::Make(_, _, fields) => {
                for (_, f) in fields {
                    go(f, scope, out);
                }
            }
            FExpr::Inject(_, _, args) => {
                for a in args {
                    go(a, scope, out);
                }
            }
            FExpr::Match(scrut, arms) => {
                go(scrut, scope, out);
                for arm in arms {
                    let n = arm.binders.len();
                    scope.extend(arm.binders.iter().copied());
                    go(&arm.body, scope, out);
                    scope.truncate(scope.len() - n);
                }
            }
        }
    }
    let mut out = Vec::new();
    go(e, &mut Vec::new(), &mut out);
    out
}

/// Computes a binding's read-set from its elaborated term and the
/// functions compiled for it. `names` are the earlier bindings' names
/// in index order (which is also global-slot order), `funcs` the
/// function range this binding's compilation appended.
pub(crate) fn binding_reads(
    names: &[Symbol],
    fe: &FExpr,
    code: &CodeObject,
    funcs: std::ops::Range<usize>,
) -> BindingMeta {
    let mut reads: Vec<u32> = free_term_vars(fe)
        .into_iter()
        .filter_map(|x| names.iter().position(|n| *n == x).map(|i| i as u32))
        .collect();
    for f in &code.funcs[funcs] {
        for g in func_global_reads(f) {
            if (g as usize) < names.len() {
                reads.push(g);
            }
        }
    }
    reads.sort_unstable();
    reads.dedup();
    BindingMeta { reads }
}

fn isa_tag(isa: Isa) -> u8 {
    match isa {
        Isa::Register => 0,
        Isa::Stack => 1,
    }
}

fn isa_from(tag: u8) -> Result<Isa, ArtifactError> {
    match tag {
        0 => Ok(Isa::Register),
        1 => Ok(Isa::Stack),
        t => err(format!("unknown isa tag {t}")),
    }
}

fn enc_decls(e: &mut Enc, decls: &Declarations) {
    let interfaces: Vec<_> = decls.iter().collect();
    e.len(interfaces.len());
    for d in interfaces {
        e.sym(d.name);
        e.len(d.vars.len());
        for v in &d.vars {
            e.sym(*v);
        }
        e.len(d.fields.len());
        for (f, t) in &d.fields {
            e.sym(*f);
            e.ty(t);
        }
    }
    let datas: Vec<_> = decls.iter_datas().collect();
    e.len(datas.len());
    for d in datas {
        e.sym(d.name);
        e.len(d.params.len());
        for (p, k) in &d.params {
            e.sym(*p);
            e.len(*k);
        }
        e.len(d.ctors.len());
        for (c, args) in &d.ctors {
            e.sym(*c);
            e.len(args.len());
            for t in args {
                e.ty(t);
            }
        }
    }
}

fn enc_prelude(e: &mut Enc, p: &Prelude) {
    e.len(p.lets.len());
    for (x, ty, b) in &p.lets {
        e.sym(*x);
        e.ty(ty);
        e.expr(b);
    }
    e.len(p.implicits.len());
    for (a, r) in &p.implicits {
        e.expr(a);
        e.rule(r);
    }
}

fn dec_prelude(d: &mut Dec<'_>) -> Result<Prelude, ArtifactError> {
    let n = d.len()?;
    let mut lets = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let x = d.sym()?;
        let ty = d.ty()?;
        let b = d.expr()?;
        lets.push((x, ty, b));
    }
    let n = d.len()?;
    let mut implicits = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let a = d.expr()?;
        let r = d.rule()?;
        implicits.push((a, r));
    }
    Ok(Prelude { lets, implicits })
}

/// The content-address of the artifact a given session configuration
/// would produce: a 64-bit FNV hash over the format version, the
/// declarations, the full prelude source, the resolution policy, the
/// ISA, and the optimization knobs. Two processes with identical
/// inputs compute identical keys.
pub fn artifact_key(
    decls: &Declarations,
    prelude: &Prelude,
    policy: &ResolutionPolicy,
    fusion: bool,
    dict_ic: bool,
    isa: Isa,
) -> u64 {
    let mut e = Enc::new();
    e.u32(FORMAT_VERSION);
    enc_decls(&mut e, decls);
    enc_prelude(&mut e, prelude);
    e.policy(policy);
    e.u8(isa_tag(isa));
    e.bool(fusion);
    e.bool(dict_ic);
    fnv64(e.buf())
}

/// Like [`artifact_key`] but *without* the prelude: the address of
/// the configuration family an artifact belongs to. The store's
/// `.head` pointer files are keyed by this, so an exact-key miss can
/// still find the previous artifact for the same configuration and
/// rebuild incrementally from it.
pub fn config_key(
    decls: &Declarations,
    policy: &ResolutionPolicy,
    fusion: bool,
    dict_ic: bool,
    isa: Isa,
) -> u64 {
    let mut e = Enc::new();
    e.u32(FORMAT_VERSION);
    enc_decls(&mut e, decls);
    e.policy(policy);
    e.u8(isa_tag(isa));
    e.bool(fusion);
    e.bool(dict_ic);
    fnv64(e.buf())
}

/// A fully decoded artifact, ready for [`assemble`] (exact rehydrate)
/// or [`rebuild_incremental`] (diff against an edited prelude).
pub struct DecodedArtifact {
    /// The content key the producer computed (validated against the
    /// consumer's recomputation on load).
    pub key: u64,
    /// Resolution policy the session was built with.
    pub policy: ResolutionPolicy,
    /// Compiled-backend instruction set.
    pub isa: Isa,
    /// Superinstruction-fusion knob.
    pub fusion: bool,
    /// Dictionary-inline-cache knob.
    pub dict_ic: bool,
    /// Fresh-symbol watermark at encode time; the loader raises the
    /// process counter past it so later `fresh` names cannot collide
    /// with serialized ones.
    pub fresh_watermark: u64,
    /// The prelude source the artifact was built from.
    pub prelude: Prelude,
    /// Prelude `let` binders.
    pub gamma: Vec<(Symbol, Type)>,
    /// Prelude implicit context, canonical order.
    pub context: Vec<RuleType>,
    /// Evidence variable frames parallel to `context`.
    pub evidence: Vec<Vec<Symbol>>,
    /// Per-binding dependency read-sets.
    pub binding_meta: Vec<BindingMeta>,
    /// Compiled prelude code, pools, and globals.
    pub code_parts: CodeParts,
    /// Evaluated global values, parallel to `code_parts.globals`.
    pub vm_globals: Vec<systemf::Value>,
    /// Tree-walker environment binding lets and evidence.
    pub fenv: FEnv,
    /// Preservation binders for promoted dictionary globals.
    pub dict_binders: Vec<(Symbol, FType)>,
    /// Promoted dictionary entries (query → global name).
    pub dict_entries: Vec<(RuleType, Symbol)>,
    /// Warm derivation-cache entries.
    pub cache_entries: Vec<CacheExport>,
    /// Opsem term environment (lets).
    pub venv: VarEnv,
    /// Opsem implicit stack (one frame per implicit binding).
    pub istack: ImplStack,
    /// Prelude-rooted runtime-memo entries.
    pub memo_roots: Vec<MemoExport>,
}

impl<'d> Session<'d> {
    /// Serializes this session's base state into one checksummed,
    /// content-keyed artifact. The session is first restored to its
    /// base state (environment depth, code watermark, arena trim) —
    /// the same state every `run*` call already leaves it in — so
    /// serializing mid-batch is safe.
    pub fn to_artifact(&mut self) -> Vec<u8> {
        let env_base = self.env_base;
        self.env.restore(&env_base);
        let code_base = self.code_base;
        self.compiler.rollback(&code_base);
        // Exports are filtered against a *current* arena snapshot, not
        // the prelude watermark: entries learned while running
        // programs are still prelude-pure (the exporters reject
        // anything that depended on program-local frames), and they
        // are exactly the warmth a restarted batch wants back.
        let snap = intern::snapshot();

        let key = artifact_key(
            self.decls,
            &self.prelude,
            &self.policy,
            self.compiler.fusion_enabled(),
            self.dict_ic,
            self.isa(),
        );
        let mut e = Enc::new();
        for b in MAGIC {
            e.u8(b);
        }
        e.u32(FORMAT_VERSION);
        e.u64(key);
        e.policy(&self.policy);
        e.u8(isa_tag(self.isa()));
        e.bool(self.compiler.fusion_enabled());
        e.bool(self.dict_ic);
        e.u64(self.fresh_base);
        enc_prelude(&mut e, &self.prelude);
        e.len(self.gamma.len());
        for (x, t) in &self.gamma {
            e.sym(*x);
            e.ty(t);
        }
        e.len(self.context.len());
        for r in &self.context {
            e.rule(r);
        }
        e.len(self.evidence.len());
        for frame in &self.evidence {
            e.len(frame.len());
            for s in frame {
                e.sym(*s);
            }
        }
        e.len(self.binding_meta.len());
        for m in &self.binding_meta {
            e.len(m.reads.len());
            for r in &m.reads {
                e.u32(*r);
            }
        }
        // System F section: code first, so the decoder knows the
        // function count before any compiled closure references one.
        {
            let parts = self.compiler.export_parts(&code_base);
            let mut sf = SfEnc::new(&mut e);
            sf.code_parts(&parts);
            sf.e.len(self.vm_globals.len());
            for v in &self.vm_globals {
                sf.value(v);
            }
            sf.env(&self.fenv);
            sf.e.len(self.dict_binders.len());
            for (s, t) in &self.dict_binders {
                sf.e.sym(*s);
                sf.ftype(t);
            }
        }
        let dict_entries = self.dict.borrow().export_entries(&snap);
        e.len(dict_entries.len());
        for (r, g) in &dict_entries {
            e.rule(r);
            e.sym(*g);
        }
        let cache = self.env.export_cache(&snap);
        e.len(cache.len());
        for c in &cache {
            e.rule(&c.query);
            e.overlap(c.overlap);
            e.resolution(&c.resolution);
            e.len(c.cached_depth);
            e.len(c.max_abs_frame);
        }
        // Opsem section: environment and stack first so memo-root
        // values can backreference shared frames.
        {
            let roots = self.interp.export_memo_roots(&self.istack);
            let mut op = OpEnc::new(&mut e);
            op.varenv(&self.venv);
            op.implstack(&self.istack);
            op.e.len(roots.len());
            for r in &roots {
                op.e.len(r.depth);
                op.e.rule(&r.query);
                op.value(&r.value);
            }
        }
        e.finish()
    }

    /// Rehydrates a session from artifact bytes, validating that the
    /// artifact was produced by exactly this `(declarations, prelude,
    /// policy, knobs, isa)` configuration — the stored content key
    /// must equal the recomputed one.
    ///
    /// # Errors
    ///
    /// Any corruption (checksum, truncation, bad tags), version skew,
    /// or key mismatch is an [`ArtifactError`]; callers fall back to
    /// a cold build.
    #[allow(clippy::too_many_arguments)]
    pub fn from_artifact(
        decls: &'d Declarations,
        policy: &ResolutionPolicy,
        prelude: &Prelude,
        fusion: bool,
        dict_ic: bool,
        isa: Isa,
        bytes: &[u8],
    ) -> Result<Session<'d>, ArtifactError> {
        let a = decode(bytes)?;
        let expect = artifact_key(decls, prelude, policy, fusion, dict_ic, isa);
        if a.key != expect {
            return err(format!(
                "content key mismatch: artifact {:016x}, configuration {:016x}",
                a.key, expect
            ));
        }
        if a.policy != *policy || a.isa != isa || a.fusion != fusion || a.dict_ic != dict_ic {
            return err("configuration fields disagree with content key");
        }
        assemble(decls, a)
    }
}

/// Decodes artifact bytes into their plain parts. Checksum, magic,
/// version, and structural tags are all validated here; semantic
/// cross-checks happen in [`assemble`].
///
/// # Errors
///
/// See [`Session::from_artifact`].
pub fn decode(bytes: &[u8]) -> Result<DecodedArtifact, ArtifactError> {
    let mut d = Dec::new(bytes)?;
    for b in MAGIC {
        if d.u8()? != b {
            return err("bad magic");
        }
    }
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return err(format!(
            "format version {version} (this build reads {FORMAT_VERSION})"
        ));
    }
    let key = d.u64()?;
    let policy = d.policy()?;
    let isa = isa_from(d.u8()?)?;
    let fusion = d.bool()?;
    let dict_ic = d.bool()?;
    let fresh_wm = d.u64()?;
    let prelude = dec_prelude(&mut d)?;
    let n = d.len()?;
    let mut gamma = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let x = d.sym()?;
        let t = d.ty()?;
        gamma.push((x, t));
    }
    let n = d.len()?;
    let mut context = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        context.push(d.rule()?);
    }
    let n = d.len()?;
    let mut evidence = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let k = d.len()?;
        let mut frame = Vec::with_capacity(k.min(1 << 16));
        for _ in 0..k {
            frame.push(d.sym()?);
        }
        evidence.push(frame);
    }
    let n = d.len()?;
    let mut binding_meta = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let k = d.len()?;
        let mut reads = Vec::with_capacity(k.min(1 << 16));
        for _ in 0..k {
            reads.push(d.u32()?);
        }
        binding_meta.push(BindingMeta { reads });
    }
    let (code_parts, vm_globals, fenv, dict_binders) = {
        let mut sf = SfDec::new(&mut d);
        let parts = sf.code_parts()?;
        let n = sf.d.len()?;
        let mut globals = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            globals.push(sf.value()?);
        }
        let fenv = sf.env()?;
        let n = sf.d.len()?;
        let mut binders = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let s = sf.d.sym()?;
            let t = sf.ftype()?;
            binders.push((s, t));
        }
        (parts, globals, fenv, binders)
    };
    let n = d.len()?;
    let mut dict_entries = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let r = d.rule()?;
        let g = d.sym()?;
        dict_entries.push((r, g));
    }
    let n = d.len()?;
    let mut cache_entries = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let query = d.rule()?;
        let overlap = d.overlap()?;
        let resolution = d.resolution()?;
        let cached_depth = d.len()?;
        let max_abs_frame = d.len()?;
        cache_entries.push(CacheExport {
            query,
            overlap,
            resolution,
            cached_depth,
            max_abs_frame,
        });
    }
    let (venv, istack, memo_roots) = {
        let mut op = OpDec::new(&mut d);
        let venv = op.varenv()?;
        let istack = op.implstack()?;
        let n = op.d.len()?;
        let mut roots = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let depth = op.d.len()?;
            let query = op.d.rule()?;
            let value = op.value()?;
            roots.push(MemoExport {
                depth,
                query,
                value,
            });
        }
        (venv, istack, roots)
    };
    if !d.at_end() {
        return err("trailing bytes after artifact payload");
    }
    Ok(DecodedArtifact {
        key,
        policy,
        isa,
        fusion,
        dict_ic,
        fresh_watermark: fresh_wm,
        prelude,
        gamma,
        context,
        evidence,
        binding_meta,
        code_parts,
        vm_globals,
        fenv,
        dict_binders,
        dict_entries,
        cache_entries,
        venv,
        istack,
        memo_roots,
    })
}

/// Cross-checks a decoded artifact's invariants: parallel structures
/// must agree in length, and the code object must cover its globals.
fn validate(a: &DecodedArtifact) -> Result<(), ArtifactError> {
    if a.context.len() != a.evidence.len() {
        return err("context/evidence length mismatch");
    }
    if a.istack.depth() != a.context.len() {
        return err("implicit stack depth disagrees with context");
    }
    if a.gamma.len() != a.prelude.lets.len() || a.context.len() != a.prelude.implicits.len() {
        return err("binder counts disagree with prelude source");
    }
    if a.binding_meta.len() != a.gamma.len() + a.context.len() {
        return err("binding metadata count mismatch");
    }
    if a.code_parts.globals.len() != a.vm_globals.len() {
        return err("global table / global values length mismatch");
    }
    if a.vm_globals.len() != a.gamma.len() + a.context.len() + a.dict_binders.len() {
        return err("global count disagrees with binders");
    }
    if a.code_parts.isa != a.isa {
        return err("code object isa disagrees with header");
    }
    for (i, m) in a.binding_meta.iter().enumerate() {
        if m.reads.iter().any(|r| *r as usize >= i) {
            return err("binding read-set points at itself or a later binding");
        }
    }
    Ok(())
}

/// Assembles a warm [`Session`] from decoded parts without re-running
/// any pipeline phase: the compiler is rebuilt from its parts, the
/// implicit environment by re-pushing the context frames and
/// importing the derivation cache, the interpreter by re-keying the
/// memo roots against the rehydrated stack.
///
/// # Errors
///
/// Structural cross-check failures (see [`Session::from_artifact`]).
pub fn assemble<'d>(
    decls: &'d Declarations,
    a: DecodedArtifact,
) -> Result<Session<'d>, ArtifactError> {
    validate(&a)?;
    ensure_fresh_at_least(a.fresh_watermark);
    let compiler = Compiler::from_parts(a.code_parts);
    let mut env = ImplicitEnv::new();
    for r in &a.context {
        env.push(vec![r.clone()]);
    }
    env.import_cache(a.cache_entries);
    let mut interp = Interpreter::new(decls).with_policy(a.policy.clone());
    interp.import_memo_roots(&a.istack, a.memo_roots);
    let mut dict = DictCache::new(a.evidence.len());
    dict.import_entries(a.dict_entries);
    let elab = Elaborator::with_policy(decls, a.policy.clone());
    let fdecls = translate_decls(decls);
    // The watermark is taken *after* every import so all ids interned
    // during rehydration are covered — a later trim keeps them.
    let intern_base = intern::snapshot();
    let env_base = env.snapshot();
    let code_base = compiler.snapshot();
    Ok(Session {
        decls,
        policy: a.policy,
        elab,
        fdecls,
        env,
        evidence: a.evidence,
        gamma: a.gamma,
        context: a.context,
        fenv: a.fenv,
        compiler,
        vm_globals: a.vm_globals,
        code_base,
        dict: Rc::new(RefCell::new(dict)),
        dict_ic: a.dict_ic,
        dict_binders: a.dict_binders,
        interp,
        venv: a.venv,
        istack: a.istack,
        intern_base,
        env_base,
        stats: SessionStats::default(),
        metrics: Rc::new(RefCell::new(MetricsSink::new())),
        trace: None,
        prelude: a.prelude,
        binding_meta: a.binding_meta,
        fresh_base: a.fresh_watermark,
        profile_dispatch: false,
        dispatch_counts: std::collections::HashMap::new(),
    })
}

/// What an incremental rebuild reused versus recomputed.
#[derive(Clone, Copy, Debug, Default)]
pub struct RebuildStats {
    /// Total prelude bindings (lets + implicits).
    pub bindings_total: usize,
    /// Bindings whose evidence/value/code were reused unchanged.
    pub bindings_reused: usize,
    /// Derivation-cache entries carried over.
    pub cache_entries_retained: usize,
    /// Runtime-memo roots carried over.
    pub memo_roots_retained: usize,
}

/// Rebuilds a session for `prelude` from an old artifact of the same
/// *shape* (same let names/types, same implicit rule types, same
/// counts) whose binding expressions may have been edited: only the
/// dependency cone of the edited bindings — the bindings themselves
/// plus everything whose [`BindingMeta::reads`] reach one,
/// transitively — is re-elaborated, re-evaluated, and re-compiled.
/// Everything else reuses the decoded values, compiled globals,
/// derivation-cache entries, and (up to the first dirty implicit
/// frame) runtime-memo roots.
///
/// Promoted dictionary entries are always dropped (their values may
/// embed dirty evidence); their globals and binders are kept as dead
/// weight so compiled code and slot indices stay valid, and queries
/// re-promote on demand.
///
/// # Errors
///
/// Shape changes, decode-level inconsistencies, and any pipeline
/// failure while recomputing a dirty binding; callers fall back to a
/// cold build.
pub fn rebuild_incremental<'d>(
    decls: &'d Declarations,
    old: DecodedArtifact,
    prelude: &Prelude,
) -> Result<(Session<'d>, RebuildStats), ArtifactError> {
    validate(&old)?;
    let nlets = prelude.lets.len();
    let nimp = prelude.implicits.len();
    let total = nlets + nimp;
    if old.prelude.lets.len() != nlets || old.prelude.implicits.len() != nimp {
        return err("prelude shape changed (binding counts)");
    }
    for ((ox, oty, _), (nx, nty, _)) in old.prelude.lets.iter().zip(&prelude.lets) {
        if ox != nx || oty != nty {
            return err("prelude shape changed (let binder)");
        }
    }
    for ((_, orho), (_, nrho)) in old.prelude.implicits.iter().zip(&prelude.implicits) {
        if orho != nrho {
            return err("prelude shape changed (implicit rule type)");
        }
    }
    // Dirty seed: bindings whose expression changed. Closure: one
    // forward pass suffices because reads point strictly earlier.
    let mut dirty = vec![false; total];
    for (i, ((_, _, ob), (_, _, nb))) in old.prelude.lets.iter().zip(&prelude.lets).enumerate() {
        dirty[i] = ob != nb;
    }
    for (j, ((oa, _), (na, _))) in old
        .prelude
        .implicits
        .iter()
        .zip(&prelude.implicits)
        .enumerate()
    {
        dirty[nlets + j] = oa != na;
    }
    for i in 0..total {
        if !dirty[i] && old.binding_meta[i].reads.iter().any(|r| dirty[*r as usize]) {
            dirty[i] = true;
        }
    }

    ensure_fresh_at_least(old.fresh_watermark);
    let old_fenv = old.fenv.bindings_outermost_first();
    if old_fenv.len() != total {
        return err("tree environment does not cover the prelude bindings");
    }
    let old_venv = old.venv.bindings_outermost_first();
    if old_venv.len() != nlets {
        return err("opsem environment does not cover the prelude lets");
    }
    let mut old_frames: Vec<Rc<Vec<(RuleType, implicit_opsem::Value)>>> =
        old.istack.frames_innermost_first().cloned().collect();
    old_frames.reverse(); // outermost first, parallel to implicits

    let elab = Elaborator::with_policy(decls, old.policy.clone());
    let fdecls = translate_decls(decls);
    let mut interp = Interpreter::new(decls).with_policy(old.policy.clone());
    let mut compiler = Compiler::from_parts(old.code_parts);
    let mut vm_globals = old.vm_globals;

    let pipeline_err = |e: SessionError| ArtifactError(format!("incremental rebuild: {e}"));
    let elab_err = |e: implicit_elab::ElabError| ArtifactError(format!("incremental rebuild: {e}"));

    let mut gamma: Vec<(Symbol, Type)> = Vec::with_capacity(nlets);
    let mut binding_meta: Vec<BindingMeta> = Vec::with_capacity(total);
    let mut fenv = FEnv::new();
    let mut venv = VarEnv::new();
    let mut reused = 0usize;
    for (i, (x, ty, bound)) in prelude.lets.iter().enumerate() {
        if !dirty[i] {
            let v = old_fenv[i]
                .1
                .clone()
                .ok_or_else(|| ArtifactError("recursive top-level binding".into()))?;
            fenv = fenv.bind(*x, v);
            let vo = old_venv[i]
                .1
                .clone()
                .ok_or_else(|| ArtifactError("recursive top-level opsem binding".into()))?;
            venv = venv.bind(*x, vo);
            binding_meta.push(old.binding_meta[i].clone());
            reused += 1;
        } else {
            let mut scratch = ImplicitEnv::new();
            let (got, fb) = elab
                .elaborate_with_env(&mut scratch, &[], &gamma, bound)
                .map_err(elab_err)?;
            if !intern::types_equal(&got, ty) {
                return err(format!("let `{x}` declared `{ty}` but edited to `{got}`"));
            }
            check_closed(&fdecls, &gamma, &[], &fb).map_err(pipeline_err)?;
            let v = Evaluator::new()
                .eval_in(&fenv, &fb)
                .map_err(|e| ArtifactError(format!("incremental rebuild: {e}")))?;
            fenv = fenv.bind(*x, v);
            let funcs_before = compiler.code().funcs.len();
            let gv = compile_eval(&mut compiler, &vm_globals, &fb).map_err(pipeline_err)?;
            let funcs_after = compiler.code().funcs.len();
            vm_globals[i] = gv;
            let names: Vec<Symbol> = gamma.iter().map(|(n, _)| *n).collect();
            binding_meta.push(binding_reads(
                &names,
                &fb,
                compiler.code(),
                funcs_before..funcs_after,
            ));
            let vo = interp
                .eval_in(&venv, &ImplStack::new(), bound)
                .map_err(|e| ArtifactError(format!("incremental rebuild: {e}")))?;
            venv = venv.bind(*x, vo);
        }
        gamma.push((*x, ty.clone()));
    }

    let mut env = ImplicitEnv::new();
    let mut evidence: Vec<Vec<Symbol>> = Vec::with_capacity(nimp);
    let mut context: Vec<RuleType> = Vec::with_capacity(nimp);
    let mut istack = ImplStack::new();
    let mut first_dirty_implicit: Option<usize> = None;
    for (j, (arg, arho)) in prelude.implicits.iter().enumerate() {
        let i = nlets + j;
        if old.evidence[j].len() != 1 {
            return err("implicit evidence frame is not a singleton");
        }
        let sym = old.evidence[j][0];
        if !dirty[i] {
            let v = old_fenv[i]
                .1
                .clone()
                .ok_or_else(|| ArtifactError("recursive evidence binding".into()))?;
            fenv = fenv.bind(sym, v);
            istack = istack.pushed((*old_frames[j]).clone());
            env.push(vec![arho.clone()]);
            evidence.push(old.evidence[j].clone());
            context.push(arho.clone());
            binding_meta.push(old.binding_meta[i].clone());
            reused += 1;
        } else {
            if first_dirty_implicit.is_none() {
                first_dirty_implicit = Some(j);
            }
            let (got, ea) = elab
                .elaborate_with_env(&mut env, &evidence, &gamma, arg)
                .map_err(elab_err)?;
            let want = arho.to_type();
            if !intern::types_equal(&got, &want) {
                return err(format!(
                    "implicit binding declared `{arho}` but edited to `{got}`"
                ));
            }
            let outer: Vec<(Symbol, RuleType)> = evidence
                .iter()
                .flat_map(|syms| syms.iter())
                .copied()
                .zip(context.iter().cloned())
                .collect();
            check_closed(&fdecls, &gamma, &outer, &ea).map_err(pipeline_err)?;
            let v = Evaluator::new()
                .eval_in(&fenv, &ea)
                .map_err(|e| ArtifactError(format!("incremental rebuild: {e}")))?;
            // The old evidence symbol is reused: it already names the
            // compiled global slot, and a name carries no staleness.
            fenv = fenv.bind(sym, v);
            let funcs_before = compiler.code().funcs.len();
            let gv = compile_eval(&mut compiler, &vm_globals, &ea).map_err(pipeline_err)?;
            let funcs_after = compiler.code().funcs.len();
            vm_globals[i] = gv;
            let names: Vec<Symbol> = gamma
                .iter()
                .map(|(n, _)| *n)
                .chain(evidence.iter().flat_map(|syms| syms.iter()).copied())
                .collect();
            binding_meta.push(binding_reads(
                &names,
                &ea,
                compiler.code(),
                funcs_before..funcs_after,
            ));
            let av = interp
                .eval_in(&venv, &istack, arg)
                .map_err(|e| ArtifactError(format!("incremental rebuild: {e}")))?;
            istack = istack.pushed(vec![(arho.clone(), av)]);
            env.push(vec![arho.clone()]);
            evidence.push(vec![sym]);
            context.push(arho.clone());
        }
    }

    // Derivation-cache entries are type-level — a resolution depends
    // only on the context rule types, which shape-equality fixed — so
    // every exported entry stays valid under expression-only edits.
    let cache_entries_retained = old.cache_entries.len();
    env.import_cache(old.cache_entries);

    // Runtime-memo values may embed evidence, so a root is only safe
    // when every binding it can reach is clean: any dirty let poisons
    // all roots (lets feed every frame), a dirty implicit poisons
    // roots that pinned its frame or a deeper one.
    let memo_cut = if dirty[..nlets].iter().any(|d| *d) {
        0
    } else {
        first_dirty_implicit.unwrap_or(nimp)
    };
    let roots: Vec<MemoExport> = old
        .memo_roots
        .into_iter()
        .filter(|r| r.depth <= memo_cut)
        .collect();
    let memo_roots_retained = roots.len();
    interp.import_memo_roots(&istack, roots);

    let dict = DictCache::new(evidence.len());
    let intern_base = intern::snapshot();
    let env_base = env.snapshot();
    let code_base = compiler.snapshot();
    let stats = RebuildStats {
        bindings_total: total,
        bindings_reused: reused,
        cache_entries_retained,
        memo_roots_retained,
    };
    let session = Session {
        decls,
        policy: old.policy,
        elab,
        fdecls,
        env,
        evidence,
        gamma,
        context,
        fenv,
        compiler,
        vm_globals,
        code_base,
        dict: Rc::new(RefCell::new(dict)),
        dict_ic: old.dict_ic,
        dict_binders: old.dict_binders,
        interp,
        venv,
        istack,
        intern_base,
        env_base,
        stats: SessionStats::default(),
        metrics: Rc::new(RefCell::new(MetricsSink::new())),
        trace: None,
        prelude: prelude.clone(),
        binding_meta,
        // Re-elaborating dirty bindings minted gensyms above the old
        // artifact's watermark; snapshot the counter *after* rebuild
        // (as cold construction does) so a saved artifact covers them
        // and a later loader can't re-mint colliding names.
        fresh_base: fresh_watermark(),
        profile_dispatch: false,
        dispatch_counts: std::collections::HashMap::new(),
    };
    Ok((session, stats))
}

/// A content-addressed artifact directory: `<key>.iart` content files
/// plus `<config>.head` pointers naming the most recent artifact key
/// per configuration family (the incremental-rebuild anchor on an
/// exact-key miss). All writes are atomic (temp file + rename), so a
/// crashed writer never leaves a torn artifact behind.
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ArtifactStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the content file for `key`.
    pub fn content_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.iart"))
    }

    fn head_path(&self, config: u64) -> PathBuf {
        self.dir.join(format!("{config:016x}.head"))
    }

    /// Reads the artifact stored under `key`, if any.
    pub fn load(&self, key: u64) -> Option<Vec<u8>> {
        std::fs::read(self.content_path(key)).ok()
    }

    /// The most recent artifact key recorded for `config`, if any.
    pub fn head(&self, config: u64) -> Option<u64> {
        let s = std::fs::read_to_string(self.head_path(config)).ok()?;
        u64::from_str_radix(s.trim(), 16).ok()
    }

    /// Atomically writes `bytes` under `key` and points `config`'s
    /// head at it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (callers treat saving as
    /// best-effort: a failed save never fails the build).
    pub fn save(&self, key: u64, config: u64, bytes: &[u8]) -> io::Result<()> {
        atomic_write(&self.content_path(key), bytes)?;
        atomic_write(&self.head_path(config), format!("{key:016x}\n").as_bytes())
    }
}

fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // The temp name carries a process-wide counter on top of the pid:
    // concurrent saves of the same key from different threads (the
    // conformance runner shares one store across workers) must not
    // share a temp file, or interleaved writes could rename a torn
    // artifact into place.
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp{}.{seq}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// How [`load_or_build`] obtained its session.
#[derive(Clone, Debug)]
pub enum LoadOutcome {
    /// Rehydrated from an exact-key artifact; no phase re-ran.
    Exact,
    /// Rebuilt incrementally from the configuration's previous
    /// artifact; only the edited bindings' cones re-ran.
    Incremental(RebuildStats),
    /// Built cold (no usable artifact).
    Cold,
}

/// Loads a warm session from `store` if it can, building (and
/// saving) otherwise: exact content-key hit → incremental rebuild
/// from the configuration head → cold build. Every decode or
/// validation failure along the way falls through to the next rung
/// and is counted on the returned session's metrics as an
/// `artifact_fallback` — a corrupt store degrades to exactly the
/// no-store behavior, never a panic and never stale code.
///
/// # Errors
///
/// Only a failed *cold build* errors (same conditions as
/// [`Session::new_configured_isa`]).
#[allow(clippy::too_many_arguments)]
pub fn load_or_build<'d>(
    store: &ArtifactStore,
    decls: &'d Declarations,
    policy: &ResolutionPolicy,
    prelude: &Prelude,
    fusion: bool,
    dict_ic: bool,
    isa: Isa,
) -> Result<(Session<'d>, LoadOutcome), SessionError> {
    let key = artifact_key(decls, prelude, policy, fusion, dict_ic, isa);
    let config = config_key(decls, policy, fusion, dict_ic, isa);
    let mut fallbacks = 0u64;
    if let Some(bytes) = store.load(key) {
        match Session::from_artifact(decls, policy, prelude, fusion, dict_ic, isa, &bytes) {
            Ok(mut s) => {
                s.note_artifact_fallbacks(fallbacks);
                let _ = store.save(key, config, &bytes);
                return Ok((s, LoadOutcome::Exact));
            }
            Err(_) => fallbacks += 1,
        }
    }
    if let Some(old_key) = store.head(config) {
        if old_key != key {
            match store.load(old_key) {
                Some(bytes) => {
                    let rebuilt = decode(&bytes).and_then(|a| {
                        // The head must really belong to this
                        // configuration: its own key must recompute
                        // under our declarations/policy/knobs.
                        let k = artifact_key(decls, &a.prelude, policy, fusion, dict_ic, isa);
                        if k != a.key {
                            return err("head artifact belongs to a different configuration");
                        }
                        rebuild_incremental(decls, a, prelude)
                    });
                    match rebuilt {
                        Ok((mut s, stats)) => {
                            s.note_artifact_fallbacks(fallbacks);
                            let bytes = s.to_artifact();
                            let _ = store.save(key, config, &bytes);
                            return Ok((s, LoadOutcome::Incremental(stats)));
                        }
                        Err(_) => fallbacks += 1,
                    }
                }
                None => fallbacks += 1,
            }
        }
    }
    let mut s = Session::new_configured_isa(decls, policy.clone(), prelude, fusion, dict_ic, isa)?;
    s.note_artifact_fallbacks(fallbacks);
    let bytes = s.to_artifact();
    let _ = store.save(key, config, &bytes);
    Ok((s, LoadOutcome::Cold))
}
