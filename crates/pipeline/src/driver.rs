//! A std-only work-stealing parallel batch driver.
//!
//! The session types are `Rc`-based and the interning arena is
//! thread-local, so a "shared warm snapshot" cannot be shared memory:
//! instead each worker thread builds its own worker state (typically a
//! [`crate::Session`] warmed from one shared prelude recipe), then
//! drains jobs from a shared injector deque and, when that runs dry,
//! steals from the tails of sibling workers' local deques.
//!
//! Two entry points:
//!
//! * [`run_batch_scoped`] — the primitive. Each worker runs a caller
//!   closure with a [`JobSource`]; the closure owns its whole stack
//!   frame, so worker state may borrow from other worker-locals (a
//!   `Session` borrowing its `Declarations`).
//! * [`run_batch`] — convenience init/step form returning results in
//!   job order plus per-worker metadata.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-worker execution metadata.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerMeta {
    /// Worker index in `0..workers`.
    pub worker: usize,
    /// Jobs this worker completed.
    pub jobs: usize,
    /// Jobs this worker stole from a sibling's local deque.
    pub steals: usize,
    /// Wall-clock milliseconds spent in the worker loop (including
    /// worker-state construction).
    pub millis: u128,
}

/// How many jobs a worker moves from the injector to its local deque
/// per grab.
fn grab_size(total: usize, workers: usize) -> usize {
    (total / (workers * 4).max(1)).clamp(1, 64)
}

/// Worker thread stack size. Resolution, elaboration, and both
/// evaluators recurse once per derivation level, and chain-style
/// preludes make derivations tens of levels deep — debug-build frames
/// for those interleaved calls overflow the 2 MiB spawn default.
///
/// The *tree-walking* System F evaluator is the other reason this is
/// 64 MiB rather than the 8 MiB main-thread default: it recurses on
/// the host stack once per `fix` unfold, so a 100k-iteration
/// recursive program needs tens of megabytes of frames. The bytecode
/// VM ([`systemf::vm`], `Session::run_compiled`) heap-allocates its
/// frames and runs the same programs in constant host stack — see
/// `systemf/tests/vm_deep.rs`, which executes a 100k-step fold on a
/// deliberately small thread.
const WORKER_STACK: usize = 64 << 20;

/// Spawns a detached *service* worker on the same deep stack the
/// batch workers use ([`WORKER_STACK`]): resident daemon tenants run
/// the identical recursion-heavy pipeline (resolution, elaboration,
/// both evaluators) and need the identical headroom, but live for the
/// daemon's lifetime instead of one batch drain.
///
/// # Errors
///
/// OS thread-spawn failures.
pub fn spawn_service_worker<T: Send + 'static>(
    name: String,
    f: impl FnOnce() -> T + Send + 'static,
) -> std::io::Result<std::thread::JoinHandle<T>> {
    std::thread::Builder::new()
        .name(name)
        .stack_size(WORKER_STACK)
        .spawn(f)
}

/// Shared queue state for one batch run.
struct Shared<J> {
    injector: Mutex<VecDeque<(usize, J)>>,
    locals: Vec<Mutex<VecDeque<(usize, J)>>>,
    dispatched: AtomicUsize,
    total: usize,
    grab: usize,
}

/// A worker's handle on the shared job queues. [`JobSource::next`]
/// yields `(job_index, job)` pairs until the whole batch is drained.
pub struct JobSource<'a, J> {
    shared: &'a Shared<J>,
    worker: usize,
    /// Jobs this worker pulled so far.
    pub taken: usize,
    /// Jobs this worker stole from siblings' deques.
    pub steals: usize,
}

impl<J> Iterator for JobSource<'_, J> {
    type Item = (usize, J);

    /// The next job for this worker: local deque first, then a grab
    /// from the shared injector, then a steal from a sibling's tail.
    /// Returns `None` once every job in the batch has been handed out.
    fn next(&mut self) -> Option<(usize, J)> {
        let sh = self.shared;
        let w = self.worker;
        loop {
            if let Some(j) = sh.locals[w].lock().unwrap().pop_front() {
                self.taken += 1;
                sh.dispatched.fetch_add(1, Ordering::Release);
                return Some(j);
            }
            {
                let mut inj = sh.injector.lock().unwrap();
                if let Some(first) = inj.pop_front() {
                    let mut local = sh.locals[w].lock().unwrap();
                    for _ in 1..sh.grab {
                        match inj.pop_front() {
                            Some(j) => local.push_back(j),
                            None => break,
                        }
                    }
                    drop(local);
                    drop(inj);
                    self.taken += 1;
                    sh.dispatched.fetch_add(1, Ordering::Release);
                    return Some(first);
                }
            }
            let workers = sh.locals.len();
            let mut stolen = None;
            for off in 1..workers {
                let victim = (w + off) % workers;
                if let Some(j) = sh.locals[victim].lock().unwrap().pop_back() {
                    stolen = Some(j);
                    break;
                }
            }
            if let Some(j) = stolen {
                self.taken += 1;
                self.steals += 1;
                sh.dispatched.fetch_add(1, Ordering::Release);
                return Some(j);
            }
            if sh.dispatched.load(Ordering::Acquire) >= sh.total {
                return None;
            }
            // Everything is momentarily in flight between queues; let
            // the holder make progress.
            std::thread::yield_now();
        }
    }
}

/// Runs `jobs` across `workers` threads with work stealing, giving
/// each worker full control of its own stack frame: `work(w, source)`
/// runs on worker thread `w` and pulls jobs via
/// [`JobSource::next`]. Worker state need not be `Send`, and state
/// built inside `work` may borrow from earlier locals of the same
/// frame.
///
/// Returns each worker's output, indexed by worker.
///
/// # Panics
///
/// Propagates panics from `work`.
pub fn run_batch_scoped<J, T>(
    jobs: Vec<J>,
    workers: usize,
    work: impl Fn(usize, &mut JobSource<'_, J>) -> T + Sync,
) -> Vec<T>
where
    J: Send,
    T: Send,
{
    let total = jobs.len();
    let workers = workers.max(1).min(total.max(1));
    let shared = Shared {
        injector: Mutex::new(jobs.into_iter().enumerate().collect()),
        locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        dispatched: AtomicUsize::new(0),
        total,
        grab: grab_size(total, workers),
    };
    let shared = &shared;
    let work = &work;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                std::thread::Builder::new()
                    .name(format!("batch-worker-{w}"))
                    .stack_size(WORKER_STACK)
                    .spawn_scoped(s, move || {
                        let mut source = JobSource {
                            shared,
                            worker: w,
                            taken: 0,
                            steals: 0,
                        };
                        work(w, &mut source)
                    })
                    .expect("spawn batch worker")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    })
}

/// Init/step convenience form of [`run_batch_scoped`]: `init(w)` runs
/// on worker thread `w` to build its state, `step` runs each job.
/// The result vector is indexed like `jobs`; metadata is indexed by
/// worker.
///
/// # Panics
///
/// Propagates panics from `init` or `step`.
pub fn run_batch<J, R, W>(
    jobs: Vec<J>,
    workers: usize,
    init: impl Fn(usize) -> W + Sync,
    step: impl Fn(&mut W, J) -> R + Sync,
) -> (Vec<R>, Vec<WorkerMeta>)
where
    J: Send,
    R: Send,
{
    let total = jobs.len();
    let outputs = run_batch_scoped(jobs, workers, |w, source| {
        let started = Instant::now();
        let mut state = init(w);
        let mut out: Vec<(usize, R)> = Vec::new();
        for (ix, job) in source.by_ref() {
            out.push((ix, step(&mut state, job)));
        }
        let meta = WorkerMeta {
            worker: w,
            jobs: source.taken,
            steals: source.steals,
            millis: started.elapsed().as_millis(),
        };
        (out, meta)
    });
    let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    let mut metas = Vec::with_capacity(outputs.len());
    for (out, meta) in outputs {
        for (ix, r) in out {
            debug_assert!(slots[ix].is_none(), "job {ix} ran twice");
            slots[ix] = Some(r);
        }
        metas.push(meta);
    }
    let results = slots
        .into_iter()
        .map(|r| r.expect("every job index filled exactly once"))
        .collect();
    metas.sort_by_key(|m| m.worker);
    (results, metas)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_job_runs_exactly_once_and_results_are_ordered() {
        for workers in [1, 2, 3, 8] {
            let jobs: Vec<u64> = (0..203).collect();
            let (results, metas) = run_batch(
                jobs,
                workers,
                |_| 0u64,
                |state, j| {
                    *state += 1;
                    j * 2
                },
            );
            assert_eq!(results, (0..203).map(|j| j * 2).collect::<Vec<_>>());
            let total: usize = metas.iter().map(|m| m.jobs).sum();
            assert_eq!(total, 203, "workers={workers} metas={metas:?}");
        }
    }

    #[test]
    fn empty_batch_and_more_workers_than_jobs_are_fine() {
        let (results, _) = run_batch(Vec::<u8>::new(), 4, |_| (), |_, j| j);
        assert!(results.is_empty());
        let (results, metas) = run_batch(vec![1, 2], 16, |_| (), |_, j| j + 1);
        assert_eq!(results, vec![2, 3]);
        assert!(metas.len() <= 2);
    }

    #[test]
    fn scoped_workers_can_borrow_their_own_locals() {
        // The state (`&base`) borrows from the worker's own frame —
        // the pattern session workers rely on.
        let jobs: Vec<u32> = (0..50).collect();
        let sums = run_batch_scoped(jobs, 3, |_, source| {
            let base: u32 = 1000;
            let state = &base;
            let mut sum = 0u64;
            for (_, j) in source {
                sum += u64::from(*state + j);
            }
            sum
        });
        let total: u64 = sums.iter().sum();
        assert_eq!(total, (0..50u64).map(|j| 1000 + j).sum::<u64>());
    }

    #[test]
    fn stealing_rebalances_a_skewed_batch() {
        // One slow job up front; the rest drain via other workers
        // (exercised for coverage, not asserted on timing).
        let jobs: Vec<u64> = (0..64).collect();
        let (results, _) = run_batch(
            jobs,
            4,
            |_| (),
            |_, j| {
                if j == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                j
            },
        );
        assert_eq!(results, (0..64).collect::<Vec<_>>());
    }
}
