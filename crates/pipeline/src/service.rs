//! `implicitd` — a resident resolution/compile service.
//!
//! The warm [`Session`](crate::Session) machinery is batch-shaped:
//! build, drain a job list, exit. This module turns it into a
//! long-running daemon serving parse/typecheck/resolve/eval requests
//! over a localhost TCP socket, with:
//!
//! * **length-prefixed JSON framing** — a 4-byte big-endian length
//!   followed by one JSON document ([`read_frame`]/[`write_frame`]),
//!   hard-capped at [`MAX_FRAME`] with initial allocations clamped
//!   through [`implicit_core::wire::cap`] so a hostile length prefix
//!   cannot balloon memory before a single payload byte arrives;
//! * **multi-tenant named sessions** — one compiled prelude per
//!   tenant, loaded through the [`crate::artifact`] store ladder when
//!   a cache directory is configured; every request is a copy-on-write
//!   extension of the tenant's snapshot and rolls back afterwards
//!   (the same watermark discipline batch mode uses);
//! * **thread-per-tenant execution** — sessions are `Rc`-based and
//!   [`Session::trim`](crate::Session::trim) truncates the
//!   *thread-local* interning arena to the session's own watermark,
//!   so two sessions must never share a thread; each tenant owns a
//!   dedicated resident worker (spawned on the batch driver's deep
//!   stack, [`crate::driver::spawn_service_worker`]) and its requests
//!   serialize on that thread while distinct tenants run in parallel;
//! * **admission control** — each tenant fronts a bounded queue;
//!   when it is full the connection thread rejects the request with a
//!   structured `overloaded` error instead of queueing unboundedly;
//! * **per-request budgets** — an optional `deadline_ms` is stamped
//!   at admission and re-checked at dequeue (expired work is shed
//!   with `deadline_exceeded`, not run), and the opsem route takes an
//!   explicit fuel budget (`fuel_exhausted` on overrun);
//! * **a `metrics` request** — renders the merged per-tenant
//!   [`MetricsRegistry`] snapshots plus the daemon's own wire/admission
//!   counters.
//!
//! Request handling on tenant threads is wrapped in `catch_unwind`:
//! a panicking program produces a structured `internal_panic` error
//! and a [`Session::recover`](crate::Session::recover) rollback, never
//! a dead tenant. The protocol grammar and the request state machine
//! are documented in DESIGN.md §S32.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use implicit_core::parse::{parse_expr, parse_program, parse_rule_type};
use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_core::syntax::{Declarations, Expr, RuleType, Type};
use implicit_core::trace::MetricsRegistry;
use implicit_core::wire;

use crate::artifact::{artifact_key, config_key, load_or_build, ArtifactStore, LoadOutcome};
use crate::driver::spawn_service_worker;
use crate::{Backend, Prelude, Session};

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// A JSON value — the hand-rolled subset the conformance report
/// writer introduced (the build environment has no registry access),
/// now shared protocol-wide: the daemon wire format, the report, and
/// the bench artifact all speak it. `conformance::report` re-exports
/// this type.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (counters, lengths, budgets).
    Int(i64),
    /// A float, rendered with limited precision.
    Num(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object fields.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:.3}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (`Int` exactly, `Num` if integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(x) if x.fract() == 0.0 && x.is_finite() => Some(*x as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String field accessor: `get(key)` then `as_str`.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Integer field accessor: `get(key)` then `as_i64`.
    pub fn int_field(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Json::as_i64)
    }
}

/// Parses one JSON document (the renderer's grammar plus the standard
/// escapes and number forms it never emits), rejecting trailing
/// garbage.
///
/// # Errors
///
/// A human-readable description of the first syntax error, with its
/// byte offset.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = JsonParser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

/// Maximum JSON nesting depth the parser accepts — frames are capped
/// at [`MAX_FRAME`] anyway; this bounds recursion on adversarial
/// `[[[[…` payloads long before the stack does.
const MAX_JSON_DEPTH: usize = 512;

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_JSON_DEPTH {
            return Err(format!("nesting deeper than {MAX_JSON_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    fields.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number `{text}` at byte {start}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("invalid integer `{text}` at byte {start}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_owned());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "invalid \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_owned())?;
                            // The renderer only emits \u for control
                            // characters; accept any BMP scalar and
                            // map surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Hard cap on one frame's payload (1 MiB) — programs, preludes, and
/// metric dumps all fit with orders of magnitude to spare, and a
/// hostile length prefix is rejected before any payload allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// A framing failure while reading from the wire.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF on a frame boundary (the peer closed).
    Closed,
    /// The stream ended mid-header or mid-payload.
    Truncated,
    /// The declared length exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// Transport failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Truncated => f.write_str("truncated frame"),
            FrameError::Oversized(n) => write!(f, "oversized frame ({n} bytes > {MAX_FRAME})"),
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

/// Writes one length-prefixed frame (4-byte big-endian length, then
/// the payload) and flushes.
///
/// # Errors
///
/// Transport errors, or `InvalidInput` if the payload exceeds
/// [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("payload {} exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. The initial buffer reservation is
/// clamped through [`wire::cap`], so a lying length prefix cannot
/// pre-allocate more than 64 KiB — larger (honest) payloads grow the
/// buffer as bytes actually arrive.
///
/// # Errors
///
/// [`FrameError::Closed`] on EOF at a frame boundary,
/// [`FrameError::Truncated`] mid-frame, [`FrameError::Oversized`] for
/// a declared length beyond [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut hdr = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut hdr[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(hdr) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut buf = Vec::with_capacity(wire::cap(len));
    match r.take(len as u64).read_to_end(&mut buf) {
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return Err(FrameError::Truncated),
        Err(e) => return Err(FrameError::Io(e)),
    }
    if buf.len() < len {
        return Err(FrameError::Truncated);
    }
    Ok(buf)
}

// ---------------------------------------------------------------------------
// Configuration and counters
// ---------------------------------------------------------------------------

/// A thread-safe recipe for the declaration set tenants compile
/// against when their `open` request embeds none (declarations are
/// arena-interned and must be built on the tenant's own thread).
pub type DeclSource = Arc<dyn Fn() -> Declarations + Send + Sync>;

/// Daemon configuration. `Default` binds an ephemeral localhost port
/// with no artifact store and the paper resolution policy.
#[derive(Clone)]
pub struct DaemonConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Maximum simultaneously open tenants; `open` beyond this is
    /// rejected with `tenants_exhausted`.
    pub max_tenants: usize,
    /// Bounded per-tenant request queue depth; a full queue rejects
    /// with `overloaded` (admission control, not backpressure-by-
    /// blocking).
    pub queue_cap: usize,
    /// Artifact store directory for tenant preludes (the
    /// exact/incremental/cold load ladder); `None` builds cold.
    pub cache_dir: Option<PathBuf>,
    /// Resolution policy for every tenant.
    pub policy: ResolutionPolicy,
    /// Superinstruction fusion for tenant sessions.
    pub fusion: bool,
    /// Dictionary inline cache for tenant sessions.
    pub dict_ic: bool,
    /// Declarations for tenants whose prelude source declares none.
    pub decls: DeclSource,
    /// Accepts the fault-injection `poison` op (tests only): a
    /// deliberate tenant-thread panic proving the `catch_unwind`
    /// containment and rollback path.
    pub enable_poison: bool,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_tenants: 8,
            queue_cap: 64,
            cache_dir: None,
            policy: ResolutionPolicy::paper(),
            fusion: true,
            dict_ic: false,
            decls: Arc::new(Declarations::new),
            enable_poison: false,
        }
    }
}

/// Daemon-level counters (wire health, admission control, panics) —
/// the service-plane complement to the per-tenant
/// [`MetricsRegistry`] snapshots. All monotone.
#[derive(Debug, Default)]
pub struct DaemonCounters {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Well-framed requests received.
    pub requests: AtomicU64,
    /// Requests answered `ok`.
    pub ok: AtomicU64,
    /// Requests answered with a structured error.
    pub errors: AtomicU64,
    /// Requests shed by admission control (tenant queue full).
    pub rejected_overload: AtomicU64,
    /// Requests shed at dequeue because their deadline had passed.
    pub expired_deadline: AtomicU64,
    /// Frames rejected for a declared length beyond [`MAX_FRAME`].
    pub oversized_frames: AtomicU64,
    /// Frames that were truncated or held unparseable JSON.
    pub bad_frames: AtomicU64,
    /// Tenant-thread panics contained by `catch_unwind`.
    pub panics: AtomicU64,
    /// Tenants opened.
    pub tenants_opened: AtomicU64,
    /// Tenants closed.
    pub tenants_closed: AtomicU64,
}

impl DaemonCounters {
    /// `(name, value)` pairs in a stable report order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        vec![
            ("connections", g(&self.connections)),
            ("requests", g(&self.requests)),
            ("ok", g(&self.ok)),
            ("errors", g(&self.errors)),
            ("rejected_overload", g(&self.rejected_overload)),
            ("expired_deadline", g(&self.expired_deadline)),
            ("oversized_frames", g(&self.oversized_frames)),
            ("bad_frames", g(&self.bad_frames)),
            ("panics", g(&self.panics)),
            ("tenants_opened", g(&self.tenants_opened)),
            ("tenants_closed", g(&self.tenants_closed)),
        ]
    }
}

// ---------------------------------------------------------------------------
// Protocol plumbing
// ---------------------------------------------------------------------------

/// Builds an error response: `{"ok":false,"error":kind,"detail":…}`.
/// `kind` is the stable machine-readable class; `detail` is prose.
pub fn error_json(kind: &str, detail: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(kind.to_owned())),
        ("detail", Json::Str(detail.to_owned())),
    ])
}

/// Builds a success response: `{"ok":true, fields…}`.
fn ok_json(fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    Json::obj(all)
}

/// The prelude wire convention: the `open` request transmits a
/// prelude as ordinary program source in the `prelude.imp` shape —
/// optional declarations, then the [`Prelude::wrap`] sugar around the
/// unit literal. [`Prelude::from_wrapped`] recovers it on the tenant
/// thread.
pub fn prelude_source(p: &Prelude) -> String {
    p.wrap(Expr::Unit, Type::Unit).to_string()
}

/// Work shipped to a tenant thread.
enum TenantOp {
    /// Elaborate + preservation-check + evaluate on the tenant's
    /// backend; reply with value and type.
    Eval { src: String },
    /// Elaborate + preservation-check only; reply with the type.
    Typecheck { src: String },
    /// Runtime-resolution semantics under an explicit fuel budget.
    Opsem { src: String, fuel: u64 },
    /// Environment-level resolution; reply with steps + derivation.
    Resolve { query: String, depth: Option<usize> },
    /// Deliberate panic (fault-injection; gated by
    /// [`DaemonConfig::enable_poison`]).
    Poison,
}

struct TenantJob {
    op: TenantOp,
    /// Stamped at admission from the request's `deadline_ms`;
    /// re-checked at dequeue.
    deadline: Option<Instant>,
    reply: mpsc::Sender<Json>,
}

/// A connection thread's handle on a resident tenant.
struct TenantHandle {
    tx: SyncSender<TenantJob>,
    join: Option<JoinHandle<()>>,
}

/// Shared daemon state.
struct Inner {
    config: DaemonConfig,
    /// The bound address — the protocol `shutdown` op dials it once
    /// to pop the accept loop out of its blocking `accept`.
    addr: SocketAddr,
    counters: DaemonCounters,
    tenants: Mutex<HashMap<String, TenantHandle>>,
    /// Last-published metrics snapshot per tenant. Entries outlive
    /// their tenant (a closed tenant's counters stay visible), so the
    /// merged view is monotone across the daemon's lifetime.
    metrics: Mutex<HashMap<String, MetricsRegistry>>,
    shutdown: AtomicBool,
}

/// What a tenant thread serves: a full compile session (prelude
/// source) or a resolve-only implicit environment (rule-type frames,
/// the `wild_workload` shape, which carries no evidence terms).
enum TenantSpec {
    Prelude { source: String, backend: Backend },
    Frames { frames: Vec<Vec<String>> },
}

// ---------------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------------

/// A running daemon: an accept loop, one thread per connection, one
/// resident worker per tenant. Dropping the handle shuts it down.
pub struct Daemon {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds and starts serving.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            config,
            addr,
            counters: DaemonCounters::default(),
            tenants: Mutex::new(HashMap::new()),
            metrics: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });
        let accept_inner = inner.clone();
        let accept = std::thread::Builder::new()
            .name("implicitd-accept".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_inner.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Responses are written as header + payload;
                    // without NODELAY, Nagle holds the payload until
                    // the client's delayed ACK (~40 ms per request).
                    stream.set_nodelay(true).ok();
                    accept_inner
                        .counters
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    let conn_inner = accept_inner.clone();
                    // Parsing recurses per nesting level; wild-mode
                    // programs are deep enough to outgrow the 2 MiB
                    // default.
                    let _ = std::thread::Builder::new()
                        .name("implicitd-conn".to_owned())
                        .stack_size(16 << 20)
                        .spawn(move || serve_connection(stream, conn_inner));
                }
            })?;
        Ok(Daemon {
            addr,
            inner,
            accept: Some(accept),
        })
    }

    /// The bound socket address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon-plane counters.
    pub fn counters(&self) -> &DaemonCounters {
        &self.inner.counters
    }

    /// Blocks until the accept loop exits — i.e. until some client
    /// sends `{"op":"shutdown"}` (or [`Daemon::shutdown`] is called
    /// from another thread). The `implicitd` main thread parks here.
    pub fn wait(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting, closes every tenant (flushing artifacts), and
    /// joins the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        close_all_tenants(&self.inner);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drops every tenant's sender (ending its request loop) and joins
/// the worker threads; each tenant flushes its artifact on the way
/// out.
fn close_all_tenants(inner: &Inner) {
    let handles: Vec<TenantHandle> = inner
        .tenants
        .lock()
        .unwrap()
        .drain()
        .map(|(_, h)| h)
        .collect();
    for mut h in handles {
        let join = h.join.take();
        // Dropping the handle drops its sender, ending the tenant's
        // request loop once queued jobs drain.
        drop(h);
        if let Some(j) = join {
            let _ = j.join();
            inner
                .counters
                .tenants_closed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

fn serve_connection(mut stream: TcpStream, inner: Arc<Inner>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(FrameError::Closed) => return,
            Err(FrameError::Oversized(n)) => {
                inner
                    .counters
                    .oversized_frames
                    .fetch_add(1, Ordering::Relaxed);
                // Best-effort error reply; the stream is desynced
                // after an oversized header, so close either way.
                let resp = error_json("oversized_frame", &format!("{n} bytes > {MAX_FRAME}"));
                let _ = write_frame(&mut stream, resp.render().as_bytes());
                return;
            }
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => {
                inner.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let req = match std::str::from_utf8(&payload)
            .map_err(|e| e.to_string())
            .and_then(parse_json)
        {
            Ok(j) => j,
            Err(e) => {
                inner.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                let resp = error_json("bad_frame", &format!("unparseable request: {e}"));
                let _ = write_frame(&mut stream, resp.render().as_bytes());
                // A frame that framed correctly but held garbage
                // leaves the stream in sync; keep serving.
                continue;
            }
        };
        inner.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (resp, hangup) = dispatch(&req, &inner);
        let counter = if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            &inner.counters.ok
        } else {
            &inner.counters.errors
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if write_frame(&mut stream, resp.render().as_bytes()).is_err() {
            return;
        }
        if hangup {
            return;
        }
    }
}

/// Routes one request; returns the response and whether the
/// connection should close afterwards.
fn dispatch(req: &Json, inner: &Arc<Inner>) -> (Json, bool) {
    let Some(op) = req.str_field("op") else {
        return (error_json("bad_request", "missing `op`"), false);
    };
    if inner.shutdown.load(Ordering::Acquire) && op != "ping" {
        return (error_json("shutdown", "daemon is shutting down"), true);
    }
    match op {
        "ping" => (ok_json(vec![("pong", Json::Bool(true))]), false),
        "parse" => (handle_parse(req), false),
        "open" => (handle_open(req, inner), false),
        "close" => (handle_close(req, inner), false),
        "metrics" => (handle_metrics(inner), false),
        "shutdown" => {
            inner.shutdown.store(true, Ordering::Release);
            close_all_tenants(inner);
            // Pop the accept loop out of its blocking `accept` so it
            // observes the flag and exits.
            let _ = TcpStream::connect(inner.addr);
            (ok_json(vec![("stopped", Json::Bool(true))]), true)
        }
        "eval" | "typecheck" | "opsem" | "resolve" | "poison" => handle_tenant_op(op, req, inner),
        other => (
            error_json("bad_request", &format!("unknown op `{other}`")),
            false,
        ),
    }
}

/// `parse`: syntax-check a program on the connection thread (no
/// tenant state touched) and echo the pretty-printed form.
fn handle_parse(req: &Json) -> Json {
    let Some(src) = req.str_field("program") else {
        return error_json("bad_request", "parse: missing `program`");
    };
    match parse_program(src) {
        Ok((decls, expr)) => ok_json(vec![
            ("has_decls", Json::Bool(!decls.is_empty())),
            ("printed", Json::Str(expr.to_string())),
        ]),
        Err(e) => error_json("parse_error", &e.to_string()),
    }
}

fn handle_open(req: &Json, inner: &Arc<Inner>) -> Json {
    let Some(name) = req.str_field("tenant") else {
        return error_json("bad_request", "open: missing `tenant`");
    };
    let spec = if let Some(source) = req.str_field("prelude") {
        let backend = match req.str_field("backend") {
            None => Backend::Vm,
            Some(b) => match Backend::parse(b) {
                Some(b) => b,
                None => return error_json("bad_request", &format!("open: unknown backend `{b}`")),
            },
        };
        TenantSpec::Prelude {
            source: source.to_owned(),
            backend,
        }
    } else if let Some(frames) = req.get("frames").and_then(Json::as_arr) {
        let mut parsed = Vec::with_capacity(frames.len());
        for f in frames {
            let Some(rules) = f.as_arr() else {
                return error_json("bad_request", "open: `frames` must be arrays of rule types");
            };
            let mut frame = Vec::with_capacity(rules.len());
            for r in rules {
                match r.as_str() {
                    Some(s) => frame.push(s.to_owned()),
                    None => {
                        return error_json(
                            "bad_request",
                            "open: `frames` must be arrays of rule-type strings",
                        )
                    }
                }
            }
            parsed.push(frame);
        }
        TenantSpec::Frames { frames: parsed }
    } else {
        return error_json("bad_request", "open: need `prelude` or `frames`");
    };

    let (ready_tx, ready_rx) = mpsc::channel::<Result<String, String>>();
    {
        let mut tenants = inner.tenants.lock().unwrap();
        if tenants.contains_key(name) {
            return error_json("tenant_exists", &format!("tenant `{name}` is already open"));
        }
        if tenants.len() >= inner.config.max_tenants {
            return error_json(
                "tenants_exhausted",
                &format!("tenant capacity {} reached", inner.config.max_tenants),
            );
        }
        let (tx, rx) = mpsc::sync_channel::<TenantJob>(inner.config.queue_cap.max(1));
        let thread_inner = inner.clone();
        let thread_name = name.to_owned();
        let join = match spawn_service_worker(format!("tenant-{name}"), move || {
            tenant_main(thread_name, spec, thread_inner, rx, ready_tx)
        }) {
            Ok(j) => j,
            Err(e) => return error_json("internal", &format!("spawn tenant: {e}")),
        };
        tenants.insert(
            name.to_owned(),
            TenantHandle {
                tx,
                join: Some(join),
            },
        );
    }
    // Wait for the prelude build outside the lock: other tenants keep
    // serving while this one compiles (or loads from the store).
    match ready_rx.recv() {
        Ok(Ok(load)) => {
            inner
                .counters
                .tenants_opened
                .fetch_add(1, Ordering::Relaxed);
            ok_json(vec![
                ("tenant", Json::Str(name.to_owned())),
                ("load", Json::Str(load)),
            ])
        }
        // The failing tenant thread removed its own record before
        // reporting, so the name is immediately reusable.
        Ok(Err(detail)) => error_json("open_failed", &detail),
        Err(mpsc::RecvError) => {
            remove_tenant_record(inner, name);
            error_json("open_failed", "tenant thread died during build")
        }
    }
}

fn handle_close(req: &Json, inner: &Arc<Inner>) -> Json {
    let Some(name) = req.str_field("tenant") else {
        return error_json("bad_request", "close: missing `tenant`");
    };
    let handle = inner.tenants.lock().unwrap().remove(name);
    match handle {
        None => error_json("unknown_tenant", &format!("no tenant `{name}`")),
        Some(mut h) => {
            let join = h.join.take();
            // Dropping the sender ends the tenant's request loop after
            // the queued jobs drain; it flushes its artifact on exit.
            drop(h);
            if let Some(j) = join {
                let _ = j.join();
            }
            inner
                .counters
                .tenants_closed
                .fetch_add(1, Ordering::Relaxed);
            ok_json(vec![("closed", Json::Str(name.to_owned()))])
        }
    }
}

fn handle_metrics(inner: &Arc<Inner>) -> Json {
    let per_tenant = inner.metrics.lock().unwrap();
    let mut merged = MetricsRegistry::new();
    let mut tenants: Vec<(String, Json)> = Vec::new();
    let mut names: Vec<&String> = per_tenant.keys().collect();
    names.sort();
    for name in names {
        let m = &per_tenant[name];
        merged.merge(m);
        tenants.push((
            name.clone(),
            Json::Obj(
                m.as_pairs()
                    .into_iter()
                    .map(|(k, v)| (k.to_owned(), Json::Int(v as i64)))
                    .collect(),
            ),
        ));
    }
    ok_json(vec![
        (
            "daemon",
            Json::Obj(
                inner
                    .counters
                    .snapshot()
                    .into_iter()
                    .map(|(k, v)| (k.to_owned(), Json::Int(v as i64)))
                    .collect(),
            ),
        ),
        (
            "merged",
            Json::Obj(
                merged
                    .as_pairs()
                    .into_iter()
                    .map(|(k, v)| (k.to_owned(), Json::Int(v as i64)))
                    .collect(),
            ),
        ),
        ("tenants", Json::Obj(tenants)),
        ("table", Json::Str(merged.render_table())),
    ])
}

/// Admits a tenant-bound request: builds the job, `try_send`s it into
/// the tenant's bounded queue, and waits for the reply.
fn handle_tenant_op(op: &str, req: &Json, inner: &Arc<Inner>) -> (Json, bool) {
    let Some(name) = req.str_field("tenant") else {
        return (
            error_json("bad_request", &format!("{op}: missing `tenant`")),
            false,
        );
    };
    let tenant_op = match build_tenant_op(op, req, inner) {
        Ok(t) => t,
        Err(resp) => return (resp, false),
    };
    let deadline = req
        .int_field("deadline_ms")
        .map(|ms| Instant::now() + std::time::Duration::from_millis(ms.max(0) as u64));
    let (reply_tx, reply_rx) = mpsc::channel::<Json>();
    let job = TenantJob {
        op: tenant_op,
        deadline,
        reply: reply_tx,
    };
    {
        let tenants = inner.tenants.lock().unwrap();
        let Some(handle) = tenants.get(name) else {
            return (
                error_json("unknown_tenant", &format!("no tenant `{name}`")),
                false,
            );
        };
        match handle.tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                inner
                    .counters
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                return (
                    error_json(
                        "overloaded",
                        &format!("tenant `{name}` queue is full; retry later"),
                    ),
                    false,
                );
            }
            Err(TrySendError::Disconnected(_)) => {
                return (
                    error_json("unknown_tenant", &format!("tenant `{name}` is gone")),
                    false,
                );
            }
        }
    }
    match reply_rx.recv() {
        Ok(resp) => (resp, false),
        // The tenant died mid-request (e.g. its thread was closed
        // under us); structured error rather than a hang.
        Err(mpsc::RecvError) => (
            error_json(
                "tenant_lost",
                &format!("tenant `{name}` dropped the request"),
            ),
            false,
        ),
    }
}

/// Parses the tenant-bound operation out of the request (connection
/// thread: strings only — expressions intern on the tenant's arena).
fn build_tenant_op(op: &str, req: &Json, inner: &Arc<Inner>) -> Result<TenantOp, Json> {
    match op {
        "eval" | "typecheck" | "opsem" => {
            let Some(src) = req.str_field("program") else {
                return Err(error_json(
                    "bad_request",
                    &format!("{op}: missing `program`"),
                ));
            };
            Ok(match op {
                "eval" => TenantOp::Eval {
                    src: src.to_owned(),
                },
                "typecheck" => TenantOp::Typecheck {
                    src: src.to_owned(),
                },
                _ => TenantOp::Opsem {
                    src: src.to_owned(),
                    fuel: req
                        .int_field("fuel")
                        .map(|f| f.max(0) as u64)
                        .unwrap_or(implicit_opsem::DEFAULT_FUEL),
                },
            })
        }
        "resolve" => {
            let Some(query) = req.str_field("query") else {
                return Err(error_json("bad_request", "resolve: missing `query`"));
            };
            Ok(TenantOp::Resolve {
                query: query.to_owned(),
                depth: req.int_field("depth").map(|d| d.max(0) as usize),
            })
        }
        "poison" => {
            if inner.config.enable_poison {
                Ok(TenantOp::Poison)
            } else {
                Err(error_json("bad_request", "poison: not enabled"))
            }
        }
        _ => unreachable!("routed ops only"),
    }
}

// ---------------------------------------------------------------------------
// Tenant threads
// ---------------------------------------------------------------------------

/// Tenant worker entry point: builds the tenant state on this
/// thread's own (deep) stack, reports readiness, then serves jobs
/// until every sender is dropped. The declarations are a local so the
/// session may borrow them — the same self-contained-frame pattern
/// the batch driver's workers use.
fn tenant_main(
    name: String,
    spec: TenantSpec,
    inner: Arc<Inner>,
    rx: Receiver<TenantJob>,
    ready: mpsc::Sender<Result<String, String>>,
) {
    match spec {
        TenantSpec::Frames { frames } => {
            tenant_frames_main(name, frames, inner, rx, ready);
        }
        TenantSpec::Prelude { source, backend } => {
            tenant_prelude_main(name, source, backend, inner, rx, ready);
        }
    }
    // Whatever happens, never leave an un-notified opener hanging.
}

/// Resolve-only tenant: an [`implicit_core::env::ImplicitEnv`] built
/// from rule-type frames (the `wild_workload` shape), no evidence, no
/// evaluator.
fn tenant_frames_main(
    name: String,
    frames: Vec<Vec<String>>,
    inner: Arc<Inner>,
    rx: Receiver<TenantJob>,
    ready: mpsc::Sender<Result<String, String>>,
) {
    let mut env = implicit_core::env::ImplicitEnv::new();
    for frame in &frames {
        let mut rules: Vec<RuleType> = Vec::with_capacity(frame.len());
        for src in frame {
            match parse_rule_type(src) {
                Ok(r) => rules.push(r),
                Err(e) => {
                    let _ = ready.send(Err(format!("frame rule `{src}`: {e}")));
                    remove_tenant_record(&inner, &name);
                    return;
                }
            }
        }
        env.push(rules);
    }
    let _ = ready.send(Ok("frames".to_owned()));
    let policy = inner.config.policy.clone();
    let mut metrics = MetricsRegistry::new();
    while let Ok(job) = rx.recv() {
        if expired(&job, &inner) {
            continue;
        }
        let resp = match job.op {
            TenantOp::Resolve { query, depth } => {
                resolve_op(&env, &policy, &query, depth, &mut metrics)
            }
            TenantOp::Poison => {
                inner.counters.panics.fetch_add(1, Ordering::Relaxed);
                error_json("internal_panic", "tenant request panicked (contained)")
            }
            _ => error_json(
                "unsupported",
                "resolve-only tenant (opened with `frames`); use `resolve`",
            ),
        };
        metrics.set_cache_counters(env.cache_counters());
        publish_metrics(&inner, &name, &metrics);
        let _ = job.reply.send(resp);
    }
}

/// Full compile tenant: a warm [`Session`] over the transmitted
/// prelude, loaded through the artifact-store ladder when one is
/// configured, re-saved on close.
fn tenant_prelude_main(
    name: String,
    source: String,
    backend: Backend,
    inner: Arc<Inner>,
    rx: Receiver<TenantJob>,
    ready: mpsc::Sender<Result<String, String>>,
) {
    // Parse on this thread: declarations and prelude types intern on
    // the tenant's own arena.
    let (parsed_decls, wrapped) = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            let _ = ready.send(Err(format!("prelude: {e}")));
            remove_tenant_record(&inner, &name);
            return;
        }
    };
    let prelude = match Prelude::from_wrapped(&wrapped) {
        Ok(p) => p,
        Err(e) => {
            let _ = ready.send(Err(e));
            remove_tenant_record(&inner, &name);
            return;
        }
    };
    let decls = if parsed_decls.is_empty() {
        (inner.config.decls)()
    } else {
        parsed_decls
    };
    let policy = inner.config.policy.clone();
    let isa = backend.isa().unwrap_or_default();
    let store = inner
        .config
        .cache_dir
        .as_ref()
        .and_then(|d| ArtifactStore::new(d).ok());
    let built = match &store {
        Some(store) => load_or_build(
            store,
            &decls,
            &policy,
            &prelude,
            inner.config.fusion,
            inner.config.dict_ic,
            isa,
        ),
        None => Session::new_configured_isa(
            &decls,
            policy.clone(),
            &prelude,
            inner.config.fusion,
            inner.config.dict_ic,
            isa,
        )
        .map(|s| (s, LoadOutcome::Cold)),
    };
    let (mut session, outcome) = match built {
        Ok(b) => b,
        Err(e) => {
            let _ = ready.send(Err(e.to_string()));
            remove_tenant_record(&inner, &name);
            return;
        }
    };
    let load = match outcome {
        LoadOutcome::Exact => "exact",
        LoadOutcome::Incremental(_) => "incremental",
        LoadOutcome::Cold => "cold",
    };
    let _ = ready.send(Ok(load.to_owned()));
    publish_metrics(&inner, &name, &session.metrics());

    while let Ok(job) = rx.recv() {
        if expired(&job, &inner) {
            continue;
        }
        let op = job.op;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_session_op(&mut session, backend, &inner.config.policy, op)
        }));
        let resp = match outcome {
            Ok(resp) => resp,
            Err(_) => {
                inner.counters.panics.fetch_add(1, Ordering::Relaxed);
                // A panic may have skipped the per-run rollback; put
                // the session back on its prelude watermarks before
                // the next request.
                session.recover();
                error_json("internal_panic", "tenant request panicked (contained)")
            }
        };
        publish_metrics(&inner, &name, &session.metrics());
        let _ = job.reply.send(resp);
    }

    // Channel closed (tenant `close`, or daemon shutdown): flush the
    // warmed session back to the shared store so the next open — in
    // this process or the next — gets an exact hit.
    if let Some(store) = &store {
        let key = artifact_key(
            &decls,
            &prelude,
            &policy,
            inner.config.fusion,
            inner.config.dict_ic,
            isa,
        );
        let config = config_key(
            &decls,
            &policy,
            inner.config.fusion,
            inner.config.dict_ic,
            isa,
        );
        let _ = store.save(key, config, &session.to_artifact());
    }
    publish_metrics(&inner, &name, &session.metrics());
}

/// Deadline check at dequeue: replies `deadline_exceeded` and counts
/// the shed without running the job.
fn expired(job: &TenantJob, inner: &Inner) -> bool {
    if let Some(d) = job.deadline {
        if Instant::now() > d {
            inner
                .counters
                .expired_deadline
                .fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(error_json(
                "deadline_exceeded",
                "request deadline passed before execution",
            ));
            return true;
        }
    }
    false
}

/// Runs one op against the tenant session. Every route rolls back to
/// the prelude watermarks (inside the `Session` entry points), so
/// failures cannot leak state into the next request.
fn run_session_op(
    session: &mut Session<'_>,
    backend: Backend,
    policy: &ResolutionPolicy,
    op: TenantOp,
) -> Json {
    match op {
        TenantOp::Eval { src } => match parse_expr(&src) {
            Err(e) => error_json("parse_error", &e.to_string()),
            Ok(e) => match session.run_with_backend(&e, backend) {
                Ok(out) => ok_json(vec![
                    ("value", Json::Str(out.value.to_string())),
                    ("type", Json::Str(out.source_type.to_string())),
                ]),
                Err(e) => run_error_json(&e),
            },
        },
        TenantOp::Typecheck { src } => match parse_expr(&src) {
            Err(e) => error_json("parse_error", &e.to_string()),
            Ok(e) => match session.typecheck(&e) {
                Ok(ty) => ok_json(vec![("type", Json::Str(ty.to_string()))]),
                Err(e) => run_error_json(&e),
            },
        },
        TenantOp::Opsem { src, fuel } => match parse_expr(&src) {
            Err(e) => error_json("parse_error", &e.to_string()),
            Ok(e) => match session.run_opsem_with_fuel(&e, fuel) {
                Ok(v) => ok_json(vec![("value", Json::Str(v.to_string()))]),
                Err(implicit_opsem::OpsemError::OutOfFuel) => error_json(
                    "fuel_exhausted",
                    &format!("opsem budget of {fuel} steps exhausted"),
                ),
                Err(e) => error_json("opsem_error", &e.to_string()),
            },
        },
        TenantOp::Resolve { query, depth } => {
            let mut metrics = MetricsRegistry::new();
            let resp = resolve_op(session.env(), policy, &query, depth, &mut metrics);
            session.fold_metrics(&metrics);
            resp
        }
        TenantOp::Poison => panic!("poisoned request (fault injection)"),
    }
}

/// Environment-level resolution shared by both tenant kinds.
fn resolve_op(
    env: &implicit_core::env::ImplicitEnv,
    policy: &ResolutionPolicy,
    query: &str,
    depth: Option<usize>,
    metrics: &mut MetricsRegistry,
) -> Json {
    let q = match parse_rule_type(query) {
        Ok(q) => q,
        Err(e) => return error_json("parse_error", &e.to_string()),
    };
    let policy = match depth {
        Some(d) => policy.clone().with_max_depth(d),
        None => policy.clone(),
    };
    metrics.queries += 1;
    match resolve(env, &q, &policy) {
        Ok(res) => {
            metrics.queries_resolved += 1;
            ok_json(vec![
                ("steps", Json::Int(res.steps() as i64)),
                ("derivation", Json::Str(res.explain())),
            ])
        }
        Err(e) => {
            metrics.queries_failed += 1;
            error_json("unresolved", &e.to_string())
        }
    }
}

/// Maps a pipeline [`crate::RunError`]-shaped failure to its stable
/// protocol error class.
fn run_error_json(e: &implicit_elab::RunError) -> Json {
    use implicit_elab::RunError;
    let kind = match e {
        RunError::Elab(_) => "elab_error",
        RunError::PreservationViolated(_) => "preservation_violated",
        RunError::Eval(_) => "eval_error",
    };
    error_json(kind, &e.to_string())
}

/// Publishes the tenant's metrics snapshot (replacing its previous
/// one — each snapshot is cumulative, so the map stays monotone).
fn publish_metrics(inner: &Inner, name: &str, m: &MetricsRegistry) {
    inner.metrics.lock().unwrap().insert(name.to_owned(), *m);
}

/// Drops the tenants-map record of a tenant whose build failed, so
/// the name can be reused. Runs on the failing tenant's own thread;
/// the opener joins the handle it removed (never this thread's own
/// entry, which it already took).
fn remove_tenant_record(inner: &Inner, name: &str) {
    let mut tenants = inner.tenants.lock().unwrap();
    if let Some(mut h) = tenants.remove(name) {
        // Joining self would deadlock; the handle is dropped instead
        // (the thread is exiting anyway).
        h.join.take();
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking protocol client: one framed request, one framed
/// response. Used by `implicitc --connect`, the conformance daemon
/// leg, and the bench/fault/soak suites.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Transport or framing failures, or an unparseable response —
    /// all rendered as strings (protocol-level errors come back as
    /// `ok:false` responses, not `Err`).
    pub fn request(&mut self, req: &Json) -> Result<Json, String> {
        write_frame(&mut self.stream, req.render().as_bytes()).map_err(|e| e.to_string())?;
        let payload = read_frame(&mut self.stream).map_err(|e| e.to_string())?;
        let text = std::str::from_utf8(&payload).map_err(|e| e.to_string())?;
        parse_json(text)
    }

    /// `ping` round trip.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn ping(&mut self) -> Result<bool, String> {
        let r = self.request(&Json::obj(vec![("op", Json::Str("ping".into()))]))?;
        Ok(r.get("pong").and_then(Json::as_bool) == Some(true))
    }

    /// Opens a compile tenant over prelude source; returns the load
    /// outcome (`exact` / `incremental` / `cold`).
    ///
    /// # Errors
    ///
    /// Transport failures or an `ok:false` response.
    pub fn open_prelude(
        &mut self,
        tenant: &str,
        prelude: &str,
        backend: Backend,
    ) -> Result<String, String> {
        let r = self.request(&Json::obj(vec![
            ("op", Json::Str("open".into())),
            ("tenant", Json::Str(tenant.into())),
            ("prelude", Json::Str(prelude.into())),
            ("backend", Json::Str(backend.to_string())),
        ]))?;
        expect_ok(&r)?;
        Ok(r.str_field("load").unwrap_or("unknown").to_owned())
    }

    /// Opens a resolve-only tenant over rule-type frames.
    ///
    /// # Errors
    ///
    /// Transport failures or an `ok:false` response.
    pub fn open_frames(&mut self, tenant: &str, frames: &[Vec<String>]) -> Result<(), String> {
        let frames = Json::Arr(
            frames
                .iter()
                .map(|f| Json::Arr(f.iter().map(|r| Json::Str(r.clone())).collect()))
                .collect(),
        );
        let r = self.request(&Json::obj(vec![
            ("op", Json::Str("open".into())),
            ("tenant", Json::Str(tenant.into())),
            ("frames", frames),
        ]))?;
        expect_ok(&r)
    }

    /// Evaluates program source on a tenant; returns `(value, type)`.
    ///
    /// # Errors
    ///
    /// Transport failures or an `ok:false` response (rendered
    /// `kind: detail`).
    pub fn eval(&mut self, tenant: &str, program: &str) -> Result<(String, String), String> {
        let r = self.request(&Json::obj(vec![
            ("op", Json::Str("eval".into())),
            ("tenant", Json::Str(tenant.into())),
            ("program", Json::Str(program.into())),
        ]))?;
        expect_ok(&r)?;
        Ok((
            r.str_field("value").unwrap_or_default().to_owned(),
            r.str_field("type").unwrap_or_default().to_owned(),
        ))
    }

    /// Typechecks program source on a tenant; returns the type.
    ///
    /// # Errors
    ///
    /// Transport failures or an `ok:false` response.
    pub fn typecheck(&mut self, tenant: &str, program: &str) -> Result<String, String> {
        let r = self.request(&Json::obj(vec![
            ("op", Json::Str("typecheck".into())),
            ("tenant", Json::Str(tenant.into())),
            ("program", Json::Str(program.into())),
        ]))?;
        expect_ok(&r)?;
        Ok(r.str_field("type").unwrap_or_default().to_owned())
    }

    /// Resolves a rule-type query on a tenant; returns
    /// `(steps, derivation)`.
    ///
    /// # Errors
    ///
    /// Transport failures or an `ok:false` response.
    pub fn resolve(&mut self, tenant: &str, query: &str) -> Result<(i64, String), String> {
        let r = self.request(&Json::obj(vec![
            ("op", Json::Str("resolve".into())),
            ("tenant", Json::Str(tenant.into())),
            ("query", Json::Str(query.into())),
        ]))?;
        expect_ok(&r)?;
        Ok((
            r.int_field("steps").unwrap_or(0),
            r.str_field("derivation").unwrap_or_default().to_owned(),
        ))
    }

    /// Fetches the daemon metrics document.
    ///
    /// # Errors
    ///
    /// Transport failures or an `ok:false` response.
    pub fn metrics(&mut self) -> Result<Json, String> {
        let r = self.request(&Json::obj(vec![("op", Json::Str("metrics".into()))]))?;
        expect_ok(&r)?;
        Ok(r)
    }

    /// Closes a tenant (flushes its artifact).
    ///
    /// # Errors
    ///
    /// Transport failures or an `ok:false` response.
    pub fn close(&mut self, tenant: &str) -> Result<(), String> {
        let r = self.request(&Json::obj(vec![
            ("op", Json::Str("close".into())),
            ("tenant", Json::Str(tenant.into())),
        ]))?;
        expect_ok(&r)
    }

    /// Asks the daemon to shut down.
    ///
    /// # Errors
    ///
    /// Transport failures or an `ok:false` response.
    pub fn shutdown(&mut self) -> Result<(), String> {
        let r = self.request(&Json::obj(vec![("op", Json::Str("shutdown".into()))]))?;
        expect_ok(&r)
    }

    /// The raw stream (fault-injection tests write broken frames).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// Turns an `ok:false` response into `Err("kind: detail")`.
fn expect_ok(r: &Json) -> Result<(), String> {
    if r.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok(())
    } else {
        Err(format!(
            "{}: {}",
            r.str_field("error").unwrap_or("unknown_error"),
            r.str_field("detail").unwrap_or("")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parses_what_it_renders() {
        let j = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd\u{1}".into())),
            ("n", Json::Int(-3)),
            ("x", Json::Num(1.5)),
            ("b", Json::Bool(true)),
            ("z", Json::Null),
            ("a", Json::Arr(vec![Json::Int(1), Json::Str("two".into())])),
            ("o", Json::obj(vec![("k", Json::Int(9))])),
        ]);
        let round = parse_json(&j.render()).expect("roundtrip parse");
        assert_eq!(round.render(), j.render());
        assert_eq!(round.str_field("s"), Some("a\"b\\c\nd\u{1}"));
        assert_eq!(round.int_field("n"), Some(-3));
        assert_eq!(round.get("x").and_then(Json::as_i64), None);
        assert_eq!(round.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(round.get("o").and_then(|o| o.int_field("k")), Some(9));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"k\":}",
            "01x",
            "nulll x",
            "[1] 2",
            "{\"k\" 1}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb: bounded error, not a stack overflow.
        let bomb = "[".repeat(100_000);
        assert!(parse_json(&bomb).is_err());
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));

        // Oversized declared length: rejected before allocation.
        let mut big = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        big.extend_from_slice(b"xx");
        let mut r = &big[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Oversized(_))));

        // Truncated payload.
        let mut trunc = 10u32.to_be_bytes().to_vec();
        trunc.extend_from_slice(b"abc");
        let mut r = &trunc[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));

        // A lying-but-in-range length never pre-allocates more than
        // the wire cap.
        assert!(wire::cap(MAX_FRAME) <= 1 << 16);
    }

    #[test]
    fn prelude_source_roundtrips_the_chain() {
        let p = Prelude::chain(6);
        let src = prelude_source(&p);
        let (decls, wrapped) = parse_program(&src).expect("prelude source parses");
        assert!(decls.is_empty());
        let q = Prelude::from_wrapped(&wrapped).expect("wrapped form deconstructs");
        assert_eq!(q.implicits.len(), p.implicits.len());
        assert_eq!(q.lets.len(), 0);
        // And the re-wrapped source is stable.
        assert_eq!(prelude_source(&q), src);
    }

    #[test]
    fn daemon_loopback_serves_all_ops() {
        let dir = std::env::temp_dir().join(format!(
            "implicitd-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut daemon = Daemon::start(DaemonConfig {
            cache_dir: Some(dir.clone()),
            ..DaemonConfig::default()
        })
        .expect("daemon starts");
        let mut c = Client::connect(daemon.addr()).expect("client connects");
        assert!(c.ping().unwrap());

        let prelude = prelude_source(&Prelude::chain(2));
        let load = c.open_prelude("t", &prelude, Backend::Vm).unwrap();
        assert_eq!(load, "cold");

        // Warm eval resolves against the chain prelude.
        let (value, ty) = c.eval("t", "?(Int * Int)").unwrap();
        assert_eq!(value, "(0, 1)");
        assert_eq!(ty, "Int * Int");

        let ty = c.typecheck("t", "\\x: Int. x").unwrap();
        assert_eq!(ty, "Int -> Int");

        let (steps, derivation) = c.resolve("t", "(Int * Int) * Int").unwrap();
        assert!(steps >= 1, "derivation has steps, got {steps}");
        assert!(!derivation.is_empty());

        // Structured error, not a dropped connection.
        let err = c.eval("t", "definitely not a program ((").unwrap_err();
        assert!(err.starts_with("parse_error"), "got {err}");
        let err = c.eval("t", "?([Int])").unwrap_err();
        assert!(err.starts_with("elab_error"), "got {err}");

        // Metrics render and carry the tenant.
        let m = c.metrics().unwrap();
        assert!(m.get("tenants").and_then(|t| t.get("t")).is_some());
        assert!(
            m.get("daemon")
                .and_then(|d| d.int_field("requests"))
                .unwrap_or(0)
                > 0
        );

        // Close flushes the artifact; re-open is an exact hit.
        c.close("t").unwrap();
        let load = c.open_prelude("t", &prelude, Backend::Vm).unwrap();
        assert_eq!(load, "exact");
        c.close("t").unwrap();

        c.shutdown().unwrap();
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frames_tenant_resolves_wild_style_rules() {
        let mut daemon = Daemon::start(DaemonConfig::default()).expect("daemon starts");
        let mut c = Client::connect(daemon.addr()).expect("client connects");
        c.open_frames(
            "w",
            &[vec!["Int".to_owned(), "forall a. {a} => [a]".to_owned()]],
        )
        .unwrap();
        let (steps, _) = c.resolve("w", "[Int]").unwrap();
        assert_eq!(steps, 2, "rule + base premise");
        let err = c.resolve("w", "Bool").unwrap_err();
        assert!(err.starts_with("unresolved"), "got {err}");
        // Non-resolve ops are rejected with a structured error.
        let err = c.eval("w", "unit").unwrap_err();
        assert!(err.starts_with("unsupported"), "got {err}");
        c.close("w").unwrap();
        daemon.shutdown();
    }
}
