//! Fault injection against a live `implicitd` daemon: malformed and
//! truncated frames, oversized payload declarations, mid-request
//! disconnects, fuel/deadline exhaustion, and a poisoned (panicking)
//! request. Every fault must come back as a structured error (or a
//! clean hangup) — never a daemon crash — and must leave no state
//! behind: the same tenant answers the same query identically before
//! and after every fault, pinned by derivation and metrics checks.

use std::io::Write;
use std::net::TcpStream;

use implicit_pipeline::service::{
    error_json, prelude_source, Client, Daemon, DaemonConfig, Json, MAX_FRAME,
};
use implicit_pipeline::Backend;
use implicit_pipeline::Prelude;

fn daemon(poison: bool) -> Daemon {
    Daemon::start(DaemonConfig {
        enable_poison: poison,
        ..DaemonConfig::default()
    })
    .expect("daemon binds an ephemeral port")
}

fn open_chain(client: &mut Client, tenant: &str) {
    let load = client
        .open_prelude(tenant, &prelude_source(&Prelude::chain(3)), Backend::Vm)
        .expect("tenant opens");
    assert_eq!(load, "cold");
}

/// The canonical probe: resolves through the chain prelude, returning
/// `(value, type)` — identical before and after every fault.
fn probe(client: &mut Client, tenant: &str) -> (String, String) {
    client
        .eval(tenant, "?(Int * Int)")
        .expect("probe query resolves on a healthy tenant")
}

/// Reads one daemon counter via the metrics document.
fn counter(client: &mut Client, name: &str) -> i64 {
    let m = client.metrics().expect("metrics");
    m.get("daemon")
        .and_then(|d| d.int_field(name))
        .unwrap_or_else(|| panic!("counter `{name}` missing from {}", m.render()))
}

/// The tenant's resolution derivation — structural rollback witness.
fn derivation(client: &mut Client, tenant: &str) -> String {
    let (steps, derivation) = client
        .resolve(tenant, "Int * Int")
        .expect("probe resolution succeeds");
    assert!(steps >= 1);
    derivation
}

#[test]
fn malformed_json_gets_a_structured_error_and_the_stream_stays_usable() {
    let d = daemon(false);
    let mut c = Client::connect(d.addr()).unwrap();
    open_chain(&mut c, "t");
    let before = probe(&mut c, "t");

    // A well-formed frame carrying garbage: the daemon replies
    // `bad_frame` and keeps the connection (framing is still in
    // sync).
    let garbage = b"this is not json {{{";
    let mut frame = (garbage.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(garbage);
    c.stream().write_all(&frame).unwrap();
    let resp = read_response(c.stream());
    assert_eq!(
        resp.str_field("error"),
        Some("bad_frame"),
        "{}",
        resp.render()
    );

    // Same connection, next request: unaffected.
    assert_eq!(probe(&mut c, "t"), before);

    // Valid JSON that is not an object is also a bad frame, not a
    // panic.
    let payload = b"[1,2,3]";
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    c.stream().write_all(&frame).unwrap();
    let resp = read_response(c.stream());
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(probe(&mut c, "t"), before);

    // An unknown op on a valid object is a structured bad_request.
    let r = c
        .request(&Json::obj(vec![("op", Json::Str("frobnicate".into()))]))
        .unwrap();
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(probe(&mut c, "t"), before);
    // Only the unparseable frame counts as a bad frame; the JSON
    // array and the unknown op are protocol-level bad_requests.
    assert!(counter(&mut c, "bad_frames") >= 1);
}

/// Reads one length-prefixed response off a raw stream.
fn read_response(stream: &mut TcpStream) -> Json {
    use std::io::Read;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("response header");
    let len = u32::from_be_bytes(len) as usize;
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf).expect("response payload");
    implicit_pipeline::service::parse_json(std::str::from_utf8(&buf).unwrap()).unwrap()
}

#[test]
fn truncated_frames_close_the_connection_but_not_the_daemon() {
    let d = daemon(false);
    let mut warm = Client::connect(d.addr()).unwrap();
    open_chain(&mut warm, "t");
    let before = probe(&mut warm, "t");

    // Half a header, then hang up.
    let mut s = TcpStream::connect(d.addr()).unwrap();
    s.write_all(&[0x00, 0x00]).unwrap();
    drop(s);

    // A full header promising more payload than ever arrives.
    let mut s = TcpStream::connect(d.addr()).unwrap();
    s.write_all(&1000u32.to_be_bytes()).unwrap();
    s.write_all(b"only a few bytes").unwrap();
    drop(s);

    // The resident tenant is untouched and the daemon still accepts.
    assert_eq!(probe(&mut warm, "t"), before);
    let mut fresh = Client::connect(d.addr()).unwrap();
    assert!(fresh.ping().unwrap());
    assert!(counter(&mut warm, "bad_frames") >= 1);
}

#[test]
fn oversized_frame_declarations_are_rejected_before_allocation() {
    let d = daemon(false);
    let mut warm = Client::connect(d.addr()).unwrap();
    open_chain(&mut warm, "t");
    let before = probe(&mut warm, "t");

    // Declare a frame far beyond MAX_FRAME (and beyond any sane
    // allocation): the daemon must reply `oversized_frame` without
    // ever allocating the declared length — `wire::cap` bounds the
    // pre-allocation and the oversize check fires before the body is
    // read at all.
    for declared in [(MAX_FRAME + 1) as u32, u32::MAX] {
        let mut s = TcpStream::connect(d.addr()).unwrap();
        s.write_all(&declared.to_be_bytes()).unwrap();
        // Best-effort error frame before close; the daemon cannot
        // resync after an oversized header, so the stream ends here.
        let resp = read_response(&mut s);
        assert_eq!(
            resp.str_field("error"),
            Some("oversized_frame"),
            "declared {declared}: {}",
            resp.render()
        );
    }
    assert_eq!(probe(&mut warm, "t"), before);
    assert!(counter(&mut warm, "oversized_frames") >= 2);

    // Client-side symmetry: `write_frame` refuses to send oversized
    // payloads instead of letting the daemon reject them.
    let huge = "x".repeat(MAX_FRAME + 1);
    let mut sink = Vec::new();
    let err = implicit_pipeline::service::write_frame(&mut sink, huge.as_bytes());
    assert!(err.is_err());
    assert!(sink.is_empty(), "oversized frame partially written");
}

#[test]
fn mid_request_disconnect_leaves_the_tenant_serving() {
    let d = daemon(false);
    let mut warm = Client::connect(d.addr()).unwrap();
    open_chain(&mut warm, "t");
    let before = probe(&mut warm, "t");
    let derivation_before = derivation(&mut warm, "t");

    // Send a valid request on its own connection, then vanish before
    // reading the reply. The tenant still runs the job; the write of
    // the response fails harmlessly.
    for _ in 0..4 {
        let mut s = TcpStream::connect(d.addr()).unwrap();
        let req = Json::obj(vec![
            ("op", Json::Str("eval".into())),
            ("tenant", Json::Str("t".into())),
            ("program", Json::Str("?(Int * Int)".into())),
        ])
        .render();
        let mut frame = (req.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(req.as_bytes());
        s.write_all(&frame).unwrap();
        drop(s);
    }

    // State pinned: same value, same derivation, daemon alive.
    assert_eq!(probe(&mut warm, "t"), before);
    assert_eq!(derivation(&mut warm, "t"), derivation_before);
}

#[test]
fn fuel_and_deadline_budgets_come_back_as_structured_errors() {
    let d = daemon(false);
    let mut c = Client::connect(d.addr()).unwrap();
    open_chain(&mut c, "t");
    let before = probe(&mut c, "t");

    // Opsem with a 1-step budget on a query that needs real work.
    let r = c
        .request(&Json::obj(vec![
            ("op", Json::Str("opsem".into())),
            ("tenant", Json::Str("t".into())),
            ("program", Json::Str("?(Int * Int)".into())),
            ("fuel", Json::Int(1)),
        ]))
        .unwrap();
    assert_eq!(
        r.str_field("error"),
        Some("fuel_exhausted"),
        "{}",
        r.render()
    );

    // The same program under the default budget succeeds — the
    // exhausted attempt left no residue.
    let r = c
        .request(&Json::obj(vec![
            ("op", Json::Str("opsem".into())),
            ("tenant", Json::Str("t".into())),
            ("program", Json::Str("?(Int * Int)".into())),
        ]))
        .unwrap();
    assert_eq!(
        r.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        r.render()
    );

    // A zero deadline expires at dequeue: the job is shed, not run.
    let r = c
        .request(&Json::obj(vec![
            ("op", Json::Str("eval".into())),
            ("tenant", Json::Str("t".into())),
            ("program", Json::Str("?(Int * Int)".into())),
            ("deadline_ms", Json::Int(0)),
        ]))
        .unwrap();
    assert_eq!(
        r.str_field("error"),
        Some("deadline_exceeded"),
        "{}",
        r.render()
    );
    assert!(counter(&mut c, "expired_deadline") >= 1);
    assert_eq!(probe(&mut c, "t"), before);
}

#[test]
fn poisoned_request_is_contained_and_rolls_back() {
    let d = daemon(true);
    let mut c = Client::connect(d.addr()).unwrap();
    open_chain(&mut c, "t");
    let before = probe(&mut c, "t");
    let derivation_before = derivation(&mut c, "t");
    let requests_before = counter(&mut c, "requests");

    // The poison op panics inside the tenant thread mid-request; the
    // daemon catches it, counts it, rolls the session back, and keeps
    // the tenant.
    let r = c
        .request(&Json::obj(vec![
            ("op", Json::Str("poison".into())),
            ("tenant", Json::Str("t".into())),
        ]))
        .unwrap();
    assert_eq!(
        r.str_field("error"),
        Some("internal_panic"),
        "{}",
        r.render()
    );
    assert!(counter(&mut c, "panics") >= 1);

    // Rollback isolation, pinned three ways: the probe value, the
    // resolution derivation, and forward-moving (not reset) counters.
    assert_eq!(probe(&mut c, "t"), before);
    assert_eq!(derivation(&mut c, "t"), derivation_before);
    assert!(counter(&mut c, "requests") > requests_before);

    // The tenant also still accepts *new* work after the panic.
    let ty = c.typecheck("t", "\\x: Int. x").unwrap();
    assert_eq!(ty, "Int -> Int");
}

#[test]
fn poison_is_gated_off_by_default() {
    let d = daemon(false);
    let mut c = Client::connect(d.addr()).unwrap();
    open_chain(&mut c, "t");
    let r = c
        .request(&Json::obj(vec![
            ("op", Json::Str("poison".into())),
            ("tenant", Json::Str("t".into())),
        ]))
        .unwrap();
    assert_eq!(r.str_field("error"), Some("bad_request"), "{}", r.render());
}

#[test]
fn poisoned_program_never_panics_the_daemon_even_under_repeats() {
    let d = daemon(true);
    let mut c = Client::connect(d.addr()).unwrap();
    open_chain(&mut c, "t");
    let before = probe(&mut c, "t");
    for _ in 0..8 {
        let r = c
            .request(&Json::obj(vec![
                ("op", Json::Str("poison".into())),
                ("tenant", Json::Str("t".into())),
            ]))
            .unwrap();
        assert_eq!(r.str_field("error"), Some("internal_panic"));
        assert_eq!(probe(&mut c, "t"), before);
    }
    assert!(counter(&mut c, "panics") >= 8);
    let _ = error_json("smoke", "error_json is exported for harnesses");
}
