//! Fuel-accounting property, driven entirely by trace events: for
//! every generated program that both backends complete, the bytecode
//! VM's charged fuel never exceeds the tree-walker's — compilation
//! flattens the term, tail calls reuse frames, and the per-closure
//! unfold cache short-circuits `fix` re-unfolding, so the instruction
//! count is bounded by the tree evaluator's node visits.

use std::cell::RefCell;
use std::rc::Rc;

use genprog::{data_prelude, gen_program_with, rng, GenConfig};
use implicit_core::resolve::ResolutionPolicy;
use implicit_core::trace::{CollectSink, SharedSink, TraceEvent};
use implicit_pipeline::{Backend, Prelude, Session};

const SEEDS: u64 = 200;
const CHAIN: usize = 6;

#[test]
fn vm_fuel_is_bounded_by_tree_fuel() {
    let decls = data_prelude();
    let config = GenConfig::default();
    let prelude = Prelude::chain(CHAIN);
    let mut sess =
        Session::new(&decls, ResolutionPolicy::paper(), &prelude).expect("chain prelude compiles");
    let sink = Rc::new(RefCell::new(CollectSink::new()));
    sess.set_trace(Some(SharedSink::from_rc(sink.clone())));

    let mut compared = 0u64;
    for seed in 0..SEEDS {
        let mut r = rng(0xF0E1 ^ seed);
        let prog = gen_program_with(&mut r, &config, &decls);

        let tree = sess.run_with_backend(&prog.expr, Backend::Tree);
        let tree_events = std::mem::take(&mut sink.borrow_mut().events);
        let vm = sess.run_with_backend(&prog.expr, Backend::Vm);
        let vm_events = std::mem::take(&mut sink.borrow_mut().events);
        if tree.is_err() || vm.is_err() {
            continue;
        }

        let tree_fuel = tree_events
            .iter()
            .find_map(|ev| match ev {
                TraceEvent::TreeEval { fuel } => Some(*fuel),
                _ => None,
            })
            .expect("successful tree run emits TreeEval");
        let (vm_fuel, tail_calls, fix_unfolds) = vm_events
            .iter()
            .find_map(|ev| match ev {
                TraceEvent::VmRun {
                    fuel,
                    tail_calls,
                    fix_unfolds,
                    ..
                } => Some((*fuel, *tail_calls, *fix_unfolds)),
                _ => None,
            })
            .expect("successful vm run emits VmRun");

        assert!(
            vm_fuel <= tree_fuel,
            "[{seed}] vm fuel {vm_fuel} exceeds tree fuel {tree_fuel} \
             (tail_calls {tail_calls}, fix_unfolds {fix_unfolds}) on {}",
            prog.expr
        );
        compared += 1;
    }
    assert!(
        compared > SEEDS / 2,
        "suite degenerate: only {compared}/{SEEDS} programs ran on both backends"
    );
}
