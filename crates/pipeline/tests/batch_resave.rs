//! Batch-worker artifact re-save: a drained worker writes its warmed
//! session back to the shared store, so the *next* run of the same
//! batch exact-hits a hotter image than a cold build — with zero
//! decode fallbacks. This pins the library-level contract behind
//! `implicitc --batch --cache-dir` (and the daemon's tenant-close
//! re-save, which uses the same path).

use implicit_core::resolve::ResolutionPolicy;
use implicit_core::symbol::Symbol;
use implicit_core::syntax::{BinOp, Declarations, Expr, Type};
use implicit_pipeline::artifact::{
    artifact_key, config_key, load_or_build, ArtifactStore, LoadOutcome,
};
use implicit_pipeline::Prelude;
use systemf::Isa;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("implicit-resave-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A prelude with lets and two implicit frames, like the batch
/// preludes the CLI serves.
fn prelude() -> Prelude {
    let x = Symbol::intern("x0");
    Prelude {
        lets: vec![(x, Type::Int, Expr::Int(40))],
        implicits: vec![
            (Expr::var(x), Type::Int.promote()),
            (
                Expr::pair(Expr::query_simple(Type::Int), Expr::Int(2)),
                Type::prod(Type::Int, Type::Int).promote(),
            ),
        ],
    }
}

fn probe() -> Expr {
    Expr::binop(
        BinOp::Add,
        Expr::Fst(Expr::query_simple(Type::prod(Type::Int, Type::Int)).into()),
        Expr::Snd(Expr::query_simple(Type::prod(Type::Int, Type::Int)).into()),
    )
}

#[test]
fn second_batch_run_exact_hits_the_resaved_artifact() {
    let dir = tmpdir("warm");
    let store = ArtifactStore::new(&dir).unwrap();
    let decls = Declarations::default();
    let policy = ResolutionPolicy::paper();
    let prelude = prelude();

    // First run: cold build, execute the batch, then re-save the
    // warmed state exactly as a drained batch worker does.
    let (mut session, outcome) = load_or_build(
        &store,
        &decls,
        &policy,
        &prelude,
        true,
        false,
        Isa::Register,
    )
    .unwrap();
    assert!(
        matches!(outcome, LoadOutcome::Cold),
        "fresh store must cold-build"
    );
    let v1 = session.run_compiled(&probe()).unwrap();
    let key = artifact_key(&decls, &prelude, &policy, true, false, Isa::Register);
    let cfg = config_key(&decls, &policy, true, false, Isa::Register);
    let warmed = session.to_artifact();
    store.save(key, cfg, &warmed).unwrap();
    drop(session);

    // The store now holds the warmed bytes verbatim.
    let on_disk = store.load(key).expect("saved artifact readable");
    assert_eq!(
        on_disk, warmed,
        "re-save must store the warmed image byte-for-byte"
    );

    // Second run: exact hit on the warmed image, no fallbacks, and
    // identical results.
    let (mut again, outcome) = load_or_build(
        &store,
        &decls,
        &policy,
        &prelude,
        true,
        false,
        Isa::Register,
    )
    .unwrap();
    assert!(
        matches!(outcome, LoadOutcome::Exact),
        "second run must exact-hit the re-saved artifact, got {outcome:?}"
    );
    assert_eq!(
        again.metrics().artifact_fallbacks,
        0,
        "warm load must not fall back to a cold build"
    );
    let v2 = again.run(&probe()).unwrap();
    assert_eq!(v1.value.to_string(), v2.value.to_string());
    assert_eq!(v1.source_type.to_string(), v2.source_type.to_string());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resave_after_more_work_still_exact_hits() {
    // A third process warms further and re-saves again; the ladder
    // keeps exact-hitting (the key depends on the recipe, not on the
    // cache payload).
    let dir = tmpdir("iterate");
    let store = ArtifactStore::new(&dir).unwrap();
    let decls = Declarations::default();
    let policy = ResolutionPolicy::paper();
    let prelude = prelude();
    let key = artifact_key(&decls, &prelude, &policy, true, false, Isa::Register);
    let cfg = config_key(&decls, &policy, true, false, Isa::Register);

    for round in 0..3 {
        let (mut session, outcome) = load_or_build(
            &store,
            &decls,
            &policy,
            &prelude,
            true,
            false,
            Isa::Register,
        )
        .unwrap();
        if round == 0 {
            assert!(matches!(outcome, LoadOutcome::Cold));
        } else {
            assert!(
                matches!(outcome, LoadOutcome::Exact),
                "round {round} must exact-hit, got {outcome:?}"
            );
            assert_eq!(session.metrics().artifact_fallbacks, 0);
        }
        session.run_compiled(&probe()).unwrap();
        store.save(key, cfg, &session.to_artifact()).unwrap();
    }

    let _ = std::fs::remove_dir_all(&dir);
}
