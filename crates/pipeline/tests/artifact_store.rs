//! Artifact-store behavior: exact rehydration fidelity (byte-stable
//! re-encode), graceful degradation on corruption (fallback to cold,
//! counted, never a panic or stale code), and incremental-rebuild
//! precision (a one-binding edit invalidates exactly its dependency
//! cone).

use implicit_core::resolve::ResolutionPolicy;
use implicit_core::symbol::Symbol;
use implicit_core::syntax::{BinOp, Declarations, Expr, Type};
use implicit_pipeline::artifact::{self, artifact_key, config_key, ArtifactStore, LoadOutcome};
use implicit_pipeline::{Prelude, Session};
use systemf::Isa;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("implicit-artifact-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// `x0 = root; x_k = x_{k-1} + 1` lets, then two implicits: `Int`
/// evidence reading the last let, and `Int × Int` evidence querying
/// `?Int` (so it reads the first implicit's evidence). Every binding
/// reads its predecessor, so the dependency graph is one chain —
/// invalidation cones are exact intervals.
fn lets_chain(n: usize, root: i64, bump: i64) -> Prelude {
    let x = |k: usize| Symbol::intern(&format!("x{k}"));
    let mut lets = vec![(x(0), Type::Int, Expr::Int(root))];
    for k in 1..n {
        lets.push((
            x(k),
            Type::Int,
            Expr::binop(BinOp::Add, Expr::var(x(k - 1)), Expr::Int(1)),
        ));
    }
    let implicits = vec![
        (Expr::var(x(n - 1)), Type::Int.promote()),
        (
            Expr::pair(Expr::query_simple(Type::Int), Expr::Int(bump)),
            Type::prod(Type::Int, Type::Int).promote(),
        ),
    ];
    Prelude { lets, implicits }
}

/// `?(Int × Int)` plus the first let — exercises lets, both implicit
/// frames, the derivation cache, and the runtime memo.
fn probe() -> Expr {
    Expr::binop(
        BinOp::Add,
        Expr::Snd(Expr::query_simple(Type::prod(Type::Int, Type::Int)).into()),
        Expr::var("x0"),
    )
}

#[test]
fn rehydrated_session_reencodes_byte_identically() {
    let decls = Declarations::default();
    let prelude = lets_chain(4, 10, 1);
    let policy = ResolutionPolicy::paper();
    let mut builder = Session::new(&decls, policy.clone(), &prelude).unwrap();
    // Warm the caches so the artifact carries nontrivial cache and
    // memo sections, not just the prelude skeleton.
    builder.run(&probe()).unwrap();
    builder.run_compiled(&probe()).unwrap();
    builder.run_opsem(&probe()).unwrap();
    let bytes = builder.to_artifact();
    drop(builder);

    let mut back = Session::from_artifact(
        &decls,
        &policy,
        &prelude,
        true,
        false,
        Isa::Register,
        &bytes,
    )
    .unwrap();
    let again = back.to_artifact();
    assert_eq!(
        bytes, again,
        "decode → assemble → re-encode must be byte-identical"
    );

    // And the rehydrated session computes the same values as a cold
    // build, with warm-cache behavior (hits on the very first run).
    let mut cold = Session::new(&decls, policy, &prelude).unwrap();
    let w = back.run_compiled(&probe()).unwrap();
    let c = cold.run_compiled(&probe()).unwrap();
    assert_eq!(w.value.to_string(), c.value.to_string());
    let hits = back.cache_counters().hits;
    assert!(
        hits > 0,
        "rehydrated session must hit the imported derivation cache on its first program"
    );
}

#[test]
fn corrupted_artifacts_fall_back_to_cold_and_are_counted() {
    let decls = Declarations::default();
    let prelude = lets_chain(3, 5, 2);
    let policy = ResolutionPolicy::paper();
    let mut builder = Session::new(&decls, policy.clone(), &prelude).unwrap();
    builder.run(&probe()).unwrap();
    let bytes = builder.to_artifact();
    drop(builder);

    // Every single-bit flip must be rejected at decode/validate time
    // (checksum first, structural tags behind it) — sample positions
    // across the whole payload, including the trailing checksum.
    for pos in (0..bytes.len()).step_by((bytes.len() / 64).max(1)) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x10;
        let r = Session::from_artifact(&decls, &policy, &prelude, true, false, Isa::Register, &bad);
        assert!(
            r.is_err(),
            "bit-flip at byte {pos} was accepted — stale/corrupt state could leak"
        );
    }
    // Truncations too.
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            Session::from_artifact(
                &decls,
                &policy,
                &prelude,
                true,
                false,
                Isa::Register,
                &bytes[..cut],
            )
            .is_err(),
            "truncated artifact ({cut} bytes) was accepted"
        );
    }

    // A corrupt store degrades to a cold build and counts the
    // fallback on the session metrics.
    let dir = tmpdir("corrupt");
    let store = ArtifactStore::new(&dir).unwrap();
    let key = artifact_key(&decls, &prelude, &policy, true, false, Isa::Register);
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    std::fs::write(store.content_path(key), &bad).unwrap();
    let (sess, outcome) = artifact::load_or_build(
        &store,
        &decls,
        &policy,
        &prelude,
        true,
        false,
        Isa::Register,
    )
    .unwrap();
    assert!(matches!(outcome, LoadOutcome::Cold), "got {outcome:?}");
    assert_eq!(
        sess.metrics().artifact_fallbacks,
        1,
        "the corrupt artifact must be counted as a fallback"
    );
    // The cold build overwrote the corrupt file; the next load is an
    // exact hit with no fallbacks.
    drop(sess);
    let (sess2, outcome2) = artifact::load_or_build(
        &store,
        &decls,
        &policy,
        &prelude,
        true,
        false,
        Isa::Register,
    )
    .unwrap();
    assert!(matches!(outcome2, LoadOutcome::Exact), "got {outcome2:?}");
    assert_eq!(sess2.metrics().artifact_fallbacks, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_configuration_never_rehydrates() {
    let decls = Declarations::default();
    let prelude = lets_chain(3, 5, 2);
    let policy = ResolutionPolicy::paper();
    let mut builder = Session::new(&decls, policy.clone(), &prelude).unwrap();
    let bytes = builder.to_artifact();
    drop(builder);
    // Different ISA, policy, knobs, or prelude → key mismatch → Err.
    assert!(
        Session::from_artifact(&decls, &policy, &prelude, true, false, Isa::Stack, &bytes).is_err()
    );
    assert!(Session::from_artifact(
        &decls,
        &policy.clone().with_most_specific(),
        &prelude,
        true,
        false,
        Isa::Register,
        &bytes,
    )
    .is_err());
    assert!(Session::from_artifact(
        &decls,
        &policy,
        &prelude,
        false,
        false,
        Isa::Register,
        &bytes
    )
    .is_err());
    let other = lets_chain(3, 6, 2);
    assert!(
        Session::from_artifact(&decls, &policy, &other, true, false, Isa::Register, &bytes)
            .is_err()
    );
}

#[test]
fn incremental_rebuild_artifact_covers_rebuild_minted_gensyms() {
    let decls = Declarations::default();
    // A rule-typed implicit with a non-empty context: elaborating its
    // rule abstraction mints a fresh `ev%N` context binder every time
    // it is (re-)elaborated, so rebuilds advance the fresh counter.
    let with_rule_implicit = |root: i64| {
        let mut p = lets_chain(4, root, 1);
        let rho = implicit_core::syntax::RuleType::new(
            Vec::new(),
            vec![Type::Bool.promote()],
            Type::prod(Type::Bool, Type::Int),
        );
        p.implicits.push((
            Expr::rule_abs(
                rho.clone(),
                Expr::pair(Expr::query_simple(Type::Bool), Expr::var("x3")),
            ),
            rho,
        ));
        p
    };
    let prelude = with_rule_implicit(10);
    let policy = ResolutionPolicy::paper();
    let dir = tmpdir("watermark");
    let store = ArtifactStore::new(&dir).unwrap();
    let (first, outcome) = artifact::load_or_build(
        &store,
        &decls,
        &policy,
        &prelude,
        true,
        false,
        Isa::Register,
    )
    .unwrap();
    assert!(matches!(outcome, LoadOutcome::Cold));
    drop(first);
    let key = artifact_key(&decls, &prelude, &policy, true, false, Isa::Register);
    let old_wm = artifact::decode(&store.load(key).unwrap())
        .unwrap()
        .fresh_watermark;

    // A root edit re-elaborates every binding, minting fresh `ev`
    // gensyms above the seed artifact's watermark. The artifact saved
    // from the rebuilt session must record a watermark covering them —
    // a stale (equal) watermark would let a later process re-mint the
    // same names as local binders and capture the deserialized
    // prelude evidence they collide with.
    let edited = with_rule_implicit(20);
    let (mut sess, outcome) =
        artifact::load_or_build(&store, &decls, &policy, &edited, true, false, Isa::Register)
            .unwrap();
    assert!(
        matches!(outcome, LoadOutcome::Incremental(_)),
        "got {outcome:?}"
    );
    let new_wm = artifact::decode(&sess.to_artifact())
        .unwrap()
        .fresh_watermark;
    assert!(
        new_wm > old_wm,
        "rebuilt artifact watermark ({new_wm}) must advance past the seed's ({old_wm}) \
         to cover gensyms minted during re-elaboration"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incremental_rebuild_invalidates_exactly_the_dependency_cone() {
    let decls = Declarations::default();
    let n = 6;
    let prelude = lets_chain(n, 100, 1);
    let policy = ResolutionPolicy::paper();
    let dir = tmpdir("incremental");
    let store = ArtifactStore::new(&dir).unwrap();

    // Seed the store with a warmed artifact for the original prelude.
    let (mut first, outcome) = artifact::load_or_build(
        &store,
        &decls,
        &policy,
        &prelude,
        true,
        false,
        Isa::Register,
    )
    .unwrap();
    assert!(matches!(outcome, LoadOutcome::Cold));
    first.run(&probe()).unwrap();
    first.run_opsem(&probe()).unwrap();
    let key = artifact_key(&decls, &prelude, &policy, true, false, Isa::Register);
    let config = config_key(&decls, &policy, true, false, Isa::Register);
    store.save(key, config, &first.to_artifact()).unwrap();
    drop(first);

    // Leaf edit: the *last* binding (second implicit) changes its
    // expression. Nothing reads it, so its cone is itself: every
    // other binding must be reused, and the prelude-level derivation
    // cache must carry over.
    let leaf_edit = lets_chain(n, 100, 2);
    let (mut sess, outcome) = artifact::load_or_build(
        &store,
        &decls,
        &policy,
        &leaf_edit,
        true,
        false,
        Isa::Register,
    )
    .unwrap();
    let LoadOutcome::Incremental(stats) = outcome else {
        panic!("leaf edit must rebuild incrementally, got {outcome:?}");
    };
    let total = n + 2;
    assert_eq!(stats.bindings_total, total);
    assert_eq!(
        stats.bindings_reused,
        total - 1,
        "a leaf edit's cone is exactly itself: {stats:?}"
    );
    assert!(
        stats.cache_entries_retained > 0,
        "derivation-cache entries must survive an expression-only edit: {stats:?}"
    );
    // Correctness of the rebuilt session against a cold build.
    let mut cold = Session::new(&decls, policy.clone(), &leaf_edit).unwrap();
    for e in [probe(), Expr::query_simple(Type::Int)] {
        assert_eq!(
            sess.run_compiled(&e).unwrap().value.to_string(),
            cold.run_compiled(&e).unwrap().value.to_string(),
            "incremental rebuild diverged from cold on {e}"
        );
        assert_eq!(
            sess.run_opsem(&e).unwrap().to_string(),
            cold.run_opsem(&e).unwrap().to_string(),
            "incremental rebuild (opsem) diverged from cold on {e}"
        );
    }
    drop(sess);
    drop(cold);

    // Root edit: `x0`'s expression changes. Every later binding reads
    // its predecessor, so the cone is the entire prelude — nothing is
    // reused, and the rebuilt values must reflect the new root.
    let root_edit = lets_chain(n, 200, 2);
    let (mut sess, outcome) = artifact::load_or_build(
        &store,
        &decls,
        &policy,
        &root_edit,
        true,
        false,
        Isa::Register,
    )
    .unwrap();
    let LoadOutcome::Incremental(stats) = outcome else {
        panic!("root edit must rebuild incrementally, got {outcome:?}");
    };
    assert_eq!(
        stats.bindings_reused, 0,
        "a root edit must invalidate everything it reaches: {stats:?}"
    );
    let mut cold = Session::new(&decls, policy.clone(), &root_edit).unwrap();
    let w = sess.run_compiled(&probe()).unwrap();
    let c = cold.run_compiled(&probe()).unwrap();
    assert_eq!(w.value.to_string(), c.value.to_string());
    // ?(Int×Int) = (?Int, 2) = (x5, 2) with x5 = 205; probe adds x0.
    assert_eq!(w.value.to_string(), "202");
    drop(sess);
    drop(cold);

    // Shape change (extra binding) cannot rebuild incrementally —
    // the ladder lands on a cold build, not stale state.
    let mut reshaped = lets_chain(n, 200, 2);
    reshaped
        .lets
        .push((Symbol::intern("extra"), Type::Int, Expr::Int(1)));
    let (sess, outcome) = artifact::load_or_build(
        &store,
        &decls,
        &policy,
        &reshaped,
        true,
        false,
        Isa::Register,
    )
    .unwrap();
    assert!(
        matches!(outcome, LoadOutcome::Cold),
        "shape change must fall back to cold, got {outcome:?}"
    );
    assert_eq!(sess.metrics().artifact_fallbacks, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
