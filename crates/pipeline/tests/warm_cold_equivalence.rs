//! Warm/cold equivalence property: a warm [`Session`] must produce
//! the same values, types, errors, and resolution derivations as a
//! cold per-program pipeline run of the sugared equivalent
//! `let x̄ = ē in implicit {…} in program`, under every resolution
//! policy.
//!
//! Gensym counters advance differently warm vs cold (the warm session
//! elaborates the prelude once, the cold run re-elaborates it per
//! program), so evidence-variable *names* differ; values print
//! name-free and errors are compared with digits stripped.
//!
//! PR 9 adds a *restarted* leg per ISA: a session is built, serialized
//! to an artifact, dropped, and rehydrated via
//! [`Session::from_artifact`]; the rehydrated session must be
//! observationally equal to the same-process warm session (and hence
//! to cold) on every program, on both the compiled and opsem legs.

use genprog::{data_prelude, gen_program_with, rng, GenConfig};
use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_core::syntax::Expr;
use implicit_core::ImplicitEnv;
use implicit_opsem::Interpreter;
use implicit_pipeline::{Prelude, Session};

/// Strips decimal digits so gensym suffixes (`ev17`, `a42`) compare
/// equal across warm and cold runs.
fn normalize(s: &str) -> String {
    s.chars().filter(|c| !c.is_ascii_digit()).collect()
}

fn policies() -> Vec<(&'static str, ResolutionPolicy)> {
    vec![
        ("paper", ResolutionPolicy::paper()),
        ("no-cache", ResolutionPolicy::paper().without_cache()),
        (
            "most-specific",
            ResolutionPolicy::paper().with_most_specific(),
        ),
        (
            "env-extension",
            ResolutionPolicy::paper().with_env_extension(),
        ),
    ]
}

const SEEDS_PER_POLICY: u64 = 250;
const CHAIN: usize = 6;

#[test]
fn warm_session_is_observationally_equal_to_cold_runs() {
    let decls = data_prelude();
    let config = GenConfig::default();
    let prelude = Prelude::chain(CHAIN);
    let mut checked = 0u64;

    for (pname, policy) in policies() {
        let mut sess = Session::new(&decls, policy.clone(), &prelude)
            .unwrap_or_else(|e| panic!("[{pname}] prelude failed: {e}"));
        // Compiled-backend legs, one per optimization configuration:
        // superinstructions + dictionary IC, superinstructions only
        // (the default register ISA), plain unfused bytecode, and the
        // stack ISA kept as the register machine's differential
        // baseline. All four must be observationally equal to the
        // warm tree walker.
        let mut vm_ic = Session::new_configured(&decls, policy.clone(), &prelude, true, true)
            .unwrap_or_else(|e| panic!("[{pname}] prelude failed: {e}"));
        let mut vm_plain = Session::new(&decls, policy.clone(), &prelude)
            .unwrap_or_else(|e| panic!("[{pname}] prelude failed: {e}"));
        let mut vm_nofuse = Session::new_configured(&decls, policy.clone(), &prelude, false, false)
            .unwrap_or_else(|e| panic!("[{pname}] prelude failed: {e}"));
        let mut vm_stack = Session::new_configured_isa(
            &decls,
            policy.clone(),
            &prelude,
            true,
            false,
            systemf::Isa::Stack,
        )
        .unwrap_or_else(|e| panic!("[{pname}] prelude failed: {e}"));
        // Restarted legs: serialize → drop → rehydrate, one per ISA.
        // The builder sessions are dropped before rehydration, so the
        // restarted sessions share no in-memory state with them.
        let reg_bytes = {
            let mut b = Session::new(&decls, policy.clone(), &prelude)
                .unwrap_or_else(|e| panic!("[{pname}] prelude failed: {e}"));
            b.to_artifact()
        };
        let mut restart_reg = Session::from_artifact(
            &decls,
            &policy,
            &prelude,
            true,
            false,
            systemf::Isa::Register,
            &reg_bytes,
        )
        .unwrap_or_else(|e| panic!("[{pname}] register rehydration failed: {e}"));
        let stack_bytes = {
            let mut b = Session::new_configured_isa(
                &decls,
                policy.clone(),
                &prelude,
                true,
                false,
                systemf::Isa::Stack,
            )
            .unwrap_or_else(|e| panic!("[{pname}] prelude failed: {e}"));
            b.to_artifact()
        };
        let mut restart_stack = Session::from_artifact(
            &decls,
            &policy,
            &prelude,
            true,
            false,
            systemf::Isa::Stack,
            &stack_bytes,
        )
        .unwrap_or_else(|e| panic!("[{pname}] stack rehydration failed: {e}"));
        for seed in 0..SEEDS_PER_POLICY {
            let mut r = rng(0xC0FFEE ^ seed);
            let prog = gen_program_with(&mut r, &config, &decls);
            let wrapped = prelude.wrap(prog.expr.clone(), prog.ty.clone());

            // Elaboration pipeline: warm vs cold.
            let warm = sess.run(&prog.expr);
            let cold = implicit_elab::run_with(&decls, &wrapped, &policy);
            match (&warm, &cold) {
                (Ok(w), Ok(c)) => {
                    assert_eq!(
                        w.value.to_string(),
                        c.value.to_string(),
                        "[{pname}/{seed}] value mismatch on {}",
                        prog.expr
                    );
                    assert_eq!(
                        w.source_type.to_string(),
                        c.source_type.to_string(),
                        "[{pname}/{seed}] source type mismatch"
                    );
                    assert_eq!(
                        w.target_type.to_string(),
                        c.target_type.to_string(),
                        "[{pname}/{seed}] target type mismatch"
                    );
                }
                (Err(we), Err(ce)) => {
                    assert_eq!(
                        normalize(&we.to_string()),
                        normalize(&ce.to_string()),
                        "[{pname}/{seed}] error mismatch on {}",
                        prog.expr
                    );
                }
                (w, c) => panic!(
                    "[{pname}/{seed}] warm {:?} vs cold {:?} on {}",
                    w.as_ref().map(|o| o.value.to_string()),
                    c.as_ref().map(|o| o.value.to_string()),
                    prog.expr
                ),
            }

            // Operational-semantics leg: warm session interpreter
            // (persistent memo) vs a cold interpreter on the sugared
            // program.
            let warm_op = sess.run_opsem(&prog.expr);
            let cold_op = Interpreter::new(&decls)
                .with_policy(policy.clone())
                .eval(&wrapped);
            match (&warm_op, &cold_op) {
                (Ok(w), Ok(c)) => assert_eq!(
                    w.to_string(),
                    c.to_string(),
                    "[{pname}/{seed}] opsem value mismatch on {}",
                    prog.expr
                ),
                (Err(we), Err(ce)) => assert_eq!(
                    normalize(&we.to_string()),
                    normalize(&ce.to_string()),
                    "[{pname}/{seed}] opsem error mismatch on {}",
                    prog.expr
                ),
                (w, c) => panic!(
                    "[{pname}/{seed}] opsem warm {:?} vs cold {:?} on {}",
                    w.as_ref().map(|v| v.to_string()),
                    c.as_ref().map(|v| v.to_string()),
                    prog.expr
                ),
            }
            // Restarted opsem leg: the rehydrated interpreter (with
            // its imported memo roots) must agree with the warm one.
            let restart_op = restart_reg.run_opsem(&prog.expr);
            match (&warm_op, &restart_op) {
                (Ok(w), Ok(r)) => assert_eq!(
                    w.to_string(),
                    r.to_string(),
                    "[{pname}/{seed}] restarted opsem value mismatch on {}",
                    prog.expr
                ),
                (Err(we), Err(re)) => assert_eq!(
                    normalize(&we.to_string()),
                    normalize(&re.to_string()),
                    "[{pname}/{seed}] restarted opsem error mismatch on {}",
                    prog.expr
                ),
                (w, r) => panic!(
                    "[{pname}/{seed}] opsem warm {:?} vs restarted {:?} on {}",
                    w.as_ref().map(|v| v.to_string()),
                    r.as_ref().map(|v| v.to_string()),
                    prog.expr
                ),
            }
            // Compiled legs: every optimization configuration of the
            // bytecode backend must match the warm tree-walk outcome.
            let legs = [
                ("vm+ic", vm_ic.run_compiled(&prog.expr)),
                ("vm", vm_plain.run_compiled(&prog.expr)),
                ("vm-nofuse", vm_nofuse.run_compiled(&prog.expr)),
                ("vm-stack", vm_stack.run_compiled(&prog.expr)),
                ("restarted", restart_reg.run_compiled(&prog.expr)),
                ("restarted-stack", restart_stack.run_compiled(&prog.expr)),
            ];
            match &warm {
                Ok(w) => {
                    for (lname, leg) in &legs {
                        let l = leg.as_ref().unwrap_or_else(|e| {
                            panic!(
                                "[{pname}/{seed}] {lname} errored `{e}` where the \
                                 tree walker succeeded on {}",
                                prog.expr
                            )
                        });
                        assert_eq!(
                            l.value.to_string(),
                            w.value.to_string(),
                            "[{pname}/{seed}] {lname} value mismatch on {}",
                            prog.expr
                        );
                        assert_eq!(
                            l.source_type.to_string(),
                            w.source_type.to_string(),
                            "[{pname}/{seed}] {lname} source type mismatch"
                        );
                    }
                }
                Err(_) => {
                    // Backend error *text* may differ tree vs VM, but
                    // all four VM configurations must fail alike.
                    let msgs: Vec<String> = legs
                        .iter()
                        .map(|(lname, leg)| match leg {
                            Err(e) => normalize(&e.to_string()),
                            Ok(o) => panic!(
                                "[{pname}/{seed}] {lname} produced {} where the \
                                 tree walker errored on {}",
                                o.value, prog.expr
                            ),
                        })
                        .collect();
                    assert!(
                        msgs.windows(2).all(|w| w[0] == w[1]),
                        "[{pname}/{seed}] compiled legs disagree on the error: {msgs:?}"
                    );
                }
            }
            checked += 1;
        }

        // The IC leg must have genuinely exercised the dictionary
        // cache: a repeated ground prelude query hits.
        let probe = Expr::binop(
            implicit_core::syntax::BinOp::Add,
            Expr::Snd(Expr::query_simple(Prelude::chain_head(CHAIN)).into()),
            Expr::Int(7),
        );
        vm_ic
            .run_compiled(&probe)
            .unwrap_or_else(|e| panic!("[{pname}] probe failed: {e}"));
        let hits_before = vm_ic.dict_counters().0;
        vm_ic.run_compiled(&probe).unwrap();
        assert!(
            vm_ic.dict_counters().0 > hits_before,
            "[{pname}] dictionary IC never hit on a repeated ground query"
        );

        // Derivation leg: ground prelude queries resolved against the
        // warm environment (cache and all) must produce exactly the
        // derivation a freshly built environment produces.
        let mut cold_env = ImplicitEnv::new();
        for rho in sess.context() {
            cold_env.push(vec![rho.clone()]);
        }
        for depth in 0..=CHAIN {
            let q = Prelude::chain_head(depth).promote();
            let warm_d = resolve(sess.env(), &q, &policy);
            let cold_d = resolve(&cold_env, &q, &policy);
            match (&warm_d, &cold_d) {
                (Ok(w), Ok(c)) => assert_eq!(
                    w,
                    c,
                    "[{pname}] derivation for ?{} differs warm vs cold",
                    Prelude::chain_head(depth)
                ),
                (Err(_), Err(_)) => {}
                _ => panic!("[{pname}] derivation outcome differs for depth {depth}"),
            }
        }
    }

    assert!(
        checked >= 1000,
        "property must cover at least 1000 programs, covered {checked}"
    );

    // The warm sessions must actually have been warm: re-running a
    // prelude query in a fresh session shows cross-program cache hits.
    let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
    let q = Expr::binop(
        implicit_core::syntax::BinOp::Add,
        Expr::Snd(Expr::query_simple(Prelude::chain_head(CHAIN)).into()),
        Expr::Int(1),
    );
    sess.run(&q).unwrap();
    let first = sess.cache_counters();
    sess.run(&q).unwrap();
    let second = sess.cache_counters();
    assert!(
        second.hits > first.hits,
        "prelude-level queries must hit the warm cache on the 2nd program"
    );
}
