//! Dictionary inline cache: repeated ground implicit queries against a
//! warm session must hit the promoted-dictionary fast path, and the
//! cache must never change observable results — in particular a
//! program that *shadows* a prelude rule must see the inner binding,
//! not a stale cached dictionary.

use std::cell::RefCell;
use std::rc::Rc;

use implicit_core::resolve::ResolutionPolicy;
use implicit_core::syntax::{BinOp, Declarations, Expr, Type};
use implicit_core::trace::{CollectSink, SharedSink, TraceEvent};
use implicit_pipeline::{Prelude, Session};

/// Deep chain resolutions overflow the default test-thread stack in
/// debug builds; mirror the in-crate tests' big-stack harness.
fn with_big_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(f)
        .unwrap()
        .join()
        .unwrap();
}

fn chain_query_program(n: usize, j: i64) -> Expr {
    Expr::binop(
        BinOp::Add,
        Expr::Snd(Expr::query_simple(Prelude::chain_head(n)).into()),
        Expr::Int(j),
    )
}

#[test]
fn repeated_queries_hit_the_dictionary_cache() {
    with_big_stack(|| {
        let decls = Declarations::default();
        let prelude = Prelude::chain(10);
        let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
        sess.set_dict_ic(true);

        // Cold query: resolution runs, no cache entry yet.
        let first = sess.run_compiled(&chain_query_program(10, 1)).unwrap();
        let (hits0, misses0) = sess.dict_counters();
        assert_eq!(hits0, 0, "first query cannot hit");
        assert!(misses0 >= 1, "first query records a miss");
        assert!(
            sess.dict_entries() >= 1,
            "successful run promotes the resolved dictionary"
        );

        // Warm queries: same ground query → cached global, and the
        // value still matches the tree walker exactly.
        for j in 2..6 {
            let e = chain_query_program(10, j);
            let vm = sess.run_compiled(&e).unwrap();
            let tree = sess.run(&e).unwrap();
            assert_eq!(vm.value.to_string(), tree.value.to_string());
            assert_eq!(vm.source_type.to_string(), tree.source_type.to_string());
        }
        let (hits, _) = sess.dict_counters();
        assert!(hits >= 4, "warm ground queries hit the cache (got {hits})");
        assert_eq!(first.value.to_string(), {
            let mut cold = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
            cold.run_compiled(&chain_query_program(10, 1))
                .unwrap()
                .value
                .to_string()
        });

        // The session metrics surface the same counters.
        let m = sess.metrics();
        assert_eq!(m.ic_hits, hits, "metrics mirror the cache's hit counter");
    });
}

#[test]
fn cache_hits_emit_ic_trace_events() {
    with_big_stack(|| {
        let decls = Declarations::default();
        let prelude = Prelude::chain(8);
        let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
        sess.set_dict_ic(true);
        let sink = Rc::new(RefCell::new(CollectSink::new()));
        sess.set_trace(Some(SharedSink::from_rc(sink.clone())));

        sess.run_compiled(&chain_query_program(8, 0)).unwrap();
        let cold_events = std::mem::take(&mut sink.borrow_mut().events);
        assert!(
            cold_events
                .iter()
                .any(|ev| matches!(ev, TraceEvent::IcMiss { .. })),
            "cold query traces an IC miss"
        );

        sess.run_compiled(&chain_query_program(8, 1)).unwrap();
        let warm_events = std::mem::take(&mut sink.borrow_mut().events);
        assert!(
            warm_events
                .iter()
                .any(|ev| matches!(ev, TraceEvent::IcHit { .. })),
            "warm query traces an IC hit"
        );
    });
}

#[test]
fn shadowing_a_prelude_rule_bypasses_the_cached_dictionary() {
    let decls = Declarations::default();
    let prelude = Prelude::implicits(vec![(Expr::Int(1), Type::Int.promote())]);
    let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
    sess.set_dict_ic(true);

    // Warm the cache on the prelude's Int rule.
    let q = Expr::query_simple(Type::Int);
    assert_eq!(sess.run_compiled(&q).unwrap().value.to_string(), "1");
    assert_eq!(sess.run_compiled(&q).unwrap().value.to_string(), "1");
    let (hits_before, _) = sess.dict_counters();
    assert!(hits_before >= 1, "plain query warms the cache");

    // A program-local implicit shadows the prelude rule: the query
    // resolves against the inner frame, so the cached prelude
    // dictionary must NOT be served.
    let shadowed = Expr::implicit(
        vec![(Expr::Int(2), Type::Int.promote())],
        Expr::query_simple(Type::Int),
        Type::Int,
    );
    let vm = sess.run_compiled(&shadowed).unwrap();
    assert_eq!(
        vm.value.to_string(),
        "2",
        "inner binding wins over the cache"
    );
    let tree = sess.run(&shadowed).unwrap();
    assert_eq!(tree.value.to_string(), "2");
    let (hits_after, _) = sess.dict_counters();
    assert_eq!(
        hits_after, hits_before,
        "a shadowed query never counts as a cache hit"
    );

    // And the plain query still hits afterwards — shadowing is
    // scoped, not a global invalidation.
    assert_eq!(sess.run_compiled(&q).unwrap().value.to_string(), "1");
    assert!(sess.dict_counters().0 > hits_after);
}

#[test]
fn cache_survives_session_trim() {
    with_big_stack(|| {
        let decls = Declarations::default();
        let prelude = Prelude::chain(8);
        let mut sess = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
        sess.set_dict_ic(true);

        sess.run_compiled(&chain_query_program(8, 0)).unwrap();
        let entries = sess.dict_entries();
        assert!(entries >= 1);
        // Trimming truncates the intern tables to the prelude
        // snapshot; entries keyed by rules interned after it are
        // dropped (their ids would dangle), never left stale.
        sess.trim();
        assert!(
            sess.dict_entries() <= entries,
            "trim may only shrink the cache"
        );
        // Correctness is unaffected: the next run re-resolves,
        // re-promotes on demand, and still agrees with the tree leg.
        let out = sess.run_compiled(&chain_query_program(8, 3)).unwrap();
        let tree = sess.run(&chain_query_program(8, 3)).unwrap();
        assert_eq!(out.value.to_string(), tree.value.to_string());
        assert!(sess.dict_entries() >= 1, "dropped entries re-promote");
        let hits = sess.dict_counters().0;
        sess.run_compiled(&chain_query_program(8, 4)).unwrap();
        assert!(
            sess.dict_counters().0 > hits,
            "re-promoted entry hits again"
        );
    });
}

#[test]
fn dict_ic_never_changes_results_across_knob_settings() {
    with_big_stack(|| {
        let decls = Declarations::default();
        let prelude = Prelude::chain(10);
        let mut on =
            Session::new_configured(&decls, ResolutionPolicy::paper(), &prelude, true, true)
                .unwrap();
        let mut off = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
        for j in 0..6 {
            let e = chain_query_program(10, j);
            let a = on.run_compiled(&e).unwrap();
            let b = off.run_compiled(&e).unwrap();
            assert_eq!(a.value.to_string(), b.value.to_string(), "[{j}]");
            assert_eq!(
                a.source_type.to_string(),
                b.source_type.to_string(),
                "[{j}]"
            );
        }
        assert!(
            on.dict_counters().0 > 0,
            "IC-on leg actually exercised hits"
        );
        assert_eq!(off.dict_counters(), (0, 0), "IC-off leg never touches it");
    });
}
