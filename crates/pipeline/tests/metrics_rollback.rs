//! Counter-rollback regression tests: session statistics and the
//! unified metrics snapshot must stay consistent through FAILING
//! programs and through [`Session::trim`] — the paths the
//! warm/cold-equivalence suite only exercises on success.

use std::cell::RefCell;
use std::rc::Rc;

use implicit_core::resolve::ResolutionPolicy;
use implicit_core::syntax::{BinOp, Declarations, Expr, Type};
use implicit_core::trace::{CollectSink, SharedSink};
use implicit_pipeline::{Backend, Prelude, Session};

const CHAIN: usize = 6;

/// `snd(?T_n) + j` — the chain-walking probe program.
fn chain_query_program(n: usize, j: i64) -> Expr {
    Expr::binop(
        BinOp::Add,
        Expr::Snd(Expr::query_simple(Prelude::chain_head(n)).into()),
        Expr::Int(j),
    )
}

/// A program whose query cannot resolve in the chain environment.
fn failing_program() -> Expr {
    Expr::query_simple(Type::Str)
}

#[test]
fn metrics_survive_failing_programs_and_trim() {
    let decls = Declarations::new();
    let prelude = Prelude::chain(CHAIN);
    let mut sess =
        Session::new(&decls, ResolutionPolicy::paper(), &prelude).expect("chain prelude compiles");
    let sink = Rc::new(RefCell::new(CollectSink::new()));
    sess.set_trace(Some(SharedSink::from_rc(sink.clone())));

    // A successful run to seed the counters.
    let ok = sess.run(&chain_query_program(CHAIN, 1)).expect("resolves");
    assert_eq!(ok.value.to_string(), "7");
    let after_ok = sess.metrics();
    assert_eq!(after_ok.programs, 1);
    assert_eq!(
        after_ok.queries,
        after_ok.queries_resolved + after_ok.queries_failed
    );
    assert_eq!(after_ok.queries_failed, 0);
    assert!(after_ok.queries >= 1, "the probe performs a query");

    // A failing program: the error must be reported, the program
    // still counted, the failure counted, and no partial state leak.
    sess.run(&failing_program())
        .expect_err("Str is not in scope");
    let after_fail = sess.metrics();
    assert_eq!(after_fail.programs, 2);
    assert!(
        after_fail.queries_failed >= 1,
        "failed query must be counted"
    );
    assert_eq!(
        after_fail.queries,
        after_fail.queries_resolved + after_fail.queries_failed
    );
    // Failures are never cached, so the cache counters only moved by
    // the lookups actually performed.
    assert!(after_fail.cache_hits + after_fail.cache_misses >= after_ok.cache_hits);

    // Snapshot, trim, and verify the rollback: trims increments, the
    // monotone counters are preserved (trim drops arena nodes and
    // cache entries, not statistics), and the session still answers
    // correctly with the right fresh-vs-cached accounting.
    sess.trim();
    let after_trim = sess.metrics();
    assert_eq!(after_trim.trims, 1);
    assert_eq!(after_trim.programs, 2);
    assert_eq!(after_trim.queries, after_fail.queries);
    assert_eq!(after_trim.queries_resolved, after_fail.queries_resolved);
    assert_eq!(after_trim.queries_failed, after_fail.queries_failed);
    assert!(after_trim.cache_evictions >= after_fail.cache_evictions);

    let ok2 = sess.run(&chain_query_program(CHAIN, 2)).expect("resolves");
    assert_eq!(ok2.value.to_string(), "8");
    let after_ok2 = sess.metrics();
    assert_eq!(after_ok2.programs, 3);
    assert_eq!(
        after_ok2.queries,
        after_ok2.queries_resolved + after_ok2.queries_failed
    );
    assert_eq!(
        after_ok2.queries_failed, after_fail.queries_failed,
        "no new failures"
    );
}

#[test]
fn failing_compiled_runs_roll_back_the_code_object() {
    // The compiled path has more rollback state (code object, VM
    // globals); alternate failing and succeeding compiled runs and
    // check both results and counters.
    let decls = Declarations::new();
    let prelude = Prelude::chain(CHAIN);
    let mut sess =
        Session::new(&decls, ResolutionPolicy::paper(), &prelude).expect("chain prelude compiles");
    let sink = Rc::new(RefCell::new(CollectSink::new()));
    sess.set_trace(Some(SharedSink::from_rc(sink.clone())));

    for round in 0..4 {
        sess.run_with_backend(&failing_program(), Backend::Vm)
            .expect_err("Str is not in scope");
        let ok = sess
            .run_with_backend(&chain_query_program(CHAIN, round), Backend::Vm)
            .expect("resolves after a failure");
        assert_eq!(ok.value.to_string(), (6 + round).to_string());
    }
    let m = sess.metrics();
    assert_eq!(m.programs, 8);
    assert_eq!(m.compiled_programs, 8);
    assert_eq!(m.queries_failed, 4);
    assert_eq!(m.queries, m.queries_resolved + m.queries_failed);
    assert_eq!(m.vm_runs, 4, "only successful programs reach the VM");
    assert!(m.vm_fuel > 0);
}

#[test]
fn stats_and_metrics_agree_without_a_sink() {
    // With no sink installed, the resolution-grain counters stay
    // zero, but the session-level counters in the snapshot must still
    // match `SessionStats` exactly.
    let decls = Declarations::new();
    let prelude = Prelude::chain(CHAIN);
    let mut sess =
        Session::new(&decls, ResolutionPolicy::paper(), &prelude).expect("chain prelude compiles");
    sess.run(&chain_query_program(CHAIN, 1)).expect("resolves");
    sess.run(&failing_program()).expect_err("Str not in scope");
    sess.trim();

    let stats = sess.stats();
    let m = sess.metrics();
    assert_eq!(m.programs, stats.programs);
    assert_eq!(m.opsem_programs, stats.opsem_programs);
    assert_eq!(m.compiled_programs, stats.compiled_programs);
    assert_eq!(m.trims, stats.trims);
    assert_eq!(m.queries, 0, "no sink, no resolution-grain counting");
    assert!(m.tree_runs >= 1, "phase events are session-internal");
}
