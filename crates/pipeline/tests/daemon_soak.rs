//! Concurrency soak: N client threads × M resolve-only tenants built
//! from production-shaped `wild_workload` environments, firing a
//! fixed mixed hot/cold query schedule at a live daemon. Every
//! response must equal the single-threaded local replay — zero
//! cross-tenant divergence — while the daemon's counters stay
//! monotone under concurrent polling. A second, deliberately
//! under-provisioned daemon must shed load with explicit `overloaded`
//! rejections rather than queue without bound.

use std::sync::atomic::{AtomicBool, Ordering};

use genprog::{wild_workload, WildConfig};
use implicit_core::env::ImplicitEnv;
use implicit_core::parse::parse_rule_type;
use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_pipeline::service::{Client, Daemon, DaemonConfig, Json};

const TENANTS: usize = 3;
const CLIENTS: usize = 6;
const QUERIES_PER_TENANT: usize = 40;

/// One tenant's workload in wire form: frames of printed rule types
/// (outermost first, as `open` expects) and the printed query
/// schedule.
struct Workload {
    frames: Vec<Vec<String>>,
    queries: Vec<String>,
}

fn workload(seed: u64) -> Workload {
    let w = wild_workload(seed, &WildConfig::field_study());
    let mut frames: Vec<Vec<String>> = w
        .env
        .frames_innermost_first()
        .map(|(_, rules)| rules.iter().map(|r| r.to_string()).collect())
        .collect();
    frames.reverse(); // outermost first
    let queries = w
        .queries
        .iter()
        .take(QUERIES_PER_TENANT)
        .map(|q| q.to_string())
        .collect();
    Workload { frames, queries }
}

/// One resolution outcome: `(steps, derivation)` or an error string —
/// the exact shape `Client::resolve` returns.
type Outcome = Result<(i64, String), String>;

/// The single-threaded ground truth: parse the *printed* rules back
/// (the daemon sees exactly these strings) and resolve locally.
fn local_replay(w: &Workload) -> Vec<Outcome> {
    let mut env = ImplicitEnv::new();
    for frame in &w.frames {
        let rules = frame
            .iter()
            .map(|r| parse_rule_type(r).expect("printed rule re-parses"))
            .collect();
        env.push(rules);
    }
    let policy = ResolutionPolicy::paper();
    w.queries
        .iter()
        .map(|q| {
            let query = parse_rule_type(q).expect("printed query re-parses");
            match resolve(&env, &query, &policy) {
                Ok(r) => Ok((r.steps() as i64, r.explain())),
                Err(e) => Err(e.to_string()),
            }
        })
        .collect()
}

#[test]
fn soak_concurrent_tenants_match_single_threaded_replay() {
    let workloads: Vec<Workload> = (0..TENANTS).map(|m| workload(9_000 + m as u64)).collect();
    let expected: Vec<Vec<Outcome>> = workloads.iter().map(local_replay).collect();

    let d = Daemon::start(DaemonConfig {
        max_tenants: TENANTS,
        queue_cap: 64,
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = d.addr();

    let mut admin = Client::connect(addr).unwrap();
    for (m, w) in workloads.iter().enumerate() {
        admin
            .open_frames(&format!("tenant-{m}"), &w.frames)
            .unwrap();
    }

    // The fixed request schedule: every (tenant, query) pair exactly
    // once, interleaved across client threads by index.
    let schedule: Vec<(usize, usize)> = (0..TENANTS)
        .flat_map(|m| (0..workloads[m].queries.len()).map(move |q| (m, q)))
        .collect();
    let total = schedule.len();

    let done = AtomicBool::new(false);
    let workloads = &workloads;
    let schedule = &schedule;
    let done = &done;
    let (results, polls) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("soak client connects");
                    let mut out = Vec::new();
                    for (i, &(m, q)) in schedule.iter().enumerate() {
                        if i % CLIENTS != t {
                            continue;
                        }
                        let r = client.resolve(&format!("tenant-{m}"), &workloads[m].queries[q]);
                        out.push((m, q, r));
                    }
                    out
                })
            })
            .collect();
        // Concurrent metrics polling: the counter stream must be
        // monotone even while tenants are mid-flight.
        let mut poller = Client::connect(addr).unwrap();
        let mut polls: Vec<i64> = Vec::new();
        while !done.load(Ordering::Acquire) {
            let m = poller.metrics().unwrap();
            let requests = m
                .get("daemon")
                .and_then(|c| c.int_field("requests"))
                .unwrap_or(0);
            polls.push(requests);
            if handles.iter().all(|h| h.is_finished()) {
                done.store(true, Ordering::Release);
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let results: Vec<_> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        (results, polls)
    });

    assert_eq!(results.len(), total, "every scheduled request ran once");
    for (m, q, got) in results {
        let want = &expected[m][q];
        match (want, &got) {
            (Ok((steps, derivation)), Ok((gs, gd))) => {
                assert_eq!(
                    (steps, derivation.as_str()),
                    (gs, gd.as_str()),
                    "tenant {m} query {q} diverged under load"
                );
            }
            (Err(_), Err(_)) => {}
            (want, got) => {
                panic!("tenant {m} query {q}: local {want:?} vs daemon {got:?} under load")
            }
        }
    }

    // Counters observed mid-flight never move backwards.
    assert!(
        polls.windows(2).all(|w| w[0] <= w[1]),
        "requests counter went backwards: {polls:?}"
    );

    // Closing joins each tenant thread, so every in-flight metrics
    // publish lands before the final read (registry entries outlive
    // their tenants).
    for m in 0..TENANTS {
        admin.close(&format!("tenant-{m}")).unwrap();
    }

    // Sweep-wide accounting: every scheduled request (plus the opens
    // and polls) is in the final counter, and per-tenant registries
    // carry resolution work for every tenant.
    let m = admin.metrics().unwrap();
    let requests = m
        .get("daemon")
        .and_then(|c| c.int_field("requests"))
        .unwrap();
    assert!(
        requests >= total as i64,
        "requests={requests} < total={total}"
    );
    let tenants = m.get("tenants").expect("per-tenant metrics");
    for (t, w) in workloads.iter().enumerate() {
        let queries = tenants
            .get(&format!("tenant-{t}"))
            .and_then(|reg| reg.int_field("queries"))
            .unwrap_or(0);
        assert!(
            queries >= w.queries.len() as i64,
            "tenant-{t} resolved only {queries} of {} queries",
            w.queries.len()
        );
    }
}

#[test]
fn overloaded_daemon_sheds_with_explicit_rejections() {
    // queue_cap 1 and slow-ish requests: concurrent clients must see
    // some explicit `overloaded` rejections, and everything accepted
    // must still answer correctly.
    let w = workload(77);
    let expected = local_replay(&w);
    let d = Daemon::start(DaemonConfig {
        max_tenants: 1,
        queue_cap: 1,
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = d.addr();
    let mut admin = Client::connect(addr).unwrap();
    admin.open_frames("t", &w.frames).unwrap();

    let w = &w;
    let expected = &expected;
    let outcomes: Vec<(usize, Outcome)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut out = Vec::new();
                    for (q, query) in w.queries.iter().enumerate() {
                        let _ = t; // distinct threads, same schedule: contention by design
                        out.push((q, client.resolve("t", query)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let mut rejected = 0usize;
    let mut served = 0usize;
    for (q, r) in outcomes {
        match r {
            Ok(got) => {
                served += 1;
                match &expected[q] {
                    Ok(want) => assert_eq!(want, &got, "query {q} wrong under overload"),
                    Err(e) => panic!("query {q}: local failed ({e}) but daemon served {got:?}"),
                }
            }
            Err(e) if e.starts_with("overloaded") => rejected += 1,
            Err(e) => match &expected[q] {
                // A genuinely failing query may fail under load too.
                Err(_) => {}
                Ok(_) => panic!("query {q}: unexpected error `{e}`"),
            },
        }
    }
    assert!(served > 0, "nothing was served at all");

    // The rejection path is visible in the counters even if this
    // particular interleaving got lucky; force at least one rejection
    // by checking the counter, which the race above almost always
    // trips. If it didn't, drive a deterministic overload: saturate
    // the queue from a wedged client-side burst.
    let m = admin.metrics().unwrap();
    let counted = m
        .get("daemon")
        .and_then(|c| c.int_field("rejected_overload"))
        .unwrap_or(0);
    assert_eq!(
        counted as usize, rejected,
        "counter disagrees with observed rejections"
    );
    assert!(
        rejected > 0,
        "8 threads × {} queries against queue_cap=1 never overloaded \
         (served {served})",
        w.queries.len()
    );
}

#[test]
fn tenant_capacity_is_enforced() {
    let d = Daemon::start(DaemonConfig {
        max_tenants: 1,
        ..DaemonConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(d.addr()).unwrap();
    let w = workload(5);
    c.open_frames("first", &w.frames).unwrap();
    let err = c.open_frames("second", &w.frames).unwrap_err();
    assert!(
        err.starts_with("tenants_exhausted"),
        "expected tenants_exhausted, got `{err}`"
    );
    // Closing frees the slot.
    c.close("first").unwrap();
    c.open_frames("second", &w.frames).unwrap();
    let r = c
        .request(&Json::obj(vec![
            ("op", Json::Str("open".into())),
            ("tenant", Json::Str("second".into())),
            (
                "frames",
                Json::Arr(vec![Json::Arr(vec![Json::Str("Int".into())])]),
            ),
        ]))
        .unwrap();
    assert_eq!(
        r.str_field("error"),
        Some("tenant_exists"),
        "{}",
        r.render()
    );
}
