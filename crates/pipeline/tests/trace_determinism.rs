//! Trace-determinism properties over generated programs:
//!
//! 1. the event stream of a pipeline run is a pure function of the
//!    program and policy — two runs produce identical streams;
//! 2. the derivation cache is observationally transparent — streams
//!    with the cache on and off agree modulo `CacheHit`/`CacheMiss`
//!    markers, both cold and against a warm session's reused cache.
//!
//! Events carry no wall-clock times and no interner ids, so equality
//! here is exact structural equality on the event values.

use std::cell::RefCell;
use std::rc::Rc;

use genprog::{data_prelude, gen_program_with, rng, GenConfig};
use implicit_core::resolve::ResolutionPolicy;
use implicit_core::syntax::{Declarations, Expr};
use implicit_core::trace::{CollectSink, SharedSink, TraceEvent};
use implicit_elab::Elaborator;
use implicit_pipeline::{Prelude, Session};

const SEEDS: u64 = 500;
const WARM_SEEDS: u64 = 120;
const CHAIN: usize = 6;

/// Elaborates `e` cold under `policy`, returning the trace stream
/// (the elaboration outcome itself may be an error — failed programs
/// must trace deterministically too).
fn cold_stream(decls: &Declarations, policy: &ResolutionPolicy, e: &Expr) -> Vec<TraceEvent> {
    let sink = Rc::new(RefCell::new(CollectSink::new()));
    let mut elab = Elaborator::with_policy(decls, policy.clone());
    elab.set_trace(Some(SharedSink::from_rc(sink.clone())));
    let _ = elab.elaborate(e);
    let events = std::mem::take(&mut sink.borrow_mut().events);
    events
}

fn without_cache_markers(events: &[TraceEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|ev| !ev.is_cache_marker())
        .cloned()
        .collect()
}

#[test]
fn cold_traces_are_deterministic_and_cache_transparent() {
    let decls = data_prelude();
    let config = GenConfig::default();
    let policy = ResolutionPolicy::paper();
    let uncached = policy.clone().without_cache();
    let mut traced = 0u64;

    for seed in 0..SEEDS {
        let mut r = rng(0x7ACE ^ seed);
        let prog = gen_program_with(&mut r, &config, &decls);

        let first = cold_stream(&decls, &policy, &prog.expr);
        let second = cold_stream(&decls, &policy, &prog.expr);
        assert_eq!(
            first, second,
            "[{seed}] two runs traced differently on {}",
            prog.expr
        );

        let cache_off = cold_stream(&decls, &uncached, &prog.expr);
        assert!(
            cache_off.iter().all(|ev| !ev.is_cache_marker()),
            "[{seed}] cache-off run emitted cache markers"
        );
        assert_eq!(
            without_cache_markers(&first),
            cache_off,
            "[{seed}] cache must be trace-transparent on {}",
            prog.expr
        );
        if !first.is_empty() {
            traced += 1;
        }
    }
    assert!(
        traced > SEEDS / 2,
        "suite degenerate: only {traced}/{SEEDS} programs produced events"
    );
}

#[test]
fn warm_session_reruns_trace_identically_modulo_cache_markers() {
    // A warm session's second run of the same program may answer
    // queries from the cache the first run populated; the cache-hit
    // replay must reproduce the original stream event for event.
    let decls = data_prelude();
    let config = GenConfig::default();
    let prelude = Prelude::chain(CHAIN);
    let mut sess =
        Session::new(&decls, ResolutionPolicy::paper(), &prelude).expect("chain prelude compiles");
    let sink = Rc::new(RefCell::new(CollectSink::new()));
    sess.set_trace(Some(SharedSink::from_rc(sink.clone())));
    let mut cache_hits_seen = 0u64;

    for seed in 0..WARM_SEEDS {
        let mut r = rng(0x5EED ^ seed);
        let prog = gen_program_with(&mut r, &config, &decls);

        let _ = sess.run(&prog.expr);
        let first = std::mem::take(&mut sink.borrow_mut().events);
        let _ = sess.run(&prog.expr);
        let second = std::mem::take(&mut sink.borrow_mut().events);

        cache_hits_seen += second
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::CacheHit { .. }))
            .count() as u64;
        assert_eq!(
            without_cache_markers(&first),
            without_cache_markers(&second),
            "[{seed}] warm rerun traced differently on {}",
            prog.expr
        );
    }
    assert!(
        cache_hits_seen > 0,
        "suite degenerate: warm reruns never hit the derivation cache"
    );
}
