//! Property tests for the operational semantics: determinism, fuel
//! monotonicity, and agreement on the random well-typed programs
//! from `genprog`.

use genprog::{gen_program, rng, GenConfig};
use implicit_core::parse::parse_expr;
use implicit_core::resolve::ResolutionPolicy;
use implicit_core::syntax::Declarations;
use implicit_opsem::{Interpreter, OpsemError};

#[test]
fn evaluation_is_deterministic_on_random_programs() {
    let decls = Declarations::new();
    let mut r = rng(0xA11CE);
    for i in 0..150 {
        let p = gen_program(&mut r, &GenConfig::default());
        let v1 = Interpreter::new(&decls).eval(&p.expr);
        let v2 = Interpreter::new(&decls).eval(&p.expr);
        match (v1, v2) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.try_eq(&b),
                Some(true),
                "program {i} evaluated differently"
            ),
            (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}")),
            (a, b) => panic!("program {i}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn fuel_exhaustion_is_monotone_on_random_programs() {
    // If a program completes within fuel f, larger budgets yield the
    // same value.
    let decls = Declarations::new();
    let mut r = rng(0xF00D);
    for _ in 0..50 {
        let p = gen_program(&mut r, &GenConfig::default());
        let full = Interpreter::new(&decls).eval(&p.expr).expect("well-typed");
        let mut succeeded_at = None;
        for fuel in [8u64, 64, 512, 4096, 1 << 20] {
            match Interpreter::new(&decls).with_fuel(fuel).eval(&p.expr) {
                Ok(v) => {
                    assert_eq!(v.try_eq(&full), Some(true));
                    succeeded_at.get_or_insert(fuel);
                }
                Err(OpsemError::OutOfFuel) => {
                    assert!(succeeded_at.is_none(), "fuel success must be monotone");
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(succeeded_at.is_some());
    }
}

#[test]
fn runtime_memo_agrees_with_uncached_evaluation_on_random_programs() {
    // The resolution memo is an optimization, not a semantics change:
    // every generated program evaluates identically with it disabled.
    let decls = Declarations::new();
    let mut r = rng(0xCAC4E);
    for i in 0..150 {
        let p = gen_program(&mut r, &GenConfig::default());
        let cached = Interpreter::new(&decls).eval(&p.expr);
        let uncached = Interpreter::new(&decls)
            .with_policy(ResolutionPolicy::paper().without_cache())
            .eval(&p.expr);
        match (cached, uncached) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.try_eq(&b),
                Some(true),
                "program {i} evaluated differently with the memo off"
            ),
            (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}")),
            (a, b) => panic!("program {i}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn runtime_memo_serves_repeated_queries_from_one_resolution() {
    // Three queries against the same stack: the first misses, the
    // other two are memo hits.
    let decls = Declarations::new();
    let e = parse_expr("implicit {21 : Int} in ?(Int) + ?(Int) + ?(Int) : Int").unwrap();
    let mut interp = Interpreter::new(&decls);
    let v = interp.eval(&e).unwrap();
    assert_eq!(v.try_eq(&implicit_opsem::Value::Int(63)), Some(true));
    let (hits, misses) = interp.memo_counters();
    assert_eq!(misses, 1, "only the first ?(Int) resolves from scratch");
    assert_eq!(hits, 2, "the remaining queries are memo hits");

    // With the cache disabled the counters never move.
    let mut interp =
        Interpreter::new(&decls).with_policy(ResolutionPolicy::paper().without_cache());
    interp.eval(&e).unwrap();
    assert_eq!(interp.memo_counters(), (0, 0));
}

#[test]
fn runtime_memo_distinguishes_shadowing_scopes() {
    // The same query under different stacks must not share entries:
    // an inner `implicit` frame shadows the outer binding.
    let decls = Declarations::new();
    let e = parse_expr(
        "implicit {1 : Int} in ?(Int) + (implicit {10 : Int} in ?(Int) : Int) + ?(Int) : Int",
    )
    .unwrap();
    let mut interp = Interpreter::new(&decls);
    let v = interp.eval(&e).unwrap();
    assert_eq!(v.try_eq(&implicit_opsem::Value::Int(12)), Some(true));
}

#[test]
fn value_display_is_stable_and_first_order_for_generated_programs() {
    // Generated programs produce first-order results whose printed
    // form is parse-stable (no closures leak out).
    let decls = Declarations::new();
    let mut r = rng(0x5EED);
    for _ in 0..100 {
        let p = gen_program(&mut r, &GenConfig::default());
        let v = Interpreter::new(&decls).eval(&p.expr).unwrap();
        let s = v.to_string();
        assert!(
            !s.contains("closure"),
            "first-order program leaked a closure: {s}"
        );
    }
}
