//! Property: the runtime resolution memo is semantically invisible.
//! Over a large seeded program corpus, evaluating with the memo
//! enabled and disabled must produce identical values (or identical
//! failures) — the memo may only change *work*, never *meaning*.

use genprog::{gen_program_with, rng, GenConfig};
use implicit_core::resolve::ResolutionPolicy;
use implicit_opsem::Interpreter;

#[test]
fn memo_never_changes_the_value_over_1000_programs() {
    let decls = genprog::data_prelude();
    let gen = GenConfig::default();
    let mut total_hits = 0u64;
    let mut total_misses = 0u64;
    for seed in 0..1000u64 {
        let mut r = rng(seed);
        let p = gen_program_with(&mut r, &gen, &decls);

        let mut with_memo = Interpreter::new(&decls);
        let on = with_memo.eval(&p.expr);
        let (hits, misses) = with_memo.memo_counters();
        total_hits += hits;
        total_misses += misses;

        let mut without_memo =
            Interpreter::new(&decls).with_policy(ResolutionPolicy::paper().without_cache());
        let off = without_memo.eval(&p.expr);

        match (&on, &off) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "seed {seed}: memo-on `{a}` vs memo-off `{b}`\n{}",
                p.expr
            ),
            (Err(a), Err(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "seed {seed}: differing failures\n{}",
                p.expr
            ),
            _ => panic!(
                "seed {seed}: memo changed success/failure: on={on:?} off={off:?}\n{}",
                p.expr
            ),
        }
        // The memo-off leg must not populate a memo at all.
        assert_eq!(
            without_memo.memo_counters(),
            (0, 0),
            "seed {seed}: memo disabled but counters moved"
        );
    }
    // Sanity: the corpus actually exercised the memo — otherwise
    // this property is vacuous.
    assert!(
        total_misses > 0,
        "no program ever consulted the runtime memo"
    );
    assert!(
        total_hits > 0,
        "no program ever repeated a memoized resolution"
    );
}
