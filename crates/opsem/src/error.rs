//! Runtime errors of the operational semantics.
//!
//! These are exactly the failure modes catalogued in the extended
//! report's §"Runtime Errors and Coherence Failures": lookup failures
//! (no matching rule / multiple matching rules), ambiguous
//! instantiations, plus the engineering backstops (fuel, stuck states
//! for ill-typed input).

use std::fmt;

use implicit_core::symbol::Symbol;
use implicit_core::syntax::{RuleType, Type};

/// A runtime error.
#[derive(Clone, Debug)]
pub enum OpsemError {
    /// Lookup failure: no rule in the runtime environment matches.
    NoMatch(Type),
    /// Lookup failure: several rules in one rule set match.
    Overlap {
        /// Queried type.
        target: Type,
        /// Competing rule types.
        candidates: Vec<RuleType>,
    },
    /// Resolution matched a rule without determining all of its
    /// quantifiers.
    AmbiguousInstantiation {
        /// The offending rule.
        rule: RuleType,
    },
    /// Resolution exceeded its depth bound.
    DepthExceeded {
        /// The query.
        query: RuleType,
        /// Configured bound.
        max_depth: usize,
    },
    /// Evaluation exceeded its step budget.
    OutOfFuel,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Unbound term variable (elaboration/typing bug).
    UnboundVar(Symbol),
    /// Evaluation reached a stuck state (only possible for ill-typed
    /// input).
    Stuck(String),
}

impl fmt::Display for OpsemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpsemError::NoMatch(t) => write!(f, "no rule matches type `{t}` at runtime"),
            OpsemError::Overlap { target, candidates } => write!(
                f,
                "overlapping rules for `{target}` at runtime: {}",
                candidates
                    .iter()
                    .map(|r| format!("`{r}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            OpsemError::AmbiguousInstantiation { rule } => {
                write!(f, "ambiguous instantiation of rule `{rule}` at runtime")
            }
            OpsemError::DepthExceeded { query, max_depth } => write!(
                f,
                "runtime resolution of `{query}` exceeded depth {max_depth}"
            ),
            OpsemError::OutOfFuel => f.write_str("evaluation exceeded its step budget"),
            OpsemError::DivisionByZero => f.write_str("division by zero"),
            OpsemError::UnboundVar(x) => write!(f, "unbound variable `{x}` at runtime"),
            OpsemError::Stuck(m) => write!(f, "evaluation stuck: {m}"),
        }
    }
}

impl std::error::Error for OpsemError {}
