//! The big-step operational semantics (extended report, Figure
//! "Operational Semantics").
//!
//! Unlike the elaboration semantics, resolution here happens **at
//! runtime**: a query walks the runtime implicit environment Σ — a
//! stack of rule sets `η = {ρ:v}` — matches a rule closure by type,
//! recursively resolves the part of its context the query does not
//! assume, and either evaluates the closure body (ground queries) or
//! returns a *partially resolved* closure `⟨ρ, θe′, θΣ′, v̄ ∪ θη′⟩`
//! (rule-typed queries).
//!
//! The runtime errors of the extended report's §"Runtime Errors and
//! Coherence Failures" are all represented: lookup failure (no
//! match / overlap), ambiguous instantiation, and — via fuel —
//! non-termination.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use implicit_core::env::OverlapPolicy;
use implicit_core::intern;
use implicit_core::resolve::ResolutionPolicy;
use implicit_core::subst::{freshen_rule, TySubst};
use implicit_core::symbol::fresh;
use implicit_core::syntax::{BinOp, Declarations, Expr, RuleType, Type, UnOp};
use implicit_core::unify;

use crate::error::OpsemError;
use crate::value::{Closure, ImplStack, Lookup, RuleClosure, Value, VarEnv};

/// The step budget a fresh [`Interpreter`] starts with; sessions
/// [`Interpreter::refuel`] to this between programs.
pub const DEFAULT_FUEL: u64 = 10_000_000;

/// The interpreter.
pub struct Interpreter<'d> {
    decls: &'d Declarations,
    policy: ResolutionPolicy,
    fuel: u64,
    memo: RuntimeMemo,
    trace: Option<implicit_core::trace::SharedSink>,
}

/// Memo key: the identity of every frame in the runtime stack
/// (innermost first) plus the interned query. Frames are persistent
/// `Rc` cells that are never mutated, so pointer equality of the whole
/// chain identifies the environment exactly; the entry pins a clone of
/// the stack so no frame address can be reused while the entry lives.
type MemoKey = (Vec<usize>, intern::RuleId);

/// A memo of runtime resolutions `Σ ⊢r ρ ⇓ v`, keyed by exact stack
/// identity — the runtime analogue of the core derivation cache.
/// Persistent stacks make invalidation unnecessary: pushing a frame
/// yields a new outer `Rc` and hence a new key.
struct RuntimeMemo {
    entries: HashMap<MemoKey, (Value, ImplStack)>,
    order: VecDeque<MemoKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl RuntimeMemo {
    fn new() -> RuntimeMemo {
        RuntimeMemo {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: implicit_core::env::DEFAULT_CACHE_CAPACITY,
            hits: 0,
            misses: 0,
        }
    }

    fn key(ienv: &ImplStack, query: &RuleType) -> MemoKey {
        let frames = ienv
            .frames_innermost_first()
            .map(|rc| Rc::as_ptr(rc) as *const () as usize)
            .collect();
        (frames, intern::rule_id(query))
    }

    fn lookup(&mut self, key: &MemoKey) -> Option<Value> {
        match self.entries.get(key) {
            Some((v, _)) => {
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: MemoKey, pin: ImplStack, v: Value) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.insert(key.clone(), (v, pin)).is_some() {
            // Overwrote an existing entry; its `order` slot stands.
            return;
        }
        self.order.push_back(key);
        while self.entries.len() > self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.entries.remove(&old);
                }
                None => break,
            }
        }
    }
}

/// One runtime-memo entry rooted in a persistent prelude stack,
/// exported for session artifacts (see `implicit-pipeline`).
///
/// Frame identity does not survive serialization, so the key is
/// reduced to the *depth* of the prelude-stack prefix it covered; the
/// importer re-keys against the rebuilt stack's frame `Rc`s.
#[derive(Clone, Debug)]
pub struct MemoExport {
    /// Number of outermost prelude frames the memo key covered.
    pub depth: usize,
    /// The memoized query.
    pub query: RuleType,
    /// The resolved value.
    pub value: Value,
}

impl<'d> Interpreter<'d> {
    /// An interpreter with the paper's resolution policy and a
    /// generous step budget.
    pub fn new(decls: &'d Declarations) -> Interpreter<'d> {
        Interpreter {
            decls,
            policy: ResolutionPolicy::paper(),
            fuel: DEFAULT_FUEL,
            memo: RuntimeMemo::new(),
            trace: None,
        }
    }

    /// Reports runtime-memo activity as structured trace events
    /// through `sink` (see [`implicit_core::trace`]); `None` clears.
    pub fn set_trace(&mut self, sink: Option<implicit_core::trace::SharedSink>) {
        self.trace = sink;
    }

    /// `(hits, misses)` of the runtime resolution memo, cumulative
    /// over this interpreter's lifetime.
    pub fn memo_counters(&self) -> (u64, u64) {
        (self.memo.hits, self.memo.misses)
    }

    /// Overrides the resolution policy.
    pub fn with_policy(mut self, policy: ResolutionPolicy) -> Interpreter<'d> {
        self.policy = policy;
        self
    }

    /// Overrides the step budget.
    pub fn with_fuel(mut self, fuel: u64) -> Interpreter<'d> {
        self.fuel = fuel;
        self
    }

    /// Resets the remaining step budget in place. A long-lived
    /// session calls this between programs so each one gets the full
    /// budget while the runtime memo (and its cross-program hits)
    /// survives.
    pub fn refuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Keeps only the memoized resolutions whose query id satisfies
    /// `keep`. Counters are untouched.
    ///
    /// Required before rolling the interning arena back to an
    /// [`intern::InternSnapshot`]: memo keys embed [`intern::RuleId`]s,
    /// and an id the truncation orphans could be reassigned to a
    /// different query later (pass `|id| snap.covers_rule(id)`).
    pub fn retain_memo(&mut self, keep: impl Fn(intern::RuleId) -> bool) {
        self.memo.entries.retain(|k, _| keep(k.1));
        self.memo.order.retain(|k| keep(k.1));
    }

    /// Exports the runtime-memo entries rooted in the prelude stack
    /// `stack`: entries whose frame-identity key is a prefix (by
    /// depth) of `stack`'s frames. Entries keyed by program-local
    /// frames are skipped — their `Rc` identities die with this
    /// process. Iterates in insertion order so the export (and any
    /// artifact embedding it) is deterministic.
    pub fn export_memo_roots(&self, stack: &ImplStack) -> Vec<MemoExport> {
        let full: Vec<usize> = stack
            .frames_innermost_first()
            .map(|rc| Rc::as_ptr(rc) as *const () as usize)
            .collect();
        let n = full.len();
        let mut out = Vec::new();
        for key in &self.memo.order {
            let k = key.0.len();
            if k > n || key.0[..] != full[n - k..] {
                continue;
            }
            let Some(query) = intern::rule_of(key.1) else {
                continue;
            };
            let Some((value, _pin)) = self.memo.entries.get(key) else {
                continue;
            };
            out.push(MemoExport {
                depth: k,
                query,
                value: value.clone(),
            });
        }
        out
    }

    /// Imports memo entries exported by [`Interpreter::export_memo_roots`],
    /// re-keying them against the rebuilt prelude stack `stack` (whose
    /// frame `Rc`s are this process's identities for those frames).
    /// Entries deeper than `stack` are dropped.
    pub fn import_memo_roots(&mut self, stack: &ImplStack, roots: Vec<MemoExport>) {
        for root in roots {
            if root.depth > stack.depth() {
                continue;
            }
            let pin = stack.truncated(root.depth);
            let key = RuntimeMemo::key(&pin, &root.query);
            self.memo.insert(key, pin, root.value);
        }
    }

    /// Evaluates a closed expression.
    ///
    /// # Errors
    ///
    /// Returns an [`OpsemError`] on runtime resolution failure,
    /// primitive failure, or fuel exhaustion.
    pub fn eval(&mut self, e: &Expr) -> Result<Value, OpsemError> {
        self.eval_in(&VarEnv::new(), &ImplStack::new(), e)
    }

    fn tick(&mut self) -> Result<(), OpsemError> {
        if self.fuel == 0 {
            return Err(OpsemError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// The judgment `Σ ⊢ e ⇓ v` (with the term environment made
    /// explicit for the host fragment).
    pub fn eval_in(
        &mut self,
        venv: &VarEnv,
        ienv: &ImplStack,
        e: &Expr,
    ) -> Result<Value, OpsemError> {
        self.tick()?;
        match e {
            Expr::Int(n) => Ok(Value::Int(*n)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Str(s) => Ok(Value::Str(Rc::from(s.as_str()))),
            Expr::Unit => Ok(Value::Unit),
            Expr::Var(x) => match venv.get(*x) {
                Some(Lookup::Done(v)) => Ok(v),
                Some(Lookup::Rec { body, ienv, env }) => {
                    let env2 = env.bind_rec(*x, body.clone(), ienv.clone());
                    self.eval_in(&env2, &ienv, &body)
                }
                None => Err(OpsemError::UnboundVar(*x)),
            },
            Expr::Lam(x, _, b) => Ok(Value::Closure(Rc::new(Closure {
                param: *x,
                body: b.clone(),
                venv: venv.clone(),
                ienv: ienv.clone(),
            }))),
            Expr::App(f, a) => {
                let vf = self.eval_in(venv, ienv, f)?;
                let va = self.eval_in(venv, ienv, a)?;
                self.apply(vf, va)
            }
            // OpQuery
            Expr::Query(rho) => self.resolve_value(ienv, rho, self.policy.max_depth),
            // OpRule: build a closure with an empty partial context.
            Expr::RuleAbs(rho, b) => Ok(Value::Rule(Rc::new(RuleClosure {
                rty: (**rho).clone(),
                body: b.clone(),
                venv: venv.clone(),
                ienv: ienv.clone(),
                partial: Vec::new(),
            }))),
            // OpInst: strip the quantifiers, substitute throughout.
            Expr::TyApp(f, args) => {
                let vf = self.eval_in(venv, ienv, f)?;
                let Value::Rule(rc) = vf else {
                    return Err(OpsemError::Stuck(format!(
                        "type application of non-rule value {vf}"
                    )));
                };
                if rc.rty.vars().len() != args.len() {
                    return Err(OpsemError::Stuck(format!(
                        "type application arity: rule `{}` applied to {} argument(s)",
                        rc.rty,
                        args.len()
                    )));
                }
                let inst = instantiate(self.decls, &rc, args);
                if inst.rty.context().is_empty() {
                    // The instantiated type `{} ⇒ τ` is identified
                    // with `τ` (the calculus collapses trivial rule
                    // types), so force the body now — exactly what
                    // the elaboration `E |τ̄|` does in System F.
                    let inner = inst.ienv.pushed(inst.partial.clone());
                    self.eval_in(&inst.venv, &inner, &inst.body)
                } else {
                    Ok(Value::Rule(Rc::new(inst)))
                }
            }
            // OpRApp: supply the context and run the body under
            // Σ′; ({ρ̄:v̄} ∪ η′).
            Expr::RuleApp(f, args) => {
                let vf = self.eval_in(venv, ienv, f)?;
                let Value::Rule(rc) = vf else {
                    return Err(OpsemError::Stuck(format!(
                        "rule application of non-rule value {vf}"
                    )));
                };
                if !rc.rty.vars().is_empty() {
                    return Err(OpsemError::Stuck(format!(
                        "rule application of still-polymorphic rule `{}`",
                        rc.rty
                    )));
                }
                let mut frame: Vec<(RuleType, Value)> =
                    Vec::with_capacity(args.len() + rc.partial.len());
                for (ae, arho) in args {
                    let av = self.eval_in(venv, ienv, ae)?;
                    push_distinct(&mut frame, arho.clone(), av);
                }
                for (r, v) in &rc.partial {
                    push_distinct(&mut frame, r.clone(), v.clone());
                }
                let inner = rc.ienv.pushed(frame);
                self.eval_in(&rc.venv, &inner, &rc.body)
            }
            Expr::If(c, t, f) => match self.eval_in(venv, ienv, c)? {
                Value::Bool(true) => self.eval_in(venv, ienv, t),
                Value::Bool(false) => self.eval_in(venv, ienv, f),
                other => Err(OpsemError::Stuck(format!("if on {other}"))),
            },
            Expr::BinOp(op, a, b) => {
                let va = self.eval_in(venv, ienv, a)?;
                let vb = self.eval_in(venv, ienv, b)?;
                binop(*op, va, vb)
            }
            Expr::UnOp(op, a) => {
                let va = self.eval_in(venv, ienv, a)?;
                match (op, va) {
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(-n)),
                    (UnOp::IntToStr, Value::Int(n)) => Ok(Value::Str(Rc::from(n.to_string()))),
                    (op, v) => Err(OpsemError::Stuck(format!("{op:?} on {v}"))),
                }
            }
            Expr::Pair(a, b) => Ok(Value::Pair(
                Rc::new(self.eval_in(venv, ienv, a)?),
                Rc::new(self.eval_in(venv, ienv, b)?),
            )),
            // Elimination forms take their payload by move when the
            // scrutinee value is uniquely owned (the common case for
            // freshly built intermediates), falling back to a clone
            // only for shared values.
            Expr::Fst(a) => match self.eval_in(venv, ienv, a)? {
                Value::Pair(l, _) => Ok(Rc::try_unwrap(l).unwrap_or_else(|rc| (*rc).clone())),
                other => Err(OpsemError::Stuck(format!("fst on {other}"))),
            },
            Expr::Snd(a) => match self.eval_in(venv, ienv, a)? {
                Value::Pair(_, r) => Ok(Rc::try_unwrap(r).unwrap_or_else(|rc| (*rc).clone())),
                other => Err(OpsemError::Stuck(format!("snd on {other}"))),
            },
            Expr::Nil(_) => Ok(Value::List(Rc::new(Vec::new()))),
            Expr::Cons(h, t) => {
                let vh = self.eval_in(venv, ienv, h)?;
                match self.eval_in(venv, ienv, t)? {
                    Value::List(xs) => match Rc::try_unwrap(xs) {
                        Ok(mut owned) => {
                            owned.insert(0, vh);
                            Ok(Value::List(Rc::new(owned)))
                        }
                        Err(shared) => {
                            let mut out = Vec::with_capacity(shared.len() + 1);
                            out.push(vh);
                            out.extend(shared.iter().cloned());
                            Ok(Value::List(Rc::new(out)))
                        }
                    },
                    other => Err(OpsemError::Stuck(format!("cons onto {other}"))),
                }
            }
            Expr::ListCase {
                scrut,
                nil,
                head,
                tail,
                cons,
            } => match self.eval_in(venv, ienv, scrut)? {
                Value::List(xs) => match Rc::try_unwrap(xs) {
                    Ok(mut owned) => {
                        if owned.is_empty() {
                            self.eval_in(venv, ienv, nil)
                        } else {
                            let h = owned.remove(0);
                            let env2 = venv.bind(*head, h).bind(*tail, Value::List(Rc::new(owned)));
                            self.eval_in(&env2, ienv, cons)
                        }
                    }
                    Err(shared) => {
                        if let Some((h, rest)) = shared.split_first() {
                            let env2 = venv
                                .bind(*head, h.clone())
                                .bind(*tail, Value::List(Rc::new(rest.to_vec())));
                            self.eval_in(&env2, ienv, cons)
                        } else {
                            self.eval_in(venv, ienv, nil)
                        }
                    }
                },
                other => Err(OpsemError::Stuck(format!("case on {other}"))),
            },
            Expr::Fix(x, _, b) => {
                let env2 = venv.bind_rec(*x, b.clone(), ienv.clone());
                self.eval_in(&env2, ienv, b)
            }
            Expr::Make(name, _, fields) => {
                if self.decls.lookup(*name).is_none() {
                    return Err(OpsemError::Stuck(format!("unknown interface `{name}`")));
                }
                let mut out = Vec::with_capacity(fields.len());
                for (u, fe) in fields {
                    out.push((*u, self.eval_in(venv, ienv, fe)?));
                }
                Ok(Value::Record {
                    name: *name,
                    fields: Rc::new(out),
                })
            }
            Expr::Inject(ctor, _, args) => {
                if self.decls.lookup_ctor(*ctor).is_none() {
                    return Err(OpsemError::Stuck(format!("unknown constructor `{ctor}`")));
                }
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(self.eval_in(venv, ienv, a)?);
                }
                Ok(Value::Data {
                    ctor: *ctor,
                    fields: Rc::new(out),
                })
            }
            Expr::Match(scrut, arms) => match self.eval_in(venv, ienv, scrut)? {
                Value::Data { ctor, fields } => {
                    let Some(arm) = arms.iter().find(|a| a.ctor == ctor) else {
                        return Err(OpsemError::Stuck(format!("no arm for `{ctor}`")));
                    };
                    if arm.binders.len() != fields.len() {
                        return Err(OpsemError::Stuck(format!(
                            "arm `{ctor}` binder count mismatch"
                        )));
                    }
                    let mut env2 = venv.clone();
                    match Rc::try_unwrap(fields) {
                        Ok(owned) => {
                            for (b, v) in arm.binders.iter().zip(owned) {
                                env2 = env2.bind(*b, v);
                            }
                        }
                        Err(shared) => {
                            for (b, v) in arm.binders.iter().zip(shared.iter()) {
                                env2 = env2.bind(*b, v.clone());
                            }
                        }
                    }
                    self.eval_in(&env2, ienv, &arm.body)
                }
                other => Err(OpsemError::Stuck(format!("match on {other}"))),
            },
            Expr::Proj(rec, field) => match self.eval_in(venv, ienv, rec)? {
                Value::Record { name, fields } => {
                    let Some(pos) = fields.iter().position(|(u, _)| u == field) else {
                        return Err(OpsemError::Stuck(format!(
                            "record {name} has no field {field}"
                        )));
                    };
                    Ok(match Rc::try_unwrap(fields) {
                        Ok(mut owned) => owned.swap_remove(pos).1,
                        Err(shared) => shared[pos].1.clone(),
                    })
                }
                other => Err(OpsemError::Stuck(format!("projection on {other}"))),
            },
        }
    }

    /// Applies a function value.
    ///
    /// # Errors
    ///
    /// Returns [`OpsemError::Stuck`] when `f` is not a function.
    pub fn apply(&mut self, f: Value, a: Value) -> Result<Value, OpsemError> {
        match f {
            Value::Closure(c) => {
                let env2 = c.venv.bind(c.param, a);
                self.eval_in(&env2, &c.ienv, &c.body)
            }
            other => Err(OpsemError::Stuck(format!("apply non-function {other}"))),
        }
    }

    /// Runtime resolution `Σ ⊢r ρ ⇓ v` (rule `DynRes`).
    ///
    /// When [`ResolutionPolicy::cache`] is on (the default), successful
    /// resolutions are memoized per `(stack identity, query)`; a memo
    /// hit returns the shared value without re-running lookup or the
    /// closure body, so it consumes one tick rather than the full
    /// evaluation's budget (fuel is an engineering backstop, not an
    /// observable of the semantics).
    pub fn resolve_value(
        &mut self,
        ienv: &ImplStack,
        query: &RuleType,
        depth: usize,
    ) -> Result<Value, OpsemError> {
        self.tick()?;
        if depth == 0 {
            return Err(OpsemError::DepthExceeded {
                query: query.clone(),
                max_depth: self.policy.max_depth,
            });
        }
        if !self.policy.cache {
            return self.resolve_value_uncached(ienv, query, depth);
        }
        let key = RuntimeMemo::key(ienv, query);
        if let Some(v) = self.memo.lookup(&key) {
            self.emit_memo(query, true);
            return Ok(v);
        }
        self.emit_memo(query, false);
        let v = self.resolve_value_uncached(ienv, query, depth)?;
        self.memo.insert(key, ienv.clone(), v.clone());
        Ok(v)
    }

    /// Emits a memo hit/miss event when a trace sink is installed.
    fn emit_memo(&mut self, query: &RuleType, hit: bool) {
        use implicit_core::trace::{TraceEvent, TraceSink};
        if let Some(sink) = &self.trace {
            let mut sink = sink.clone();
            if sink.enabled() {
                let query = query.to_string();
                sink.event(if hit {
                    TraceEvent::MemoHit { query }
                } else {
                    TraceEvent::MemoMiss { query }
                });
            }
        }
    }

    fn resolve_value_uncached(
        &mut self,
        ienv: &ImplStack,
        query: &RuleType,
        depth: usize,
    ) -> Result<Value, OpsemError> {
        let target = query.head();
        let (stored_rty, matched) = lookup_runtime(ienv, target, self.policy.overlap)?;

        match matched {
            Value::Rule(rc) => {
                // Freshen the closure's quantifiers, match the head.
                let (fresh_rty, renaming) = freshen_rule(&rc.rty);
                let Some(theta_f) = unify::match_type(fresh_rty.head(), target, fresh_rty.vars())
                else {
                    // lookup_runtime already matched; this indicates a
                    // frame with a stale key.
                    return Err(OpsemError::Stuck(format!(
                        "environment entry `{stored_rty}` stopped matching `{target}`"
                    )));
                };
                // Every quantifier must be determined (ambiguous
                // instantiation check of the extended report).
                for v in fresh_rty.vars() {
                    if theta_f.get(*v).is_none() {
                        return Err(OpsemError::AmbiguousInstantiation {
                            rule: rc.rty.clone(),
                        });
                    }
                }
                let full = theta_f.compose(&renaming);
                let inst_context = full.apply_context(rc.rty.context());
                // θπ′ − π: resolve premises the query does not assume.
                // Instantiation may collapse several premises onto one
                // type (e.g. ∀a b.{Eq a, Eq b} at a = b); by coherence
                // their evidence is identical, so collapsed premises
                // are resolved once — a frame with two entries of the
                // same type would be an overlap error at the next
                // query.
                let mut resolved: Vec<(RuleType, Value)> = Vec::new();
                for rho_i in &inst_context {
                    if implicit_core::alpha::context_position(query.context(), rho_i).is_some() {
                        continue;
                    }
                    if resolved
                        .iter()
                        .any(|(r, _)| implicit_core::alpha::alpha_eq(r, rho_i))
                    {
                        continue;
                    }
                    let vi = self.resolve_value(ienv, rho_i, depth - 1)?;
                    resolved.push((rho_i.clone(), vi));
                }
                let body = Rc::new(full.apply_expr(&rc.body));
                let venv = subst_varenv(&full, &rc.venv);
                let cenv = rc.ienv.subst(&full);
                let mut partial: Vec<(RuleType, Value)> = resolved;
                for (r, v) in &rc.partial {
                    push_distinct(&mut partial, full.apply_rule(r), v.subst(&full));
                }
                if query.is_trivial() {
                    // Ground query: the context is fully resolved;
                    // run the body now.
                    let inner = cenv.pushed(partial);
                    self.eval_in(&venv, &inner, &body)
                } else {
                    // Rule-typed query: return the partially resolved
                    // closure ⟨ρ, θe′, θΣ′, v̄ ∪ θη′⟩.
                    Ok(Value::Rule(Rc::new(RuleClosure {
                        rty: query.clone(),
                        body,
                        venv,
                        ienv: cenv,
                        partial,
                    })))
                }
            }
            plain => {
                if query.is_trivial() {
                    Ok(plain)
                } else {
                    // A first-order value answering a rule-typed
                    // query: wrap it in a constant closure that
                    // ignores the assumed context.
                    let boxed = fresh("boxed");
                    Ok(Value::Rule(Rc::new(RuleClosure {
                        rty: query.clone(),
                        body: Rc::new(Expr::Var(boxed)),
                        venv: VarEnv::new().bind(boxed, plain),
                        ienv: ImplStack::new(),
                        partial: Vec::new(),
                    })))
                }
            }
        }
    }
}

/// Pushes an entry unless an α-equal rule type is already present —
/// substitution-collapsed duplicates carry identical evidence by
/// coherence, and duplicated types in one rule set are lookup errors.
fn push_distinct(frame: &mut Vec<(RuleType, Value)>, rho: RuleType, v: Value) {
    if !frame
        .iter()
        .any(|(r, _)| implicit_core::alpha::alpha_eq(r, &rho))
    {
        frame.push((rho, v));
    }
}

/// OpInst: `⟨∀ᾱ.π ⇒ τ, e, Σ, η⟩[τ̄] = [ᾱ↦τ̄]⟨π ⇒ τ, e, Σ, η⟩`.
///
/// Bare interface names supplied for arrow-kinded quantifiers are
/// coerced to constructor references, as in the type checker.
fn instantiate(decls: &Declarations, rc: &RuleClosure, args: &[Type]) -> RuleClosure {
    use implicit_core::syntax::TyCon;
    let kinds = implicit_core::typeck::infer_binder_kinds(decls, &rc.rty).unwrap_or_default();
    let args: Vec<Type> = rc
        .rty
        .vars()
        .iter()
        .zip(args)
        .map(|(v, a)| match (kinds.get(v).copied().unwrap_or(0), a) {
            (k, Type::Con(n, empty)) if k > 0 && empty.is_empty() => Type::Ctor(TyCon::Named(*n)),
            _ => a.clone(),
        })
        .collect();
    let args = &args[..];
    let theta = TySubst::bind_all(rc.rty.vars(), args);
    RuleClosure {
        rty: RuleType::new(
            Vec::new(),
            theta.apply_context(rc.rty.context()),
            theta.apply_type(rc.rty.head()),
        ),
        body: Rc::new(theta.apply_expr(&rc.body)),
        venv: subst_varenv(&theta, &rc.venv),
        ienv: rc.ienv.subst(&theta),
        partial: rc
            .partial
            .iter()
            .map(|(r, v)| (theta.apply_rule(r), v.subst(&theta)))
            .collect(),
    }
}

fn subst_varenv(theta: &TySubst, env: &VarEnv) -> VarEnv {
    if theta.is_empty() {
        return env.clone();
    }
    // VarEnv::subst is private to the value module; route through a
    // value wrapper.
    crate::value::subst_varenv(theta, env)
}

/// Runtime lookup `Σ⟨τ⟩ = v`: innermost frame with at least one
/// match decides; within a frame the match must be unique (or
/// uniquely most specific).
fn lookup_runtime(
    ienv: &ImplStack,
    target: &Type,
    policy: OverlapPolicy,
) -> Result<(RuleType, Value), OpsemError> {
    let target_key = intern::head_key(target);
    for frame in ienv.frames_innermost_first() {
        let mut matches: Vec<usize> = Vec::new();
        for (ix, (rho, _)) in frame.iter().enumerate() {
            // Head-constructor pre-filter: a rule whose head key does
            // not admit the target's key cannot match.
            if !intern::head_key(rho.head()).admits(target_key) {
                continue;
            }
            let hit = if rho.vars().is_empty() {
                // Freshening is the identity for var-less rules, so
                // match the stored rule directly (the matcher short-
                // circuits ground heads by interned id).
                unify::head_matches(rho, target).is_some()
            } else {
                let (fresh_rho, _) = freshen_rule(rho);
                unify::head_matches(&fresh_rho, target).is_some()
            };
            if hit {
                matches.push(ix);
            }
        }
        match matches.len() {
            0 => continue,
            1 => {
                let (r, v) = &frame[matches[0]];
                return Ok((r.clone(), v.clone()));
            }
            _ => {
                // Exact evidence takes priority: when instantiation
                // makes a supplied context entry collide with a more
                // general rule (the `Perfect`-instance pattern:
                // `(f a) → String` vs `∀b.{b→String} ⇒ f b → String`
                // at `a := b`), the entry whose type *is* the queried
                // type is the one the positional elaboration
                // semantics used, so runtime lookup prefers it.
                // Genuinely incomparable overlap still errors (or
                // defers to the most-specific policy).
                let exact: Vec<usize> = matches
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let rty = &frame[i].0;
                        rty.vars().is_empty()
                            && rty.context().is_empty()
                            && implicit_core::alpha::alpha_eq_type(rty.head(), target)
                    })
                    .collect();
                if exact.len() == 1 {
                    let (r, v) = &frame[exact[0]];
                    return Ok((r.clone(), v.clone()));
                }
                if policy == OverlapPolicy::MostSpecific {
                    if let Some(win) = pick_most_specific_runtime(frame, &matches) {
                        let (r, v) = &frame[win];
                        return Ok((r.clone(), v.clone()));
                    }
                }
                return Err(OpsemError::Overlap {
                    target: target.clone(),
                    candidates: matches.iter().map(|&i| frame[i].0.clone()).collect(),
                });
            }
        }
    }
    Err(OpsemError::NoMatch(target.clone()))
}

fn pick_most_specific_runtime(frame: &[(RuleType, Value)], matches: &[usize]) -> Option<usize> {
    let specific = |i: usize, j: usize| {
        let (fi, _) = freshen_rule(&frame[i].0);
        let (fj, _) = freshen_rule(&frame[j].0);
        unify::match_type(fj.head(), fi.head(), fj.vars()).is_some()
    };
    'outer: for &i in matches {
        for &j in matches {
            if i != j && !specific(i, j) {
                continue 'outer;
            }
        }
        for &j in matches {
            if i != j && specific(j, i) && !implicit_core::alpha::alpha_eq(&frame[i].0, &frame[j].0)
            {
                return None;
            }
        }
        return Some(i);
    }
    None
}

fn binop(op: BinOp, a: Value, b: Value) -> Result<Value, OpsemError> {
    use BinOp::*;
    match (op, &a, &b) {
        (Add, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(*y))),
        (Sub, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_sub(*y))),
        (Mul, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_mul(*y))),
        (Div, Value::Int(_), Value::Int(0)) | (Mod, Value::Int(_), Value::Int(0)) => {
            Err(OpsemError::DivisionByZero)
        }
        (Div, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_div(*y))),
        (Mod, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_rem(*y))),
        (Lt, Value::Int(x), Value::Int(y)) => Ok(Value::Bool(x < y)),
        (Le, Value::Int(x), Value::Int(y)) => Ok(Value::Bool(x <= y)),
        (And, Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(*x && *y)),
        (Or, Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(*x || *y)),
        (Concat, Value::Str(x), Value::Str(y)) => {
            Ok(Value::Str(Rc::from(format!("{x}{y}").as_str())))
        }
        (Eq, a, b) => a
            .try_eq(b)
            .map(Value::Bool)
            .ok_or_else(|| OpsemError::Stuck("equality on closures".into())),
        (op, a, b) => Err(OpsemError::Stuck(format!("{op:?} on {a} and {b}"))),
    }
}

/// Evaluates a closed expression with default settings.
///
/// # Errors
///
/// See [`Interpreter::eval`].
pub fn eval(decls: &Declarations, e: &Expr) -> Result<Value, OpsemError> {
    Interpreter::new(decls).eval(e)
}
