//! Artifact serialization for operational-semantics runtime state.
//!
//! Mirrors [`systemf::wire`]'s design for the opsem leg: runtime
//! [`Value`] graphs (function and rule closures with their captured
//! [`VarEnv`] spines and [`ImplStack`]s) are encoded with
//! pointer-identity memo tables so the decoder rebuilds the exact
//! sharing structure. Rebuilding sharing is not merely a size
//! optimization here: the runtime memo keys resolutions by frame
//! *pointer identity*, so closures rehydrated from an artifact must
//! share their `Rc` frames with the rehydrated prelude stack for
//! imported memo entries to ever hit.
//!
//! Rule types and expressions ride on the core wire format
//! ([`implicit_core::wire`]), with an extra pointer memo for shared
//! `Rc<Expr>` bodies.

use std::collections::HashMap;
use std::rc::Rc;

use implicit_core::symbol::Symbol;
use implicit_core::syntax::{Expr, RuleType};
use implicit_core::wire::{Dec, Enc, WireError};

use crate::value::{Closure, ImplStack, RuleClosure, Value, VarBinding, VarEnv, VarNode};

fn err<T>(msg: String) -> Result<T, WireError> {
    Err(WireError(msg))
}

/// Encoder context for opsem runtime state.
pub struct OpEnc<'a> {
    /// The underlying byte encoder (shared symbol/type memo).
    pub e: &'a mut Enc,
    venvs: HashMap<usize, u32>,
    vals: HashMap<usize, u32>,
    valvecs: HashMap<usize, u32>,
    recfields: HashMap<usize, u32>,
    exprs: HashMap<usize, u32>,
    closures: HashMap<usize, u32>,
    rules: HashMap<usize, u32>,
    frames: HashMap<usize, u32>,
}

impl<'a> OpEnc<'a> {
    /// Wraps `e` with fresh memo tables.
    pub fn new(e: &'a mut Enc) -> OpEnc<'a> {
        OpEnc {
            e,
            venvs: HashMap::new(),
            vals: HashMap::new(),
            valvecs: HashMap::new(),
            recfields: HashMap::new(),
            exprs: HashMap::new(),
            closures: HashMap::new(),
            rules: HashMap::new(),
            frames: HashMap::new(),
        }
    }

    /// Writes a shared expression body, memoized by pointer.
    pub fn expr_rc(&mut self, r: &Rc<Expr>) {
        let key = Rc::as_ptr(r) as usize;
        if let Some(&ix) = self.exprs.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.e.expr(r);
        let ix = u32::try_from(self.exprs.len()).expect("expr memo overflow");
        self.exprs.insert(key, ix);
    }

    /// Writes a runtime value.
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Int(n) => {
                self.e.u8(0);
                self.e.i64(*n);
            }
            Value::Bool(b) => {
                self.e.u8(1);
                self.e.bool(*b);
            }
            Value::Str(s) => {
                self.e.u8(2);
                self.e.str(s);
            }
            Value::Unit => self.e.u8(3),
            Value::Pair(a, b) => {
                self.e.u8(4);
                self.val_rc(a);
                self.val_rc(b);
            }
            Value::List(xs) => {
                self.e.u8(5);
                self.valvec(xs);
            }
            Value::Closure(c) => {
                self.e.u8(6);
                self.closure(c);
            }
            Value::Rule(rc) => {
                self.e.u8(7);
                self.rule_closure(rc);
            }
            Value::Record { name, fields } => {
                self.e.u8(8);
                self.e.sym(*name);
                self.recfields(fields);
            }
            Value::Data { ctor, fields } => {
                self.e.u8(9);
                self.e.sym(*ctor);
                self.valvec(fields);
            }
        }
    }

    fn val_rc(&mut self, r: &Rc<Value>) {
        let key = Rc::as_ptr(r) as usize;
        if let Some(&ix) = self.vals.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.value(r);
        let ix = u32::try_from(self.vals.len()).expect("value memo overflow");
        self.vals.insert(key, ix);
    }

    fn valvec(&mut self, r: &Rc<Vec<Value>>) {
        let key = Rc::as_ptr(r) as usize;
        if let Some(&ix) = self.valvecs.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.e.len(r.len());
        for v in r.iter() {
            self.value(v);
        }
        let ix = u32::try_from(self.valvecs.len()).expect("valvec memo overflow");
        self.valvecs.insert(key, ix);
    }

    fn recfields(&mut self, r: &Rc<Vec<(Symbol, Value)>>) {
        let key = Rc::as_ptr(r) as usize;
        if let Some(&ix) = self.recfields.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.e.len(r.len());
        for (f, v) in r.iter() {
            self.e.sym(*f);
            self.value(v);
        }
        let ix = u32::try_from(self.recfields.len()).expect("recfields memo overflow");
        self.recfields.insert(key, ix);
    }

    fn closure(&mut self, c: &Rc<Closure>) {
        let key = Rc::as_ptr(c) as usize;
        if let Some(&ix) = self.closures.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.e.sym(c.param);
        self.expr_rc(&c.body);
        self.varenv(&c.venv);
        self.implstack(&c.ienv);
        let ix = u32::try_from(self.closures.len()).expect("closure memo overflow");
        self.closures.insert(key, ix);
    }

    fn rule_closure(&mut self, c: &Rc<RuleClosure>) {
        let key = Rc::as_ptr(c) as usize;
        if let Some(&ix) = self.rules.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.e.rule(&c.rty);
        self.expr_rc(&c.body);
        self.varenv(&c.venv);
        self.implstack(&c.ienv);
        self.e.len(c.partial.len());
        for (r, v) in &c.partial {
            self.e.rule(r);
            self.value(v);
        }
        let ix = u32::try_from(self.rules.len()).expect("rule-closure memo overflow");
        self.rules.insert(key, ix);
    }

    /// Writes a term-environment spine (iteratively, outermost new
    /// node first — see `systemf::wire` for the discipline).
    pub fn varenv(&mut self, env: &VarEnv) {
        let mut fresh: Vec<Rc<VarNode>> = Vec::new();
        let mut tail: Option<u32> = None;
        for n in env.nodes() {
            let key = Rc::as_ptr(n) as usize;
            if let Some(&ix) = self.venvs.get(&key) {
                tail = Some(ix);
                break;
            }
            fresh.push(n.clone());
        }
        self.e.len(fresh.len());
        match tail {
            None => self.e.u8(0),
            Some(ix) => {
                self.e.u8(1);
                self.e.u32(ix);
            }
        }
        for n in fresh.iter().rev() {
            self.e.sym(n.name);
            match &n.value {
                VarBinding::Done(v) => {
                    self.e.u8(0);
                    self.value(v);
                }
                VarBinding::Rec {
                    body,
                    ienv,
                    next_is_env,
                } => {
                    self.e.u8(1);
                    self.expr_rc(body);
                    self.implstack(ienv);
                    self.varenv(next_is_env);
                }
            }
            let key = Rc::as_ptr(n) as usize;
            let ix = u32::try_from(self.venvs.len()).expect("varenv memo overflow");
            self.venvs.insert(key, ix);
        }
    }

    /// Writes an implicit-environment stack (frames outermost first,
    /// each memoized by pointer so prefixes shared between the
    /// prelude stack and captured closures stay shared).
    pub fn implstack(&mut self, s: &ImplStack) {
        self.e.len(s.frames.len());
        for f in &s.frames {
            self.frame(f);
        }
    }

    fn frame(&mut self, f: &Rc<Vec<(RuleType, Value)>>) {
        let key = Rc::as_ptr(f) as usize;
        if let Some(&ix) = self.frames.get(&key) {
            self.e.u8(0);
            self.e.u32(ix);
            return;
        }
        self.e.u8(1);
        self.e.len(f.len());
        for (r, v) in f.iter() {
            self.e.rule(r);
            self.value(v);
        }
        let ix = u32::try_from(self.frames.len()).expect("frame memo overflow");
        self.frames.insert(key, ix);
    }
}

/// Decoder context mirroring [`OpEnc`].
pub struct OpDec<'a, 'b> {
    /// The underlying byte decoder.
    pub d: &'b mut Dec<'a>,
    venvs: Vec<Rc<VarNode>>,
    vals: Vec<Rc<Value>>,
    valvecs: Vec<Rc<Vec<Value>>>,
    recfields: Vec<Rc<Vec<(Symbol, Value)>>>,
    exprs: Vec<Rc<Expr>>,
    closures: Vec<Rc<Closure>>,
    rules: Vec<Rc<RuleClosure>>,
    frames: Vec<Rc<Vec<(RuleType, Value)>>>,
}

impl<'a, 'b> OpDec<'a, 'b> {
    /// Wraps `d` with fresh memo tables.
    pub fn new(d: &'b mut Dec<'a>) -> OpDec<'a, 'b> {
        OpDec {
            d,
            venvs: Vec::new(),
            vals: Vec::new(),
            valvecs: Vec::new(),
            recfields: Vec::new(),
            exprs: Vec::new(),
            closures: Vec::new(),
            rules: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Reads a shared expression body.
    pub fn expr_rc(&mut self) -> Result<Rc<Expr>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.exprs
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("expr backref {ix} out of range")))
            }
            1 => {
                let x = Rc::new(self.d.expr()?);
                self.exprs.push(x.clone());
                Ok(x)
            }
            t => err(format!("bad expr memo tag {t}")),
        }
    }

    /// Reads a runtime value.
    pub fn value(&mut self) -> Result<Value, WireError> {
        Ok(match self.d.u8()? {
            0 => Value::Int(self.d.i64()?),
            1 => Value::Bool(self.d.bool()?),
            2 => Value::Str(Rc::from(self.d.str()?.as_str())),
            3 => Value::Unit,
            4 => {
                let a = self.val_rc()?;
                Value::Pair(a, self.val_rc()?)
            }
            5 => Value::List(self.valvec()?),
            6 => Value::Closure(self.closure()?),
            7 => Value::Rule(self.rule_closure()?),
            8 => {
                let name = self.d.sym()?;
                let fields = self.recfields()?;
                Value::Record { name, fields }
            }
            9 => {
                let ctor = self.d.sym()?;
                let fields = self.valvec()?;
                Value::Data { ctor, fields }
            }
            t => return err(format!("bad opsem value tag {t}")),
        })
    }

    fn val_rc(&mut self) -> Result<Rc<Value>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.vals
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("value backref {ix} out of range")))
            }
            1 => {
                let v = Rc::new(self.value()?);
                self.vals.push(v.clone());
                Ok(v)
            }
            t => err(format!("bad value memo tag {t}")),
        }
    }

    fn valvec(&mut self) -> Result<Rc<Vec<Value>>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.valvecs
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("valvec backref {ix} out of range")))
            }
            1 => {
                let n = self.d.len()?;
                let mut xs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    xs.push(self.value()?);
                }
                let rc = Rc::new(xs);
                self.valvecs.push(rc.clone());
                Ok(rc)
            }
            t => err(format!("bad valvec memo tag {t}")),
        }
    }

    fn recfields(&mut self) -> Result<Rc<Vec<(Symbol, Value)>>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.recfields
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("recfields backref {ix} out of range")))
            }
            1 => {
                let n = self.d.len()?;
                let mut xs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let f = self.d.sym()?;
                    xs.push((f, self.value()?));
                }
                let rc = Rc::new(xs);
                self.recfields.push(rc.clone());
                Ok(rc)
            }
            t => err(format!("bad recfields memo tag {t}")),
        }
    }

    fn closure(&mut self) -> Result<Rc<Closure>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.closures
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("closure backref {ix} out of range")))
            }
            1 => {
                let param = self.d.sym()?;
                let body = self.expr_rc()?;
                let venv = self.varenv()?;
                let ienv = self.implstack()?;
                let rc = Rc::new(Closure {
                    param,
                    body,
                    venv,
                    ienv,
                });
                self.closures.push(rc.clone());
                Ok(rc)
            }
            t => err(format!("bad closure memo tag {t}")),
        }
    }

    fn rule_closure(&mut self) -> Result<Rc<RuleClosure>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.rules
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("rule-closure backref {ix} out of range")))
            }
            1 => {
                let rty = self.d.rule()?;
                let body = self.expr_rc()?;
                let venv = self.varenv()?;
                let ienv = self.implstack()?;
                let n = self.d.len()?;
                let mut partial = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let r = self.d.rule()?;
                    partial.push((r, self.value()?));
                }
                let rc = Rc::new(RuleClosure {
                    rty,
                    body,
                    venv,
                    ienv,
                    partial,
                });
                self.rules.push(rc.clone());
                Ok(rc)
            }
            t => err(format!("bad rule-closure memo tag {t}")),
        }
    }

    /// Reads a term-environment spine.
    pub fn varenv(&mut self) -> Result<VarEnv, WireError> {
        let n = self.d.len()?;
        let mut env = match self.d.u8()? {
            0 => VarEnv::new(),
            1 => {
                let ix = self.d.u32()? as usize;
                let node = self
                    .venvs
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("varenv backref {ix} out of range")))?;
                VarEnv { node: Some(node) }
            }
            t => return err(format!("bad varenv tail tag {t}")),
        };
        for _ in 0..n {
            let name = self.d.sym()?;
            let value = match self.d.u8()? {
                0 => VarBinding::Done(self.value()?),
                1 => {
                    let body = self.expr_rc()?;
                    let ienv = self.implstack()?;
                    let next_is_env = self.varenv()?;
                    VarBinding::Rec {
                        body,
                        ienv,
                        next_is_env,
                    }
                }
                t => return err(format!("bad varbinding tag {t}")),
            };
            let node = Rc::new(VarNode {
                name,
                value,
                next: env,
            });
            self.venvs.push(node.clone());
            env = VarEnv { node: Some(node) };
        }
        Ok(env)
    }

    /// Reads an implicit-environment stack.
    pub fn implstack(&mut self) -> Result<ImplStack, WireError> {
        let n = self.d.len()?;
        let mut frames = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            frames.push(self.frame()?);
        }
        Ok(ImplStack { frames })
    }

    fn frame(&mut self) -> Result<Rc<Vec<(RuleType, Value)>>, WireError> {
        match self.d.u8()? {
            0 => {
                let ix = self.d.u32()? as usize;
                self.frames
                    .get(ix)
                    .cloned()
                    .ok_or_else(|| WireError(format!("frame backref {ix} out of range")))
            }
            1 => {
                let n = self.d.len()?;
                let mut entries = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let r = self.d.rule()?;
                    entries.push((r, self.value()?));
                }
                let rc = Rc::new(entries);
                self.frames.push(rc.clone());
                Ok(rc)
            }
            t => err(format!("bad frame memo tag {t}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use implicit_core::syntax::Type;

    fn roundtrip(v: &Value) -> Value {
        let mut e = Enc::new();
        {
            let mut op = OpEnc::new(&mut e);
            op.value(v);
        }
        let bytes = e.finish();
        let mut d = Dec::new(&bytes).expect("checksum");
        let mut op = OpDec::new(&mut d);
        op.value().expect("decode")
    }

    #[test]
    fn first_order_values_roundtrip() {
        let v = Value::Pair(
            Rc::new(Value::Int(-3)),
            Rc::new(Value::Data {
                ctor: Symbol::intern("Some"),
                fields: Rc::new(vec![Value::Str(Rc::from("x"))]),
            }),
        );
        assert_eq!(v.try_eq(&roundtrip(&v)), Some(true));
    }

    #[test]
    fn shared_istack_frames_stay_shared() {
        // Two closures capturing the same stack must share frames
        // after decoding — memo keys depend on frame pointer identity.
        let base = ImplStack::new().pushed(vec![(Type::Int.promote(), Value::Int(1))]);
        let mk = |ienv: &ImplStack| {
            Value::Closure(Rc::new(Closure {
                param: Symbol::intern("x"),
                body: Rc::new(Expr::var("x")),
                venv: VarEnv::new(),
                ienv: ienv.clone(),
            }))
        };
        let v = Value::Pair(Rc::new(mk(&base)), Rc::new(mk(&base)));
        let back = roundtrip(&v);
        let Value::Pair(a, b) = &back else {
            panic!("not a pair")
        };
        let (Value::Closure(ca), Value::Closure(cb)) = (&**a, &**b) else {
            panic!("not closures")
        };
        assert!(
            Rc::ptr_eq(&ca.ienv.frames[0], &cb.ienv.frames[0]),
            "frame sharing lost"
        );
    }

    #[test]
    fn rec_bindings_roundtrip() {
        let f = Symbol::intern("f");
        let env = VarEnv::new()
            .bind(Symbol::intern("k"), Value::Int(10))
            .bind_rec(f, Rc::new(Expr::var("f")), ImplStack::new());
        let v = Value::Closure(Rc::new(Closure {
            param: Symbol::intern("x"),
            body: Rc::new(Expr::var("x")),
            venv: env,
            ienv: ImplStack::new(),
        }));
        let back = roundtrip(&v);
        let Value::Closure(c) = &back else {
            panic!("not a closure")
        };
        match c.venv.get(f) {
            Some(crate::value::Lookup::Rec { .. }) => {}
            _ => panic!("rec binding lost"),
        }
        match c.venv.get(Symbol::intern("k")) {
            Some(crate::value::Lookup::Done(Value::Int(10))) => {}
            _ => panic!("done binding lost"),
        }
    }
}
