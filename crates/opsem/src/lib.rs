//! # `implicit-opsem` — direct operational semantics of λ⇒
//!
//! The extended report gives λ⇒ a call-by-value big-step semantics in
//! which resolution happens **at runtime**: rule abstractions become
//! rule closures `⟨ρ, e, Σ, η⟩` carrying a *partially resolved
//! context* η, queries walk the runtime environment matching closures
//! by type, and type application substitutes into values (Figure
//! "Operational Semantics").
//!
//! Together with `implicit-elab`, this gives the project both of the
//! paper's semantics; the test suite checks they agree on all
//! first-order results (the coherence the static conditions are
//! designed to guarantee).
//!
//! ```
//! use implicit_core::parse::parse_expr;
//! use implicit_core::syntax::Declarations;
//! use implicit_opsem::eval;
//!
//! let e = parse_expr(
//!     "implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool",
//! ).unwrap();
//! let v = eval(&Declarations::new(), &e).unwrap();
//! assert_eq!(v.to_string(), "(2, false)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod interp;
pub mod value;
pub mod wire;

pub use error::OpsemError;
pub use interp::{eval, Interpreter, DEFAULT_FUEL};
pub use value::{ImplStack, RuleClosure, Value, VarEnv};

#[cfg(test)]
mod tests {
    use super::*;
    use implicit_core::parse::parse_expr;
    use implicit_core::resolve::ResolutionPolicy;
    use implicit_core::syntax::{Declarations, Type};

    fn eval0(src: &str) -> Value {
        let e = parse_expr(src).unwrap();
        eval(&Declarations::new(), &e).unwrap()
    }

    fn eval_err(src: &str) -> OpsemError {
        let e = parse_expr(src).unwrap();
        eval(&Declarations::new(), &e).unwrap_err()
    }

    #[test]
    fn e1_runtime_resolution() {
        let v = eval0("implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool");
        assert_eq!(v.to_string(), "(2, false)");
    }

    #[test]
    fn e2_higher_order_rule() {
        let v = eval0(
            "implicit {3 : Int, rule ({Int} => Int * Int) ((?(Int), ?(Int) + 1)) : {Int} => Int * Int} \
             in ?(Int * Int) : Int * Int",
        );
        assert_eq!(v.to_string(), "(3, 4)");
    }

    #[test]
    fn e3_polymorphic_rules() {
        let v = eval0(
            "implicit {3 : Int, true : Bool, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
             in (?(Int * Int), ?(Bool * Bool)) : (Int * Int) * (Bool * Bool)",
        );
        assert_eq!(v.to_string(), "((3, 3), (true, true))");
    }

    #[test]
    fn e5_higher_order_polymorphic() {
        let v = eval0(
            "implicit {3 : Int, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
             in ?((Int * Int) * (Int * Int)) : (Int * Int) * (Int * Int)",
        );
        assert_eq!(v.to_string(), "((3, 3), (3, 3))");
    }

    #[test]
    fn e6_nested_scoping() {
        let v = eval0(
            "implicit {1 : Int} in \
               (implicit {true : Bool, rule ({Bool} => Int) (if ?(Bool) then 2 else 0) : {Bool} => Int} \
                in ?(Int) : Int) : Int",
        );
        assert_eq!(v.to_string(), "2");
    }

    #[test]
    fn e7_overlap_across_scopes() {
        let v = eval0(
            "implicit {rule (forall a. a -> a) ((\\x : a. x)) : forall a. a -> a} in \
               (implicit {(\\n : Int. n + 1) : Int -> Int} in ?(Int -> Int) 1 : Int) : Int",
        );
        assert_eq!(v.to_string(), "2");
        let v2 = eval0(
            "implicit {(\\n : Int. n + 1) : Int -> Int} in \
               (implicit {rule (forall a. a -> a) ((\\x : a. x)) : forall a. a -> a} in ?(Int -> Int) 1 : Int) : Int",
        );
        assert_eq!(v2.to_string(), "1");
    }

    #[test]
    fn e16_partially_resolved_context() {
        // let f = rule({Int,Bool} ⇒ Int)(e) in ?({Int} ⇒ Int)
        // yields the closure ⟨{Int} ⇒ Int, e, −, {Bool:true}⟩.
        let src = "implicit {rule ({Int, Bool} => Int) (if ?(Bool) then ?(Int) else 0) : {Int, Bool} => Int, \
                             true : Bool} \
                   in ?({Int} => Int) : {Int} => Int";
        let v = eval0(src);
        match v {
            Value::Rule(rc) => {
                assert_eq!(rc.rty.to_string(), "{Int} => Int");
                assert_eq!(rc.partial.len(), 1);
                assert_eq!(rc.partial[0].0.to_string(), "Bool");
                assert!(matches!(rc.partial[0].1, Value::Bool(true)));
            }
            other => panic!("expected a rule closure, got {other}"),
        }
    }

    #[test]
    fn partially_resolved_closure_can_be_applied() {
        let src = "implicit {rule ({Int, Bool} => Int) (if ?(Bool) then ?(Int) + 1 else 0) : {Int, Bool} => Int, \
                             true : Bool} \
                   in (?({Int} => Int) with {41 : Int}) : Int";
        assert_eq!(eval0(src).to_string(), "42");
    }

    #[test]
    fn runtime_no_match_error() {
        let err = eval_err("?(Int)");
        assert!(matches!(err, OpsemError::NoMatch(_)));
    }

    #[test]
    fn runtime_missing_premise_error() {
        // {Bool}⇒Int : — ⊢ ?Int — the first lookup succeeds, the Bool
        // premise fails (ext. report lookup-failure example 2).
        let err = eval_err(
            "implicit {rule ({Bool} => Int) (if ?(Bool) then 1 else 0) : {Bool} => Int} \
             in ?(Int) : Int",
        );
        assert!(
            matches!(err, OpsemError::NoMatch(Type::Bool)),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn runtime_overlap_error_duplicate_values() {
        // The ext. report's {Int:1, Int:2} ⊢ ?Int: two values for the
        // same type inside one rule set. (The type checker rejects
        // this statically; the runtime check is independent.)
        let err = eval_err("rule ({Int} => Int) (?(Int)) with {1 : Int} with {2 : Int}");
        // Two nested frames do NOT overlap (nearest wins) — build a
        // genuine single-set overlap via polymorphic heads instead:
        let _ = err;
        let err2 = eval_err(
            "implicit {rule (forall a. a -> Int) ((\\x : a. 1)) : forall a. a -> Int, \
                       rule (forall a. Int -> a) ((\\x : Int. ?(a))) : forall a. Int -> a} \
             in ?(Int -> Int) 0 : Int",
        );
        assert!(matches!(err2, OpsemError::Overlap { .. }), "got {err2:?}");
    }

    #[test]
    fn runtime_ambiguous_instantiation() {
        // ∀a.{a → a} ⇒ Int at ?Int leaves `a` undetermined (ext.
        // report's ambiguous-instantiation example).
        let err = eval_err(
            "implicit {rule (forall a. {a -> a} => Int) (1) : forall a. {a -> a} => Int, \
                       (\\b : Bool. b) : Bool -> Bool, \
                       rule (forall b. b -> b) ((\\x : b. x)) : forall b. b -> b} \
             in ?(Int) : Int",
        );
        assert!(
            matches!(err, OpsemError::AmbiguousInstantiation { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn nontermination_hits_depth_bound() {
        let e = parse_expr(
            "implicit {rule ({String} => Int) (1) : {String} => Int, \
                       rule ({Int} => String) (\"s\") : {Int} => String} \
             in ?(Int) : Int",
        )
        .unwrap();
        let decls = Declarations::new();
        let err = Interpreter::new(&decls)
            .with_policy(ResolutionPolicy::paper().with_max_depth(32))
            .eval(&e)
            .unwrap_err();
        assert!(
            matches!(err, OpsemError::DepthExceeded { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn host_fragment_works() {
        assert_eq!(
            eval0("(fix f : Int -> Int. \\n : Int. if n <= 0 then 1 else n * f (n - 1)) 5")
                .to_string(),
            "120"
        );
        assert_eq!(
            eval0("case 1 :: 2 :: nil [Int] of nil -> 0 | h :: t -> h + 10").to_string(),
            "11"
        );
    }

    #[test]
    fn queries_inside_lambdas_capture_scopes_lexically() {
        // The closure must remember the implicit scope where it was
        // built, not where it is called.
        let src = "implicit {10 : Int} in \
                     ((\\f : Unit -> Int. (implicit {20 : Int} in f unit : Int)) \
                      (\\u : Unit. ?(Int))) : Int";
        assert_eq!(eval0(src).to_string(), "10");
    }

    #[test]
    fn polymorphic_query_result_instantiates() {
        // ?(∀a.{a}⇒a×a) then [Int] with {9 : Int}.
        let src =
            "implicit {rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
                   in (?(forall a. {a} => a * a) [Int] with {9 : Int}) : Int * Int";
        assert_eq!(eval0(src).to_string(), "(9, 9)");
    }
}
