//! Runtime values and environments of the direct operational
//! semantics.
//!
//! Following the extended report, the distinctive values are *rule
//! closures* `⟨ρ, e, Σ, η⟩`: a rule type, a body, the captured
//! environments, and a **partially resolved context** η — evidence
//! for premises that a higher-order query already discharged. The
//! host fragment adds the usual first-order values and function
//! closures.

use std::fmt;
use std::rc::Rc;

use implicit_core::subst::TySubst;
use implicit_core::symbol::Symbol;
use implicit_core::syntax::{Expr, RuleType};

/// A runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(Rc<str>),
    /// Unit.
    Unit,
    /// Pair.
    Pair(Rc<Value>, Rc<Value>),
    /// List (strict).
    List(Rc<Vec<Value>>),
    /// Function closure.
    Closure(Rc<Closure>),
    /// Rule closure `⟨ρ, e, Σ, η⟩`.
    Rule(Rc<RuleClosure>),
    /// Record value.
    Record {
        /// Interface name.
        name: Symbol,
        /// Field values.
        fields: Rc<Vec<(Symbol, Value)>>,
    },
    /// Data value (tagged constructor application).
    Data {
        /// Constructor name.
        ctor: Symbol,
        /// Constructor arguments.
        fields: Rc<Vec<Value>>,
    },
}

/// A function closure.
#[derive(Clone, Debug)]
pub struct Closure {
    /// Parameter.
    pub param: Symbol,
    /// Body.
    pub body: Rc<Expr>,
    /// Captured term environment.
    pub venv: VarEnv,
    /// Captured implicit environment.
    pub ienv: ImplStack,
}

/// A rule closure `⟨ρ, e, Σ, η⟩`.
#[derive(Clone, Debug)]
pub struct RuleClosure {
    /// The closure's rule type ρ.
    pub rty: RuleType,
    /// The rule body e.
    pub body: Rc<Expr>,
    /// Captured term environment.
    pub venv: VarEnv,
    /// Captured implicit environment Σ.
    pub ienv: ImplStack,
    /// The partially resolved context η: evidence for premises
    /// already discharged by higher-order resolution.
    pub partial: Vec<(RuleType, Value)>,
}

impl Value {
    /// Structural equality on first-order values; `None` when a
    /// closure is encountered.
    pub fn try_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a == b),
            (Value::Bool(a), Value::Bool(b)) => Some(a == b),
            (Value::Str(a), Value::Str(b)) => Some(a == b),
            (Value::Unit, Value::Unit) => Some(true),
            (Value::Pair(a1, b1), Value::Pair(a2, b2)) => Some(a1.try_eq(a2)? && b1.try_eq(b2)?),
            (Value::List(xs), Value::List(ys)) => {
                if xs.len() != ys.len() {
                    return Some(false);
                }
                for (x, y) in xs.iter().zip(ys.iter()) {
                    if !x.try_eq(y)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            (
                Value::Data {
                    ctor: c1,
                    fields: f1,
                },
                Value::Data {
                    ctor: c2,
                    fields: f2,
                },
            ) => {
                if c1 != c2 || f1.len() != f2.len() {
                    return Some(false);
                }
                for (x, y) in f1.iter().zip(f2.iter()) {
                    if !x.try_eq(y)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            (
                Value::Record {
                    name: n1,
                    fields: f1,
                },
                Value::Record {
                    name: n2,
                    fields: f2,
                },
            ) => {
                if n1 != n2 || f1.len() != f2.len() {
                    return Some(false);
                }
                for ((u1, v1), (u2, v2)) in f1.iter().zip(f2.iter()) {
                    if u1 != u2 || !v1.try_eq(v2)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            _ => None,
        }
    }

    /// Applies a type substitution to a value (Appendix
    /// "Substitutions" extends substitution to closures and
    /// environments).
    pub fn subst(&self, theta: &TySubst) -> Value {
        if theta.is_empty() {
            return self.clone();
        }
        match self {
            Value::Int(_) | Value::Bool(_) | Value::Str(_) | Value::Unit => self.clone(),
            Value::Pair(a, b) => Value::Pair(Rc::new(a.subst(theta)), Rc::new(b.subst(theta))),
            Value::List(xs) => Value::List(Rc::new(xs.iter().map(|v| v.subst(theta)).collect())),
            Value::Closure(c) => Value::Closure(Rc::new(Closure {
                param: c.param,
                body: Rc::new(theta.apply_expr(&c.body)),
                venv: c.venv.subst(theta),
                ienv: c.ienv.subst(theta),
            })),
            Value::Rule(rc) => Value::Rule(Rc::new(rc.subst(theta))),
            Value::Record { name, fields } => Value::Record {
                name: *name,
                fields: Rc::new(fields.iter().map(|(u, v)| (*u, v.subst(theta))).collect()),
            },
            Value::Data { ctor, fields } => Value::Data {
                ctor: *ctor,
                fields: Rc::new(fields.iter().map(|v| v.subst(theta)).collect()),
            },
        }
    }
}

impl RuleClosure {
    /// Applies a type substitution, capture-avoidingly with respect
    /// to the closure's own quantifiers (the appendix substitutes
    /// into `⟨ρ, e, Σ, η⟩` only when the substituted variable is not
    /// among ρ's binders).
    pub fn subst(&self, theta: &TySubst) -> RuleClosure {
        // Reuse the capture-avoiding RuleAbs case of expression
        // substitution for the (rty, body) pair.
        let packed = Expr::RuleAbs(Rc::new(self.rty.clone()), self.body.clone());
        let (rty, body) = match theta.apply_expr(&packed) {
            Expr::RuleAbs(r, b) => ((*r).clone(), b),
            _ => unreachable!("substitution preserves constructors"),
        };
        RuleClosure {
            rty,
            body,
            venv: self.venv.subst(theta),
            ienv: self.ienv.subst(theta),
            partial: self
                .partial
                .iter()
                .map(|(r, v)| (theta.apply_rule(r), v.subst(theta)))
                .collect(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Unit => f.write_str("()"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::List(xs) => {
                f.write_str("[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Value::Closure(_) => f.write_str("<closure>"),
            Value::Rule(rc) => write!(f, "<rule-closure : {}>", rc.rty),
            Value::Record { name, fields } => {
                write!(f, "{name} {{ ")?;
                for (i, (u, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{u} = {v}")?;
                }
                f.write_str(" }")
            }
            Value::Data { ctor, fields } => {
                write!(f, "{ctor}")?;
                for v in fields.iter() {
                    match v {
                        Value::Data { fields: inner, .. } if !inner.is_empty() => {
                            write!(f, " ({v})")?
                        }
                        _ => write!(f, " {v}")?,
                    }
                }
                Ok(())
            }
        }
    }
}

/// A persistent term-variable environment.
#[derive(Clone, Default, Debug)]
pub struct VarEnv {
    pub(crate) node: Option<Rc<VarNode>>,
}

#[derive(Debug)]
pub(crate) struct VarNode {
    pub(crate) name: Symbol,
    pub(crate) value: VarBinding,
    pub(crate) next: VarEnv,
}

#[derive(Clone, Debug)]
pub(crate) enum VarBinding {
    Done(Value),
    Rec {
        body: Rc<Expr>,
        ienv: ImplStack,
        next_is_env: VarEnv,
    },
}

impl Drop for VarEnv {
    fn drop(&mut self) {
        let mut cur = self.node.take();
        while let Some(rc) = cur {
            match Rc::try_unwrap(rc) {
                Ok(mut node) => cur = node.next.node.take(),
                Err(_) => break,
            }
        }
    }
}

impl VarEnv {
    /// Empty environment.
    pub fn new() -> VarEnv {
        VarEnv::default()
    }

    /// Iterates the binding spine outward (innermost binding first),
    /// for the artifact serializer.
    pub(crate) fn nodes(&self) -> impl Iterator<Item = &Rc<VarNode>> {
        std::iter::successors(self.node.as_ref(), |n| n.next.node.as_ref())
    }

    /// The spine as `(name, value)` pairs, outermost binding first;
    /// `None` for recursive (`fix`) bindings. Used by the session
    /// artifact layer to recover per-binding prelude values.
    pub fn bindings_outermost_first(&self) -> Vec<(Symbol, Option<Value>)> {
        let mut out: Vec<(Symbol, Option<Value>)> = self
            .nodes()
            .map(|n| {
                let v = match &n.value {
                    VarBinding::Done(v) => Some(v.clone()),
                    VarBinding::Rec { .. } => None,
                };
                (n.name, v)
            })
            .collect();
        out.reverse();
        out
    }

    /// Extends with a value binding.
    pub fn bind(&self, name: Symbol, value: Value) -> VarEnv {
        VarEnv {
            node: Some(Rc::new(VarNode {
                name,
                value: VarBinding::Done(value),
                next: self.clone(),
            })),
        }
    }

    /// Extends with a `fix` binding; each lookup unfolds one step.
    pub fn bind_rec(&self, name: Symbol, body: Rc<Expr>, ienv: ImplStack) -> VarEnv {
        VarEnv {
            node: Some(Rc::new(VarNode {
                name,
                value: VarBinding::Rec {
                    body,
                    ienv,
                    next_is_env: self.clone(),
                },
                next: self.clone(),
            })),
        }
    }

    /// Looks a variable up; recursive bindings are reported as
    /// [`Lookup::Rec`] for the interpreter to unfold.
    pub fn get(&self, name: Symbol) -> Option<Lookup> {
        let mut cur = self;
        while let Some(node) = &cur.node {
            if node.name == name {
                return Some(match &node.value {
                    VarBinding::Done(v) => Lookup::Done(v.clone()),
                    VarBinding::Rec {
                        body,
                        ienv,
                        next_is_env,
                    } => Lookup::Rec {
                        body: body.clone(),
                        ienv: ienv.clone(),
                        env: next_is_env.clone(),
                    },
                });
            }
            cur = &node.next;
        }
        None
    }

    fn subst(&self, theta: &TySubst) -> VarEnv {
        // Environments are substituted pointwise; sharing is lost for
        // the affected spine, as in the appendix definition.
        let mut entries = Vec::new();
        let mut cur = self;
        while let Some(node) = &cur.node {
            entries.push((node.name, node.value.clone()));
            cur = &node.next;
        }
        let mut out = VarEnv::new();
        for (name, binding) in entries.into_iter().rev() {
            out = match binding {
                VarBinding::Done(v) => out.bind(name, v.subst(theta)),
                VarBinding::Rec { body, ienv, .. } => {
                    out.bind_rec(name, Rc::new(theta.apply_expr(&body)), ienv.subst(theta))
                }
            };
        }
        out
    }
}

/// Pointwise substitution over a term environment (crate-internal;
/// used by `OpInst` and `DynRes`).
pub(crate) fn subst_varenv(theta: &TySubst, env: &VarEnv) -> VarEnv {
    env.subst(theta)
}

/// Result of a variable lookup.
pub enum Lookup {
    /// An ordinary value.
    Done(Value),
    /// A recursive binding to unfold: evaluate `body` under `env`
    /// extended with the same recursive binding, and `ienv`.
    Rec {
        /// The `fix` body.
        body: Rc<Expr>,
        /// Implicit environment at the `fix`.
        ienv: ImplStack,
        /// Term environment beneath the recursive binding.
        env: VarEnv,
    },
}

/// The implicit environment Σ: a stack of rule sets
/// `η = {ρ₁:v₁, …}` (innermost last).
#[derive(Clone, Default, Debug)]
pub struct ImplStack {
    pub(crate) frames: Vec<Rc<Vec<(RuleType, Value)>>>,
}

impl ImplStack {
    /// Empty stack.
    pub fn new() -> ImplStack {
        ImplStack::default()
    }

    /// Pushes a rule set as the nearest frame, returning the extended
    /// stack.
    pub fn pushed(&self, frame: Vec<(RuleType, Value)>) -> ImplStack {
        let mut out = self.clone();
        out.frames.push(Rc::new(frame));
        out
    }

    /// Iterates frames innermost-first.
    pub fn frames_innermost_first(&self) -> impl Iterator<Item = &Rc<Vec<(RuleType, Value)>>> {
        self.frames.iter().rev()
    }

    /// Number of frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The stack restricted to its `n` outermost frames (used when
    /// re-keying imported memo entries against a rebuilt prelude
    /// stack).
    pub fn truncated(&self, n: usize) -> ImplStack {
        ImplStack {
            frames: self.frames[..n.min(self.frames.len())].to_vec(),
        }
    }

    /// Pointwise substitution.
    pub fn subst(&self, theta: &TySubst) -> ImplStack {
        if theta.is_empty() {
            return self.clone();
        }
        ImplStack {
            frames: self
                .frames
                .iter()
                .map(|f| {
                    Rc::new(
                        f.iter()
                            .map(|(r, v)| (theta.apply_rule(r), v.subst(theta)))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use implicit_core::syntax::Type;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn var_env_shadowing() {
        let env = VarEnv::new()
            .bind(v("x"), Value::Int(1))
            .bind(v("x"), Value::Int(2));
        match env.get(v("x")) {
            Some(Lookup::Done(Value::Int(2))) => {}
            _ => panic!("expected shadowed binding"),
        }
        assert!(env.get(v("nope")).is_none());
    }

    #[test]
    fn value_substitution_reaches_rule_closures() {
        let a = v("subst_a");
        let rc = RuleClosure {
            rty: Type::var(a).promote(),
            body: Rc::new(Expr::query_simple(Type::var(a))),
            venv: VarEnv::new(),
            ienv: ImplStack::new(),
            partial: vec![],
        };
        let theta = TySubst::single(a, Type::Int);
        let out = rc.subst(&theta);
        assert_eq!(out.rty.head(), &Type::Int);
        assert_eq!(*out.body, Expr::query_simple(Type::Int));
    }

    #[test]
    fn closure_quantifiers_are_respected_by_substitution() {
        // ⟨∀a. {} ⇒ a → a, …⟩ under [a ↦ Int] must keep its binder.
        let a = v("subst_b");
        let rty = implicit_core::syntax::RuleType::new(
            vec![a],
            vec![],
            Type::arrow(Type::var(a), Type::var(a)),
        );
        let rc = RuleClosure {
            rty: rty.clone(),
            body: Rc::new(Expr::lam("x", Type::var(a), Expr::var("x"))),
            venv: VarEnv::new(),
            ienv: ImplStack::new(),
            partial: vec![],
        };
        let theta = TySubst::single(a, Type::Int);
        let out = rc.subst(&theta);
        assert!(implicit_core::alpha::alpha_eq(&out.rty, &rty));
    }

    #[test]
    fn try_eq_distinguishes_first_order_values() {
        let p1 = Value::Pair(Rc::new(Value::Int(1)), Rc::new(Value::Bool(false)));
        let p2 = Value::Pair(Rc::new(Value::Int(1)), Rc::new(Value::Bool(false)));
        let p3 = Value::Pair(Rc::new(Value::Int(2)), Rc::new(Value::Bool(false)));
        assert_eq!(p1.try_eq(&p2), Some(true));
        assert_eq!(p1.try_eq(&p3), Some(false));
    }

    #[test]
    fn display_shows_rule_closure_types() {
        let rc = RuleClosure {
            rty: implicit_core::syntax::RuleType::mono(vec![Type::Int.promote()], Type::Int),
            body: Rc::new(Expr::Int(1)),
            venv: VarEnv::new(),
            ienv: ImplStack::new(),
            partial: vec![],
        };
        assert_eq!(
            Value::Rule(Rc::new(rc)).to_string(),
            "<rule-closure : {Int} => Int>"
        );
    }
}
