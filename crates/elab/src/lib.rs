//! # `implicit-elab` — type-directed elaboration of λ⇒ into System F
//!
//! The paper's dynamic semantics (§4, Figure "Type-directed
//! Translation to System F"): implicit contexts become explicit
//! λ-parameters, rule-type quantifiers become `Λ` binders, and every
//! query is resolved *statically* to System F evidence — Wadler &
//! Blott's dictionary-passing translation, generalized to arbitrary
//! types.
//!
//! The crate exposes
//!
//! * [`translate_type`] — the type translation `|·|`
//!   (`|∀ᾱ.{ρ₁,…,ρₙ} ⇒ τ| = ∀ᾱ.|ρ₁| → … → |ρₙ| → |τ|`);
//! * [`Elaborator`] — the main judgment
//!   `Γ ∣ Δ ⊢ e : τ ⇝ E`, including the resolution-with-evidence
//!   judgment `Δ ⊢r ρ ⇝ E` (rule `TrRes`);
//! * [`elaborate`] / [`run`] — whole-program convenience wrappers;
//! * [`check_preservation`] — an executable instance of the paper's
//!   type-preservation theorem: elaborate, then type-check the output
//!   in System F and compare against `|τ|`.
//!
//! ```
//! use implicit_core::parse::parse_expr;
//! use implicit_core::syntax::Declarations;
//! use implicit_elab::run;
//!
//! // §2, E1: returns (2, false).
//! let e = parse_expr(
//!     "implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool",
//! ).unwrap();
//! let out = run(&Declarations::new(), &e).unwrap();
//! assert_eq!(out.value.to_string(), "(2, false)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Error enums carry full types/rule types for precise diagnostics;
// they are constructed on cold paths only, so the large-Err lint's
// boxing advice would cost clarity for no measurable gain.
#![allow(clippy::result_large_err)]

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;

use implicit_core::alpha;
use implicit_core::env::ImplicitEnv;
use implicit_core::intern::{self, InternSnapshot, RuleId};
use implicit_core::resolve::{
    derivation_within, resolve, Premise, Resolution, ResolutionPolicy, RuleRef,
};
use implicit_core::subst::TySubst;
use implicit_core::symbol::{base_name, fresh, Symbol};
use implicit_core::syntax::{Declarations, Expr, RuleType, TyVar, Type, UnOp};
use implicit_core::trace::TraceEvent;
use implicit_core::typeck::{types_equal, TypeError};
use systemf::eval::{EvalError, Evaluator, Value};
use systemf::syntax::{FDeclarations, FExpr, FInterfaceDecl, FType};
use systemf::typeck::FTypeError;

/// An elaboration error.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // cold path; precision over size
pub enum ElabError {
    /// The source program is ill-typed.
    Type(TypeError),
    /// The resolution derivation uses the environment-extension
    /// policy, for which no evidence exists (§3.2: "we do not have
    /// any value-level evidence for π").
    ExtensionNotElaborable,
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElabError::Type(e) => write!(f, "{e}"),
            ElabError::ExtensionNotElaborable => f.write_str(
                "resolution used the environment-extension rule, which has no evidence \
                 translation",
            ),
        }
    }
}

impl std::error::Error for ElabError {}

impl From<TypeError> for ElabError {
    fn from(e: TypeError) -> ElabError {
        ElabError::Type(e)
    }
}

/// The type translation `|τ|` (Figure "Type-directed Translation").
///
/// Rule types become quantified curried function types over the
/// translated context (in its canonical order); an empty context
/// contributes no parameters.
pub fn translate_type(ty: &Type) -> FType {
    match ty {
        Type::Var(a) => FType::Var(*a),
        Type::Int => FType::Int,
        Type::Bool => FType::Bool,
        Type::Str => FType::Str,
        Type::Unit => FType::Unit,
        Type::Arrow(a, b) => FType::arrow(translate_type(a), translate_type(b)),
        Type::Prod(a, b) => FType::prod(translate_type(a), translate_type(b)),
        Type::List(a) => FType::list(translate_type(a)),
        Type::Con(n, args) => FType::Con(*n, args.iter().map(translate_type).collect()),
        Type::VarApp(f, args) => FType::VarApp(*f, args.iter().map(translate_type).collect()),
        Type::Ctor(c) => FType::Ctor(*c),
        Type::Rule(r) => translate_rule_type(r),
    }
}

/// `|∀ᾱ.{ρ₁,…,ρₙ} ⇒ τ| = ∀ᾱ.|ρ₁| → … → |ρₙ| → |τ|`.
pub fn translate_rule_type(rho: &RuleType) -> FType {
    let body = FType::arrows(
        rho.context().iter().map(translate_rule_type),
        translate_type(rho.head()),
    );
    FType::forall(rho.vars().iter().copied(), body)
}

/// Translates the interface and data declarations.
pub fn translate_decls(decls: &Declarations) -> FDeclarations {
    let mut out = FDeclarations::new();
    for d in decls.iter() {
        out.declare(FInterfaceDecl {
            name: d.name,
            vars: d.vars.clone(),
            fields: d
                .fields
                .iter()
                .map(|(u, t)| (*u, translate_type(t)))
                .collect(),
        });
    }
    for d in decls.iter_datas() {
        out.declare_data(systemf::syntax::FDataDecl {
            name: d.name,
            params: d.params.iter().map(|(v, _)| *v).collect(),
            ctors: d
                .ctors
                .iter()
                .map(|(c, tys)| (*c, tys.iter().map(translate_type).collect()))
                .collect(),
        });
    }
    out
}

/// A session-lifetime **dictionary inline cache** for implicit-query
/// sites — the dynamic analogue of the derivation cache.
///
/// A warm session owns one of these (shared with its [`Elaborator`]
/// via [`Elaborator::set_dict_cache`]). When an implicit query is
/// *ground and context-free* — its evidence is a plain first-order
/// value, not a `Λ`/`λ` abstraction — and its resolution commits only
/// to prelude-frame rules, the session may *promote* the evaluated
/// evidence to a compiled-backend global; later elaborations of the
/// same query (keyed by interned [`RuleId`]) then emit a single
/// global load instead of rebuilding and re-evaluating the evidence
/// term.
///
/// Correctness hinges on the hit condition: a hit requires the
/// *current* resolution of the query (resolution always runs; it is
/// cheap under the derivation cache) to still be prelude-pure
/// ([`derivation_within`]). A program that shadows a prelude rule
/// resolves to its own deeper frame, fails that check, and gets
/// fresh evidence — so rollback of per-program frames needs no
/// explicit invalidation sweep. Entries are keyed by interned ids,
/// which an arena trim can orphan; [`DictCache::retain_covered`]
/// drops exactly the entries a truncation would dangle (ids below
/// the watermark are stable across truncation).
#[derive(Default, Debug)]
pub struct DictCache {
    /// Environment depth of the session prelude: a derivation is
    /// promotable iff it only references frames below this.
    prelude_depth: usize,
    /// Promoted queries: interned query id → evidence global.
    entries: HashMap<RuleId, Symbol>,
    /// Evidence awaiting promotion, recorded at miss time and drained
    /// by the session after the program's code extension rolls back.
    pending: Vec<(RuleType, FExpr)>,
    hits: u64,
    misses: u64,
}

impl DictCache {
    /// An empty cache for a prelude `prelude_depth` frames deep.
    pub fn new(prelude_depth: usize) -> DictCache {
        DictCache {
            prelude_depth,
            ..DictCache::default()
        }
    }

    /// `true` for queries whose evidence a dictionary global can
    /// stand in for: no quantifiers, no context (evidence is not an
    /// abstraction), and a ground head (no free type variables, so
    /// one interned id names one semantic query).
    pub fn cacheable(rho: &RuleType) -> bool {
        rho.vars().is_empty() && rho.context().is_empty() && intern::rule_is_ground(rho)
    }

    /// Number of promoted entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been promoted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counted over cacheable query sites.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The promoted global for `rho`, if any, counting a hit.
    fn lookup_hit(&mut self, id: RuleId) -> Option<Symbol> {
        let g = self.entries.get(&id).copied();
        if g.is_some() {
            self.hits += 1;
        }
        g
    }

    /// Registers a promoted evidence global for `rho`.
    pub fn insert(&mut self, rho: &RuleType, global: Symbol) {
        self.entries.insert(intern::rule_id(rho), global);
    }

    /// Drains the evidence recorded for promotion since the last
    /// call, deduplicated by query id (a program may contain the same
    /// query site many times).
    pub fn take_pending(&mut self) -> Vec<(RuleType, FExpr)> {
        let mut seen: std::collections::HashSet<RuleId> = std::collections::HashSet::new();
        std::mem::take(&mut self.pending)
            .into_iter()
            .filter(|(rho, _)| {
                let id = intern::rule_id(rho);
                seen.insert(id) && !self.entries.contains_key(&id)
            })
            .collect()
    }

    /// The prelude depth this cache was created for.
    pub fn prelude_depth(&self) -> usize {
        self.prelude_depth
    }

    /// Exports promoted entries as `(query, global)` pairs for
    /// session artifacts, sorted by global name so the export is
    /// deterministic. Entries whose interned id `snap` does not cover
    /// are skipped (they name program-local queries).
    pub fn export_entries(&self, snap: &InternSnapshot) -> Vec<(RuleType, Symbol)> {
        let mut out: Vec<(RuleType, Symbol)> = self
            .entries
            .iter()
            .filter(|(id, _)| snap.covers_rule(**id))
            .filter_map(|(id, g)| intern::rule_of(*id).map(|rho| (rho, *g)))
            .collect();
        out.sort_by_key(|(_, g)| g.as_str());
        out
    }

    /// Imports entries exported by [`DictCache::export_entries`].
    /// Counters and pending promotions are untouched.
    pub fn import_entries(&mut self, entries: Vec<(RuleType, Symbol)>) {
        for (rho, g) in entries {
            self.entries.insert(intern::rule_id(&rho), g);
        }
    }

    /// Drops entries whose interned query id a truncation to `snap`
    /// would orphan. Must be called *before* the truncation, while
    /// the ids still index the live arena; surviving ids are stable
    /// because truncation keeps a prefix.
    pub fn retain_covered(&mut self, snap: &InternSnapshot) {
        self.entries.retain(|id, _| snap.covers_rule(*id));
        self.pending.clear();
    }
}

/// The elaborator: a combined type checker and translator
/// implementing `Γ ∣ Δ ⊢ e : τ ⇝ E`.
pub struct Elaborator<'d> {
    decls: &'d Declarations,
    policy: ResolutionPolicy,
    trace: Option<implicit_core::trace::SharedSink>,
    /// Dictionary inline cache, installed by a warm session's
    /// compiled path (see [`DictCache`]).
    dict: Option<Rc<RefCell<DictCache>>>,
}

struct State {
    gamma: Vec<(Symbol, Type)>,
    /// Resolution environment (types only).
    delta: ImplicitEnv,
    /// Evidence variables, frame-aligned with `delta`: outermost
    /// first, entries in the stored (canonical) context order.
    evidence: Vec<Vec<Symbol>>,
    tyvars: BTreeSet<TyVar>,
    /// Arities of in-scope type variables (absent = kind `*`).
    kinds: std::collections::BTreeMap<TyVar, usize>,
}

impl State {
    /// Evidence variable for `RuleRef::Env { frame, index }` (frame
    /// counted from the innermost).
    fn evidence_var(&self, frame: usize, index: usize) -> Option<Symbol> {
        let n = self.evidence.len();
        let outer_ix = n.checked_sub(1 + frame)?;
        self.evidence.get(outer_ix)?.get(index).copied()
    }
}

impl<'d> Elaborator<'d> {
    /// An elaborator with the paper's default resolution policy.
    pub fn new(decls: &'d Declarations) -> Elaborator<'d> {
        Elaborator {
            decls,
            policy: ResolutionPolicy::paper(),
            trace: None,
            dict: None,
        }
    }

    /// An elaborator with a custom resolution policy.
    pub fn with_policy(decls: &'d Declarations, policy: ResolutionPolicy) -> Elaborator<'d> {
        Elaborator {
            decls,
            policy,
            trace: None,
            dict: None,
        }
    }

    /// Reports every resolution this elaborator performs as
    /// structured trace events through `sink` (see
    /// [`implicit_core::trace`]).
    pub fn with_trace(mut self, sink: implicit_core::trace::SharedSink) -> Elaborator<'d> {
        self.trace = Some(sink);
        self
    }

    /// Installs or clears the trace sink on an existing elaborator
    /// (the warm-session entry point).
    pub fn set_trace(&mut self, sink: Option<implicit_core::trace::SharedSink>) {
        self.trace = sink;
    }

    /// Installs or clears the dictionary inline cache. While a cache
    /// is attached, ground context-free queries whose resolution is
    /// prelude-pure elaborate to a promoted evidence global when the
    /// cache holds one (emitting [`TraceEvent::IcHit`]), and are
    /// recorded for promotion otherwise ([`TraceEvent::IcMiss`]).
    /// Only a session's *compiled* path should attach the cache: the
    /// promoted globals exist in the session compiler's global table,
    /// not in a tree-walker environment.
    pub fn set_dict_cache(&mut self, dict: Option<Rc<RefCell<DictCache>>>) {
        self.dict = dict;
    }

    /// Emits a dictionary-IC hit/miss marker through the trace sink.
    fn emit_ic(&self, hit: bool, rho: &RuleType) {
        if let Some(sink) = &self.trace {
            let mut sink = sink.clone();
            if implicit_core::trace::TraceSink::enabled(&sink) {
                let query = rho.to_string();
                implicit_core::trace::TraceSink::event(
                    &mut sink,
                    if hit {
                        TraceEvent::IcHit { query }
                    } else {
                        TraceEvent::IcMiss { query }
                    },
                );
            }
        }
    }

    /// Elaborates a closed expression, returning its λ⇒ type and its
    /// System F translation.
    ///
    /// # Errors
    ///
    /// [`ElabError::Type`] when the program is ill-typed or a query
    /// cannot be resolved; [`ElabError::ExtensionNotElaborable`] when
    /// the policy's environment extension was used.
    pub fn elaborate(&self, e: &Expr) -> Result<(Type, FExpr), ElabError> {
        let mut delta = ImplicitEnv::new();
        self.elaborate_with_env(&mut delta, &[], &[], e)
    }

    /// Elaborates `e` under a caller-owned implicit environment and
    /// term context — the warm-session entry point.
    ///
    /// `delta` is borrowed for the duration of the call and handed
    /// back with whatever its derivation cache learned, so a
    /// long-lived session reuses prelude-level derivations across
    /// programs (elaboration pushes and pops frames in a balanced
    /// way, and the cache's scope-aware invalidation keeps entries
    /// that only used surviving frames). `evidence` must be
    /// frame-aligned with `delta` (outermost first, entries in each
    /// frame's stored canonical context order): it supplies the
    /// System F evidence variable for every rule already in scope.
    /// `gamma` provides the types of free term variables (a prelude's
    /// `let` bindings).
    ///
    /// # Errors
    ///
    /// See [`Elaborator::elaborate`].
    ///
    /// # Panics
    ///
    /// Debug builds assert that `delta` and `evidence` have the same
    /// number of frames.
    pub fn elaborate_with_env(
        &self,
        delta: &mut ImplicitEnv,
        evidence: &[Vec<Symbol>],
        gamma: &[(Symbol, Type)],
        e: &Expr,
    ) -> Result<(Type, FExpr), ElabError> {
        debug_assert_eq!(
            delta.depth(),
            evidence.len(),
            "evidence frames must align with the implicit environment"
        );
        let mut st = State {
            gamma: gamma.to_vec(),
            delta: std::mem::take(delta),
            evidence: evidence.to_vec(),
            tyvars: BTreeSet::new(),
            kinds: std::collections::BTreeMap::new(),
        };
        let out = self.elab(&mut st, e);
        *delta = st.delta;
        out
    }

    fn elab(&self, st: &mut State, e: &Expr) -> Result<(Type, FExpr), ElabError> {
        match e {
            Expr::Int(n) => Ok((Type::Int, FExpr::Int(*n))),
            Expr::Bool(b) => Ok((Type::Bool, FExpr::Bool(*b))),
            Expr::Str(s) => Ok((Type::Str, FExpr::Str(s.clone()))),
            Expr::Unit => Ok((Type::Unit, FExpr::Unit)),
            Expr::Var(x) => {
                let t = st
                    .gamma
                    .iter()
                    .rev()
                    .find(|(y, _)| y == x)
                    .map(|(_, t)| t.clone())
                    .ok_or(TypeError::UnboundVar(*x))?;
                Ok((t, FExpr::Var(*x)))
            }
            Expr::Lam(x, t, body) => {
                st.gamma.push((*x, t.clone()));
                let out = self.elab(st, body);
                st.gamma.pop();
                let (bt, be) = out?;
                Ok((
                    Type::arrow(t.clone(), bt),
                    FExpr::Lam(*x, translate_type(t), be.into()),
                ))
            }
            Expr::App(f, a) => {
                let (tf, ef) = self.elab(st, f)?;
                let (ta, ea) = self.elab(st, a)?;
                match tf {
                    Type::Arrow(dom, cod) => {
                        if !types_equal(&dom, &ta) {
                            return Err(TypeError::Mismatch {
                                expected: (*dom).clone(),
                                found: ta,
                                context: "function application".into(),
                            }
                            .into());
                        }
                        Ok(((*cod).clone(), FExpr::app(ef, ea)))
                    }
                    other => Err(TypeError::NotAFunction(other).into()),
                }
            }
            Expr::Query(rho) => {
                if !rho.is_unambiguous() {
                    return Err(TypeError::Ambiguous(rho.clone()).into());
                }
                let res = match &self.trace {
                    Some(sink) => {
                        let mut sink = sink.clone();
                        implicit_core::resolve::resolve_with(
                            &st.delta,
                            rho,
                            &self.policy,
                            &mut sink,
                        )
                        .map_err(TypeError::from)?
                    }
                    None => resolve(&st.delta, rho, &self.policy).map_err(TypeError::from)?,
                };
                // Dictionary inline cache: resolution always runs
                // (cheap under the derivation cache, and its events
                // keep the trace stream IC-transparent); the cache
                // only decides whether the *evidence* is a promoted
                // global or a fresh term. The hit condition re-checks
                // prelude-purity of the current derivation, so a
                // program shadowing a prelude rule can never observe
                // a stale dictionary.
                if let Some(dict) = &self.dict {
                    if DictCache::cacheable(rho) {
                        let pure =
                            derivation_within(&res, st.delta.depth(), dict.borrow().prelude_depth);
                        if pure {
                            if let Some(g) = dict.borrow_mut().lookup_hit(intern::rule_id(rho)) {
                                self.emit_ic(true, rho);
                                return Ok((rho.to_type(), FExpr::Var(g)));
                            }
                        }
                        dict.borrow_mut().misses += 1;
                        self.emit_ic(false, rho);
                        if pure {
                            let ev = self.evidence_of(st, &res)?;
                            dict.borrow_mut().pending.push((rho.clone(), ev.clone()));
                            return Ok((rho.to_type(), ev));
                        }
                    }
                }
                let ev = self.evidence_of(st, &res)?;
                Ok((rho.to_type(), ev))
            }
            Expr::RuleAbs(rho, body) => {
                // Rename binders apart from anything in scope, as in
                // the type checker.
                let used: BTreeSet<TyVar> = st
                    .tyvars
                    .iter()
                    .copied()
                    .chain(st.gamma.iter().flat_map(|(_, t)| t.ftv()))
                    .chain(st.delta.ftv())
                    .collect();
                let (rho, body) = if rho.vars().iter().any(|v| used.contains(v)) {
                    let mut sub = TySubst::new();
                    let mut new_vars = Vec::new();
                    for v in rho.vars() {
                        if used.contains(v) {
                            let nv = fresh(base_name(*v));
                            sub.bind(*v, Type::Var(nv));
                            new_vars.push(nv);
                        } else {
                            new_vars.push(*v);
                        }
                    }
                    (
                        RuleType::new(
                            new_vars,
                            sub.apply_context(rho.context()),
                            sub.apply_type(rho.head()),
                        ),
                        sub.apply_expr(body),
                    )
                } else {
                    ((**rho).clone(), (**body).clone())
                };
                if !rho.is_unambiguous() {
                    return Err(TypeError::Ambiguous(rho.clone()).into());
                }
                // TrRule: Λᾱ. λ(x̄:|ρ̄|). E
                let ev_vars: Vec<Symbol> = rho.context().iter().map(|_| fresh("ev")).collect();
                let binder_kinds = implicit_core::typeck::infer_binder_kinds(self.decls, &rho)?;
                for v in rho.vars() {
                    st.tyvars.insert(*v);
                    st.kinds
                        .insert(*v, binder_kinds.get(v).copied().unwrap_or(0));
                }
                st.delta.push(rho.context().to_vec());
                st.evidence.push(ev_vars.clone());
                let out = self.elab(st, &body);
                st.evidence.pop();
                st.delta.pop();
                for v in rho.vars() {
                    st.tyvars.remove(v);
                    st.kinds.remove(v);
                }
                let (bt, be) = out?;
                if !types_equal(&bt, rho.head()) {
                    return Err(TypeError::Mismatch {
                        expected: rho.head().clone(),
                        found: bt,
                        context: "rule abstraction body".into(),
                    }
                    .into());
                }
                let lams = ev_vars
                    .iter()
                    .zip(rho.context())
                    .rev()
                    .fold(be, |acc, (x, r)| {
                        FExpr::Lam(*x, translate_rule_type(r), acc.into())
                    });
                let wrapped = FExpr::ty_abs(rho.vars().iter().copied(), lams);
                Ok((rho.to_type(), wrapped))
            }
            Expr::TyApp(f, args) => {
                let (tf, ef) = self.elab(st, f)?;
                let Type::Rule(rho) = tf else {
                    return Err(TypeError::NotARule(tf).into());
                };
                if rho.vars().len() != args.len() {
                    return Err(TypeError::ArityMismatch {
                        what: format!("type application of `{rho}`"),
                        expected: rho.vars().len(),
                        found: args.len(),
                    }
                    .into());
                }
                let fixed = coerce_type_arguments(self.decls, &rho, args)?;
                let theta = TySubst::bind_all(rho.vars(), &fixed);
                let out_ty = Type::rule(RuleType::new(
                    Vec::new(),
                    theta.apply_context(rho.context()),
                    theta.apply_type(rho.head()),
                ));
                let out_e = FExpr::ty_apps(ef, fixed.iter().map(translate_type));
                Ok((out_ty, out_e))
            }
            Expr::RuleApp(f, args) => {
                let (tf, ef) = self.elab(st, f)?;
                let Type::Rule(rho) = tf else {
                    return Err(TypeError::NotARule(tf).into());
                };
                if !rho.vars().is_empty() {
                    return Err(TypeError::PolymorphicRuleApplication((*rho).clone()).into());
                }
                // Elaborate each argument, then order them to match
                // the context (and thus the λ-binder order of the
                // rule's elaboration).
                let mut elaborated: Vec<(String, FExpr)> = Vec::with_capacity(args.len());
                for (arg, arho) in args {
                    let (got, ea) = self.elab(st, arg)?;
                    let want = arho.to_type();
                    if !types_equal(&got, &want) {
                        return Err(TypeError::Mismatch {
                            expected: want,
                            found: got,
                            context: "rule application argument".into(),
                        }
                        .into());
                    }
                    elaborated.push((alpha::canonical_key(arho), ea));
                }
                let supplied: Vec<RuleType> = args.iter().map(|(_, r)| r.clone()).collect();
                let mut ordered = Vec::with_capacity(rho.context().len());
                for want in rho.context() {
                    let key = alpha::canonical_key(want);
                    match elaborated.iter().position(|(k, _)| *k == key) {
                        Some(ix) => ordered.push(elaborated.remove(ix).1),
                        None => {
                            return Err(TypeError::ContextMismatch {
                                expected: rho.context().to_vec(),
                                supplied,
                            }
                            .into())
                        }
                    }
                }
                if !elaborated.is_empty() {
                    return Err(TypeError::ContextMismatch {
                        expected: rho.context().to_vec(),
                        supplied,
                    }
                    .into());
                }
                Ok((rho.head().clone(), FExpr::apps(ef, ordered)))
            }
            Expr::If(c, t, f) => {
                let (tc, ec) = self.elab(st, c)?;
                if !types_equal(&tc, &Type::Bool) {
                    return Err(TypeError::Mismatch {
                        expected: Type::Bool,
                        found: tc,
                        context: "if condition".into(),
                    }
                    .into());
                }
                let (tt, et) = self.elab(st, t)?;
                let (tf2, ef) = self.elab(st, f)?;
                if !types_equal(&tt, &tf2) {
                    return Err(TypeError::Mismatch {
                        expected: tt,
                        found: tf2,
                        context: "if branches".into(),
                    }
                    .into());
                }
                Ok((tt, FExpr::If(ec.into(), et.into(), ef.into())))
            }
            Expr::BinOp(op, a, b) => {
                let (ta, ea) = self.elab(st, a)?;
                let (tb, eb) = self.elab(st, b)?;
                let tout = check_binop(*op, ta, tb)?;
                Ok((tout, FExpr::BinOp(*op, ea.into(), eb.into())))
            }
            Expr::UnOp(op, a) => {
                let (ta, ea) = self.elab(st, a)?;
                let (dom, cod) = match op {
                    UnOp::Not => (Type::Bool, Type::Bool),
                    UnOp::Neg => (Type::Int, Type::Int),
                    UnOp::IntToStr => (Type::Int, Type::Str),
                };
                if !types_equal(&ta, &dom) {
                    return Err(TypeError::Mismatch {
                        expected: dom,
                        found: ta,
                        context: format!("operand of {op:?}"),
                    }
                    .into());
                }
                Ok((cod, FExpr::UnOp(*op, ea.into())))
            }
            Expr::Pair(a, b) => {
                let (ta, ea) = self.elab(st, a)?;
                let (tb, eb) = self.elab(st, b)?;
                Ok((Type::prod(ta, tb), FExpr::Pair(ea.into(), eb.into())))
            }
            Expr::Fst(a) => {
                let (ta, ea) = self.elab(st, a)?;
                match ta {
                    Type::Prod(l, _) => Ok(((*l).clone(), FExpr::Fst(ea.into()))),
                    other => Err(TypeError::NotAPair(other).into()),
                }
            }
            Expr::Snd(a) => {
                let (ta, ea) = self.elab(st, a)?;
                match ta {
                    Type::Prod(_, r) => Ok(((*r).clone(), FExpr::Snd(ea.into()))),
                    other => Err(TypeError::NotAPair(other).into()),
                }
            }
            Expr::Nil(t) => Ok((Type::list(t.clone()), FExpr::Nil(translate_type(t)))),
            Expr::Cons(h, t) => {
                let (th, eh) = self.elab(st, h)?;
                let (tt, et) = self.elab(st, t)?;
                match &tt {
                    Type::List(el) if types_equal(el, &th) => {
                        Ok((tt.clone(), FExpr::Cons(eh.into(), et.into())))
                    }
                    Type::List(el) => Err(TypeError::Mismatch {
                        expected: (**el).clone(),
                        found: th,
                        context: "cons head".into(),
                    }
                    .into()),
                    _ => Err(TypeError::NotAList(tt).into()),
                }
            }
            Expr::ListCase {
                scrut,
                nil,
                head,
                tail,
                cons,
            } => {
                let (ts, es) = self.elab(st, scrut)?;
                let Type::List(el) = ts else {
                    return Err(TypeError::NotAList(ts).into());
                };
                let (tn, en) = self.elab(st, nil)?;
                st.gamma.push((*head, (*el).clone()));
                st.gamma.push((*tail, Type::List(el)));
                let out = self.elab(st, cons);
                st.gamma.pop();
                st.gamma.pop();
                let (tc, ec) = out?;
                if !types_equal(&tn, &tc) {
                    return Err(TypeError::Mismatch {
                        expected: tn,
                        found: tc,
                        context: "case branches".into(),
                    }
                    .into());
                }
                Ok((
                    tn,
                    FExpr::ListCase {
                        scrut: es.into(),
                        nil: en.into(),
                        head: *head,
                        tail: *tail,
                        cons: ec.into(),
                    },
                ))
            }
            Expr::Fix(x, t, body) => {
                if !matches!(t, Type::Arrow(_, _) | Type::Rule(_)) {
                    return Err(TypeError::FixNotFunction(t.clone()).into());
                }
                st.gamma.push((*x, t.clone()));
                let out = self.elab(st, body);
                st.gamma.pop();
                let (tb, eb) = out?;
                if !types_equal(&tb, t) {
                    return Err(TypeError::Mismatch {
                        expected: t.clone(),
                        found: tb,
                        context: "fix body".into(),
                    }
                    .into());
                }
                Ok((t.clone(), FExpr::Fix(*x, translate_type(t), eb.into())))
            }
            Expr::Make(name, targs, fields) => {
                let decl = self
                    .decls
                    .lookup(*name)
                    .ok_or(TypeError::UnknownInterface(*name))?;
                if decl.vars.len() != targs.len() {
                    return Err(TypeError::ArityMismatch {
                        what: format!("interface `{name}`"),
                        expected: decl.vars.len(),
                        found: targs.len(),
                    }
                    .into());
                }
                if fields.len() != decl.fields.len() {
                    return Err(TypeError::BadRecordLiteral {
                        interface: *name,
                        reason: format!(
                            "expected {} field(s), found {}",
                            decl.fields.len(),
                            fields.len()
                        ),
                    }
                    .into());
                }
                let mut out_fields = Vec::with_capacity(fields.len());
                for (u, fe) in fields {
                    let want = decl.field_type(*u, targs).ok_or(TypeError::UnknownField {
                        interface: *name,
                        field: *u,
                    })?;
                    let (got, ee) = self.elab(st, fe)?;
                    if !types_equal(&got, &want) {
                        return Err(TypeError::Mismatch {
                            expected: want,
                            found: got,
                            context: format!("field `{u}` of `{name}`"),
                        }
                        .into());
                    }
                    out_fields.push((*u, ee));
                }
                Ok((
                    Type::Con(*name, targs.clone()),
                    FExpr::Make(
                        *name,
                        targs.iter().map(translate_type).collect(),
                        out_fields,
                    ),
                ))
            }
            Expr::Proj(rec, field) => {
                let (tr, er) = self.elab(st, rec)?;
                let Type::Con(name, targs) = tr else {
                    return Err(TypeError::NotARecord(tr).into());
                };
                let decl = self
                    .decls
                    .lookup(name)
                    .ok_or(TypeError::UnknownInterface(name))?;
                let t = decl
                    .field_type(*field, &targs)
                    .ok_or(TypeError::UnknownField {
                        interface: name,
                        field: *field,
                    })?;
                Ok((t, FExpr::Proj(er.into(), *field)))
            }
            Expr::Inject(ctor, targs, args) => self.elab_inject(st, *ctor, targs, args),
            Expr::Match(scrut, arms) => self.elab_match(st, scrut, arms),
        }
    }

    /// `Expr::Inject` elaboration, out of line to keep the recursive
    /// elaborator's stack frames small.
    #[inline(never)]
    fn elab_inject(
        &self,
        st: &mut State,
        ctor: Symbol,
        targs: &[Type],
        args: &[Expr],
    ) -> Result<(Type, FExpr), ElabError> {
        let (data, _) = self
            .decls
            .lookup_ctor(ctor)
            .ok_or(TypeError::UnknownCtor(ctor))?;
        let data = data.clone();
        if data.params.len() != targs.len() {
            return Err(TypeError::ArityMismatch {
                what: format!("data type `{}`", data.name),
                expected: data.params.len(),
                found: targs.len(),
            }
            .into());
        }
        // Coerce constructor-kind arguments (mirrors typeck).
        let fixed: Vec<Type> = data
            .params
            .iter()
            .zip(targs)
            .map(|((_, k), t)| match t {
                Type::Con(n, a) if *k > 0 && a.is_empty() => {
                    Type::Ctor(implicit_core::syntax::TyCon::Named(*n))
                }
                other => other.clone(),
            })
            .collect();
        let want = data
            .ctor_arg_types(ctor, &fixed)
            .expect("ctor just looked up");
        if want.len() != args.len() {
            return Err(TypeError::ArityMismatch {
                what: format!("constructor `{ctor}`"),
                expected: want.len(),
                found: args.len(),
            }
            .into());
        }
        let mut f_args = Vec::with_capacity(args.len());
        for (w, a) in want.iter().zip(args) {
            let (got, ea) = self.elab(st, a)?;
            if !types_equal(&got, w) {
                return Err(TypeError::Mismatch {
                    expected: w.clone(),
                    found: got,
                    context: format!("argument of constructor `{ctor}`"),
                }
                .into());
            }
            f_args.push(ea);
        }
        Ok((
            Type::Con(data.name, fixed.clone()),
            FExpr::Inject(ctor, fixed.iter().map(translate_type).collect(), f_args),
        ))
    }

    /// `Expr::Match` elaboration, out of line to keep the recursive
    /// elaborator's stack frames small.
    #[inline(never)]
    fn elab_match(
        &self,
        st: &mut State,
        scrut: &Expr,
        arms: &[implicit_core::syntax::MatchArm],
    ) -> Result<(Type, FExpr), ElabError> {
        let (ts, es) = self.elab(st, scrut)?;
        let Type::Con(name, targs) = &ts else {
            return Err(TypeError::NotAData(ts).into());
        };
        let Some(data) = self.decls.lookup_data(*name).cloned() else {
            return Err(TypeError::NotAData(ts.clone()).into());
        };
        let mut remaining: Vec<Symbol> = data.ctors.iter().map(|(c, _)| *c).collect();
        let mut result: Option<Type> = None;
        let mut f_arms = Vec::with_capacity(arms.len());
        for arm in arms {
            let Some(pos) = remaining.iter().position(|c| *c == arm.ctor) else {
                return Err(TypeError::BadMatch {
                    data: *name,
                    reason: format!("unexpected arm `{}`", arm.ctor),
                }
                .into());
            };
            remaining.remove(pos);
            let want = data
                .ctor_arg_types(arm.ctor, targs)
                .expect("arm ctor exists");
            if want.len() != arm.binders.len() {
                return Err(TypeError::BadMatch {
                    data: *name,
                    reason: format!("binder count for `{}`", arm.ctor),
                }
                .into());
            }
            for (b, w) in arm.binders.iter().zip(&want) {
                st.gamma.push((*b, w.clone()));
            }
            let out = self.elab(st, &arm.body);
            for _ in &arm.binders {
                st.gamma.pop();
            }
            let (got, eb) = out?;
            match &result {
                None => result = Some(got),
                Some(prev) if types_equal(prev, &got) => {}
                Some(prev) => {
                    return Err(TypeError::Mismatch {
                        expected: prev.clone(),
                        found: got,
                        context: "match arms".into(),
                    }
                    .into())
                }
            }
            f_arms.push(systemf::syntax::FMatchArm {
                ctor: arm.ctor,
                binders: arm.binders.clone(),
                body: eb,
            });
        }
        if !remaining.is_empty() {
            return Err(TypeError::BadMatch {
                data: *name,
                reason: "non-exhaustive match".into(),
            }
            .into());
        }
        let result = result.ok_or(TypeError::BadMatch {
            data: *name,
            reason: "empty match".into(),
        })?;
        Ok((result, FExpr::Match(es.into(), f_arms)))
    }

    /// Rule `TrRes`: turns a resolution derivation into System F
    /// evidence `Λᾱ. λ(x̄:|ρ̄|). (E Ē)`.
    fn evidence_of(&self, st: &State, res: &Resolution) -> Result<FExpr, ElabError> {
        // Fresh binders for the query's own (assumed) context.
        let binders: Vec<Symbol> = res.query.context().iter().map(|_| fresh("q")).collect();
        let body = self.evidence_body(st, res, &binders)?;
        let lams = binders
            .iter()
            .zip(res.query.context())
            .rev()
            .fold(body, |acc, (x, r)| {
                FExpr::Lam(*x, translate_rule_type(r), acc.into())
            });
        Ok(FExpr::ty_abs(res.query.vars().iter().copied(), lams))
    }

    fn evidence_body(
        &self,
        st: &State,
        res: &Resolution,
        binders: &[Symbol],
    ) -> Result<FExpr, ElabError> {
        let base_var = match res.rule {
            RuleRef::Env { frame, index } => st
                .evidence_var(frame, index)
                .expect("resolution refers to a frame the elaborator pushed"),
            RuleRef::Extension { .. } => return Err(ElabError::ExtensionNotElaborable),
        };
        // x |τ̄| — instantiate the rule's quantifiers…
        let base = FExpr::ty_apps(
            FExpr::Var(base_var),
            res.type_args.iter().map(translate_type),
        );
        // …then apply the premise evidence in the rule's stored
        // premise order.
        let mut args = Vec::with_capacity(res.premises.len());
        for p in &res.premises {
            match p {
                Premise::Assumed { index, .. } => args.push(FExpr::Var(binders[*index])),
                Premise::Derived(inner) => args.push(self.evidence_of(st, inner)?),
            }
        }
        Ok(FExpr::apps(base, args))
    }
}

/// Coerces type arguments to the kinds their quantifiers demand:
/// bare interface names given for arrow-kinded binders become
/// constructor references (mirroring the type checker).
fn coerce_type_arguments(
    decls: &Declarations,
    rho: &RuleType,
    args: &[Type],
) -> Result<Vec<Type>, TypeError> {
    use implicit_core::syntax::TyCon;
    let kinds = implicit_core::typeck::infer_binder_kinds(decls, rho)?;
    let mut out = Vec::with_capacity(args.len());
    for (v, arg) in rho.vars().iter().zip(args) {
        let k = kinds.get(v).copied().unwrap_or(0);
        let fixed = match (k, arg) {
            (0, _) => arg.clone(),
            (_, Type::Con(n, a)) if a.is_empty() => {
                let decl = decls.lookup(*n).ok_or(TypeError::UnknownInterface(*n))?;
                if decl.vars.len() != k {
                    return Err(TypeError::ArityMismatch {
                        what: format!("constructor `{n}`"),
                        expected: k,
                        found: decl.vars.len(),
                    });
                }
                Type::Ctor(TyCon::Named(*n))
            }
            (_, other) => other.clone(),
        };
        out.push(fixed);
    }
    Ok(out)
}

fn check_binop(op: implicit_core::syntax::BinOp, ta: Type, tb: Type) -> Result<Type, TypeError> {
    use implicit_core::syntax::BinOp::*;
    let err = |expected: Type, found: Type| TypeError::Mismatch {
        expected,
        found,
        context: format!("operand of `{}`", op.symbol()),
    };
    match op {
        Add | Sub | Mul | Div | Mod => {
            if !types_equal(&ta, &Type::Int) {
                return Err(err(Type::Int, ta));
            }
            if !types_equal(&tb, &Type::Int) {
                return Err(err(Type::Int, tb));
            }
            Ok(Type::Int)
        }
        Lt | Le => {
            if !types_equal(&ta, &Type::Int) {
                return Err(err(Type::Int, ta));
            }
            if !types_equal(&tb, &Type::Int) {
                return Err(err(Type::Int, tb));
            }
            Ok(Type::Bool)
        }
        And | Or => {
            if !types_equal(&ta, &Type::Bool) {
                return Err(err(Type::Bool, ta));
            }
            if !types_equal(&tb, &Type::Bool) {
                return Err(err(Type::Bool, tb));
            }
            Ok(Type::Bool)
        }
        Concat => {
            if !types_equal(&ta, &Type::Str) {
                return Err(err(Type::Str, ta));
            }
            if !types_equal(&tb, &Type::Str) {
                return Err(err(Type::Str, tb));
            }
            Ok(Type::Str)
        }
        Eq => {
            if !matches!(ta, Type::Int | Type::Bool | Type::Str) {
                return Err(err(Type::Int, ta));
            }
            if !types_equal(&ta, &tb) {
                return Err(err(ta, tb));
            }
            Ok(Type::Bool)
        }
    }
}

/// Elaborates a closed program with the paper's default policy.
///
/// # Errors
///
/// See [`Elaborator::elaborate`].
pub fn elaborate(decls: &Declarations, e: &Expr) -> Result<(Type, FExpr), ElabError> {
    Elaborator::new(decls).elaborate(e)
}

/// The output of a full run: elaborate, type-check in System F,
/// evaluate.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// The λ⇒ type of the source expression.
    pub source_type: Type,
    /// The System F elaboration.
    pub target: FExpr,
    /// The System F type of the elaboration.
    pub target_type: FType,
    /// The computed value.
    pub value: Value,
}

/// An error from [`run`].
#[derive(Clone, Debug)]
pub enum RunError {
    /// Elaboration failed.
    Elab(ElabError),
    /// The elaborated term was ill-typed in System F — a violation of
    /// the type-preservation theorem (a bug, if it ever happens).
    PreservationViolated(FTypeError),
    /// Evaluation failed.
    Eval(EvalError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Elab(e) => write!(f, "{e}"),
            RunError::PreservationViolated(e) => {
                write!(f, "type preservation violated: {e}")
            }
            RunError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Elaborates, verifies type preservation, and evaluates (the paper's
/// `eval(e) = V` dynamic semantics).
///
/// # Errors
///
/// Returns a [`RunError`] describing which stage failed.
pub fn run(decls: &Declarations, e: &Expr) -> Result<RunOutput, RunError> {
    run_with(decls, e, &ResolutionPolicy::paper())
}

/// [`run`] under a custom resolution policy.
///
/// # Errors
///
/// Returns a [`RunError`] describing which stage failed.
pub fn run_with(
    decls: &Declarations,
    e: &Expr,
    policy: &ResolutionPolicy,
) -> Result<RunOutput, RunError> {
    let (source_type, target) = Elaborator::with_policy(decls, policy.clone())
        .elaborate(e)
        .map_err(RunError::Elab)?;
    let fdecls = translate_decls(decls);
    let target_type =
        systemf::typecheck(&fdecls, &target).map_err(RunError::PreservationViolated)?;
    let value = Evaluator::new().eval(&target).map_err(RunError::Eval)?;
    Ok(RunOutput {
        source_type,
        target,
        target_type,
        value,
    })
}

/// Executable type preservation (the paper's Theorem): elaborates
/// `e`, type-checks the System F output, and checks the result is
/// α-equal to `|τ|`.
///
/// # Errors
///
/// Returns a human-readable description of the first violated stage.
pub fn check_preservation(decls: &Declarations, e: &Expr) -> Result<(), String> {
    let (ty, fe) = elaborate(decls, e).map_err(|err| format!("elaboration failed: {err}"))?;
    let fdecls = translate_decls(decls);
    let fty = systemf::typecheck(&fdecls, &fe)
        .map_err(|err| format!("elaborated term ill-typed: {err}\nterm: {fe}"))?;
    let want = translate_type(&ty);
    if fty.alpha_eq(&want) {
        Ok(())
    } else {
        Err(format!(
            "elaborated type `{fty}` differs from translated type `{want}`"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use implicit_core::parse::parse_expr;
    use implicit_core::syntax::BinOp;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    fn run0(src: &str) -> RunOutput {
        let e = parse_expr(src).unwrap();
        run(&Declarations::new(), &e).unwrap()
    }

    #[test]
    fn e1_returns_2_false() {
        let out = run0("implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool");
        assert_eq!(out.value.to_string(), "(2, false)");
        assert_eq!(out.target_type, FType::prod(FType::Int, FType::Bool));
    }

    #[test]
    fn e2_higher_order_returns_3_4() {
        let out = run0(
            "implicit {3 : Int, rule ({Int} => Int * Int) ((?(Int), ?(Int) + 1)) : {Int} => Int * Int} \
             in ?(Int * Int) : Int * Int",
        );
        assert_eq!(out.value.to_string(), "(3, 4)");
    }

    #[test]
    fn e3_polymorphic_rules() {
        let out = run0(
            "implicit {3 : Int, true : Bool, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
             in (?(Int * Int), ?(Bool * Bool)) : (Int * Int) * (Bool * Bool)",
        );
        assert_eq!(out.value.to_string(), "((3, 3), (true, true))");
    }

    #[test]
    fn e5_higher_order_polymorphic_composition() {
        let out = run0(
            "implicit {3 : Int, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
             in ?((Int * Int) * (Int * Int)) : (Int * Int) * (Int * Int)",
        );
        assert_eq!(out.value.to_string(), "((3, 3), (3, 3))");
    }

    #[test]
    fn e6_nested_scoping_returns_2() {
        let out = run0(
            "implicit {1 : Int} in \
               (implicit {true : Bool, rule ({Bool} => Int) (if ?(Bool) then 2 else 0) : {Bool} => Int} \
                in ?(Int) : Int) : Int",
        );
        assert_eq!(out.value.to_string(), "2");
    }

    #[test]
    fn e7_overlapping_rules_nearest_wins() {
        // Polymorphic values enter the environment as rule
        // abstractions with empty contexts (the paper's informal
        // `λx.x : ∀α.α→α`).
        let out = run0(
            "implicit {rule (forall a. a -> a) ((\\x : a. x)) : forall a. a -> a} in \
               (implicit {(\\n : Int. n + 1) : Int -> Int} in ?(Int -> Int) 1 : Int) : Int",
        );
        assert_eq!(out.value.to_string(), "2");
        let out2 = run0(
            "implicit {(\\n : Int. n + 1) : Int -> Int} in \
               (implicit {rule (forall a. a -> a) ((\\x : a. x)) : forall a. a -> a} in ?(Int -> Int) 1 : Int) : Int",
        );
        assert_eq!(out2.value.to_string(), "1");
    }

    #[test]
    fn paper_section4_elaboration_shape() {
        // rule(∀α.{α} ⇒ α×α)((?α,?α))  ⇝  Λα. λ(x:α). (x, x)
        let rho = RuleType::new(
            vec![v("alpha")],
            vec![tv("alpha").promote()],
            Type::prod(tv("alpha"), tv("alpha")),
        );
        let e = Expr::rule_abs(
            rho,
            Expr::pair(
                Expr::query_simple(tv("alpha")),
                Expr::query_simple(tv("alpha")),
            ),
        );
        let (_, fe) = elaborate(&Declarations::new(), &e).unwrap();
        match fe {
            FExpr::TyAbs(a, body) => match &*body {
                FExpr::Lam(x, FType::Var(b), inner) => {
                    assert_eq!(a, *b);
                    match &**inner {
                        FExpr::Pair(l, r) => {
                            assert_eq!(**l, FExpr::Var(*x));
                            assert_eq!(**r, FExpr::Var(*x));
                        }
                        other => panic!("unexpected pair body {other:?}"),
                    }
                }
                other => panic!("unexpected lambda {other:?}"),
            },
            other => panic!("unexpected elaboration {other:?}"),
        }
    }

    #[test]
    fn paper_section4_resolution_evidence_shape() {
        // Δ = Int:x1, (∀α.{α}⇒α×α):x2 ⊢r Int×Int ⇝ x2 Int x1.
        let out = run0(
            "implicit {7 : Int, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
             in ?(Int * Int) : Int * Int",
        );
        assert_eq!(out.value.to_string(), "(7, 7)");
        // The evidence appears as an application of the rule evidence
        // variable to the type argument and the Int evidence.
        let printed = out.target.to_string();
        assert!(
            printed.contains("[Int]"),
            "no type application in {printed}"
        );
    }

    #[test]
    fn partial_resolution_elaborates() {
        // E10: Bool; ∀α.{Bool,α}⇒α×α ⊢r {Int} ⇒ Int×Int, then apply
        // the partially resolved rule to 5.
        let src = "implicit {true : Bool, \
                     rule (forall a. {Bool, a} => a * a) ((?(a), ?(a))) : forall a. {Bool, a} => a * a} \
                   in (?({Int} => Int * Int) with {5 : Int}) : Int * Int";
        let out = run0(src);
        assert_eq!(out.value.to_string(), "(5, 5)");
    }

    #[test]
    fn preservation_on_paper_examples() {
        let sources = [
            "implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool",
            "implicit {3 : Int, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
             in ?((Int * Int) * (Int * Int)) : (Int * Int) * (Int * Int)",
            "(\\x : Int. x + 1) 41",
            "fix f : Int -> Int. \\n : Int. if n <= 0 then 1 else n * f (n - 1)",
        ];
        for src in sources {
            let e = parse_expr(src).unwrap();
            check_preservation(&Declarations::new(), &e)
                .unwrap_or_else(|err| panic!("{src}: {err}"));
        }
    }

    #[test]
    fn unresolvable_queries_fail_to_elaborate() {
        let e = parse_expr("?(Int)").unwrap();
        assert!(matches!(
            elaborate(&Declarations::new(), &e),
            Err(ElabError::Type(TypeError::Resolution(_)))
        ));
    }

    #[test]
    fn extension_policy_is_rejected_with_clear_error() {
        let rho = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let pair_abs = Expr::rule_abs(
            rho.clone(),
            Expr::pair(Expr::query_simple(tv("a")), Expr::query_simple(tv("a"))),
        );
        let query = RuleType::mono(
            vec![Type::Int.promote()],
            Type::prod(
                Type::prod(Type::Int, Type::Int),
                Type::prod(Type::Int, Type::Int),
            ),
        );
        let e = Expr::implicit(
            vec![(pair_abs, rho)],
            Expr::Query(query.clone()),
            query.to_type(),
        );
        let policy = ResolutionPolicy::paper().with_env_extension();
        let err = Elaborator::with_policy(&Declarations::new(), policy)
            .elaborate(&e)
            .unwrap_err();
        assert!(matches!(err, ElabError::ExtensionNotElaborable));
    }

    #[test]
    fn type_translation_matches_paper() {
        // |∀α.{α} ⇒ α×α| = ∀α. α → α×α
        let rho = RuleType::new(
            vec![v("a")],
            vec![tv("a").promote()],
            Type::prod(tv("a"), tv("a")),
        );
        let t = translate_rule_type(&rho);
        let want = FType::forall(
            [v("a")],
            FType::arrow(
                FType::Var(v("a")),
                FType::prod(FType::Var(v("a")), FType::Var(v("a"))),
            ),
        );
        assert!(t.alpha_eq(&want));
        // Empty contexts contribute no parameters.
        assert_eq!(translate_type(&Type::Int), FType::Int);
    }

    #[test]
    fn binop_elaboration_runs() {
        let e = Expr::binop(BinOp::Add, Expr::Int(1), Expr::Int(2));
        let out = run(&Declarations::new(), &e).unwrap();
        assert_eq!(out.value.to_string(), "3");
    }
}
