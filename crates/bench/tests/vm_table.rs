//! The B14 speedup table, measured directly (not via Criterion) so a
//! single release run prints the exact markdown recorded in
//! `EXPERIMENTS.md` §11:
//!
//! ```text
//! cargo test -p implicit-bench --release --test vm_table -- --ignored --nocapture
//! ```
//!
//! Also writes the `b14` section of the repo-root `BENCH_vm.json`
//! artifact (series, ms, speedup, checksum) for CI upload.

use std::time::Instant;

use implicit_bench::report::{detected_parallelism, write_section, BenchRow};
use implicit_bench::{batch_checksum, batch_metrics, run_vm_batch_cold, run_vm_batch_warm};
use implicit_pipeline::Backend;

const DEPTH: usize = 16;
const ITERS: i64 = 20_000;
const PROGRAMS: usize = 96;
const REPS: u32 = 3;

/// Times `f` (seconds per batch, best of [`REPS`] after one warmup),
/// asserting the checksum on every run.
fn time(f: impl Fn() -> i64, expect: i64) -> f64 {
    assert_eq!(f(), expect);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        assert_eq!(f(), expect);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[test]
#[ignore = "B14 measurement; run in release with --ignored --nocapture"]
fn vm_speedup_table() {
    // The metrics legs run the tree walker on this thread; its
    // recursion over the 20k-iteration loop needs more than the
    // default test-thread stack.
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(table_body)
        .unwrap()
        .join()
        .unwrap();
}

fn table_body() {
    let cpus = detected_parallelism();
    let expect = batch_checksum(DEPTH, PROGRAMS);
    let tree1 = time(
        || run_vm_batch_warm(DEPTH, ITERS, PROGRAMS, 1, Backend::Tree),
        expect,
    );
    println!();
    println!(
        "B14: {PROGRAMS} programs, {ITERS}-iteration fix loop, \
         chain depth {DEPTH}, best of {REPS} ({cpus} CPUs)"
    );
    println!();
    println!("| series | workers | time/batch | speedup vs warm tree |");
    println!("|---|---|---|---|");
    println!("| tree-walk, warm | 1 | {:.1} ms | 1.00x |", tree1 * 1e3);
    // Multi-worker series only where scaling is physically possible:
    // on a 1-CPU runner a "4 workers" time is contention, and the row
    // is dropped from both the table and the artifact.
    let tree4 = (cpus > 1).then(|| {
        let t = time(
            || run_vm_batch_warm(DEPTH, ITERS, PROGRAMS, 4, Backend::Tree),
            expect,
        );
        println!(
            "| tree-walk, warm | 4 | {:.1} ms | {:.2}x |",
            t * 1e3,
            tree1 / t
        );
        t
    });
    if tree4.is_none() {
        println!("| tree-walk, warm | 4 | skipped (single-CPU runner) | — |");
    }
    let vm_cold = time(
        || run_vm_batch_cold(DEPTH, ITERS, PROGRAMS, 1, Backend::Vm),
        expect,
    );
    println!(
        "| register vm, cold (prelude recompiled per program) | 1 | {:.1} ms | {:.2}x |",
        vm_cold * 1e3,
        tree1 / vm_cold
    );
    let stack1 = time(
        || run_vm_batch_warm(DEPTH, ITERS, PROGRAMS, 1, Backend::VmStack),
        expect,
    );
    println!(
        "| stack vm, warm-compiled | 1 | {:.1} ms | {:.2}x |",
        stack1 * 1e3,
        tree1 / stack1
    );
    let vm1 = time(
        || run_vm_batch_warm(DEPTH, ITERS, PROGRAMS, 1, Backend::Vm),
        expect,
    );
    println!(
        "| register vm, warm-compiled | 1 | {:.1} ms | {:.2}x |",
        vm1 * 1e3,
        tree1 / vm1
    );
    let vm4 = (cpus > 1).then(|| {
        let t = time(
            || run_vm_batch_warm(DEPTH, ITERS, PROGRAMS, 4, Backend::Vm),
            expect,
        );
        println!(
            "| register vm, warm-compiled | 4 | {:.1} ms | {:.2}x |",
            t * 1e3,
            tree1 / t
        );
        t
    });
    if vm4.is_none() {
        println!("| register vm, warm-compiled | 4 | skipped (single-CPU runner) | — |");
    }
    println!();
    let mut series: Vec<(&str, usize, f64)> = vec![
        ("tree-walk, warm", 1, tree1),
        ("register vm, cold", 1, vm_cold),
        ("stack vm, warm", 1, stack1),
        ("register vm, warm", 1, vm1),
    ];
    if let Some(t) = tree4 {
        series.insert(1, ("tree-walk, warm", 4, t));
    }
    if let Some(t) = vm4 {
        series.push(("register vm, warm", 4, t));
    }
    let rows: Vec<BenchRow> = series
        .iter()
        .map(|&(label, workers, t)| BenchRow {
            series: format!(
                "{label}, {workers} worker{}",
                if workers == 1 { "" } else { "s" }
            ),
            workers,
            cpus,
            ms: t * 1e3,
            speedup: tree1 / t,
            checksum: expect.unsigned_abs(),
        })
        .collect();
    let path = write_section("b14", &rows);
    println!("wrote {}", path.display());
    println!();
    // Per-series evaluator metrics: the same warm batch once per
    // backend, through the unified `MetricsRegistry` snapshot. The
    // VM's charged fuel stays under the tree-walker's (tail calls
    // reuse frames, the unfold cache kills fix re-unfolding) — the
    // discrete shape behind the speedup column above.
    let tree_m = batch_metrics(DEPTH, Some(ITERS), PROGRAMS, Backend::Tree);
    let vm_m = batch_metrics(DEPTH, Some(ITERS), PROGRAMS, Backend::Vm);
    println!("warm tree metrics (1 worker):");
    println!();
    print!("{}", tree_m.render_table());
    println!();
    println!("warm register-vm metrics (1 worker):");
    println!();
    print!("{}", vm_m.render_table());
    println!();
    assert_eq!(tree_m.tree_runs, PROGRAMS as u64);
    assert_eq!(vm_m.vm_runs, PROGRAMS as u64);
    assert!(
        vm_m.vm_fuel <= tree_m.tree_fuel,
        "vm charged {} fuel, tree {} — the VM must not do more steps",
        vm_m.vm_fuel,
        tree_m.tree_fuel
    );
    assert!(vm_m.vm_tail_calls > 0, "the fix loop runs via TailCall");
    assert!(
        vm_m.instrs_fused > 0,
        "superinstruction fusion never fired on the B14 loop"
    );
    assert!(
        vm_m.ic_hits > 0,
        "the dictionary inline cache never hit across {PROGRAMS} repeated ground queries"
    );
    assert!(
        tree1 / vm1 >= 9.0,
        "warm register VM speedup {:.2}x over the tree-walker is below the 9x acceptance bar",
        tree1 / vm1
    );
    assert!(
        stack1 / vm1 >= 1.4,
        "register VM is only {:.2}x over the stack VM — below the 1.4x acceptance bar",
        stack1 / vm1
    );
}
