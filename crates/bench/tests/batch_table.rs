//! The B13 speedup table, measured directly (not via Criterion) so a
//! single release run prints the exact markdown recorded in
//! `EXPERIMENTS.md` §6:
//!
//! ```text
//! cargo test -p implicit-bench --release --test batch_table -- --ignored --nocapture
//! ```
//!
//! Also writes the `b13` section of the repo-root `BENCH_vm.json`
//! artifact (series, workers, cpus, ms, speedup, checksum) for CI
//! upload. Multi-worker series are skipped outright on single-CPU
//! runners: with one core they would measure scheduler contention,
//! not scaling, and a misleading row is worse than a missing one.

use std::time::Instant;

use implicit_bench::report::{detected_parallelism, write_section, BenchRow};
use implicit_bench::{batch_checksum, batch_metrics, run_batch_cold, run_batch_warm};
use implicit_pipeline::Backend;

const DEPTH: usize = 48;
const PROGRAMS: usize = 256;
const REPS: u32 = 3;

/// Times `f` (seconds per batch, best of [`REPS`] after one warmup),
/// asserting the checksum on every run.
fn time(f: impl Fn() -> i64, expect: i64) -> f64 {
    assert_eq!(f(), expect);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        assert_eq!(f(), expect);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[test]
#[ignore = "B13 measurement; run in release with --ignored --nocapture"]
fn batch_speedup_table() {
    let cpus = detected_parallelism();
    let expect = batch_checksum(DEPTH, PROGRAMS);
    let cold = time(|| run_batch_cold(DEPTH, PROGRAMS, 1), expect);
    println!();
    println!("B13: {PROGRAMS} programs, chain depth {DEPTH}, best of {REPS} ({cpus} CPUs)");
    println!();
    println!("| series | workers | time/batch | speedup vs cold |");
    println!("|---|---|---|---|");
    println!("| cold one-shot | 1 | {:.1} ms | 1.00x |", cold * 1e3);
    let mut rows = vec![BenchRow {
        series: "cold one-shot".to_string(),
        workers: 1,
        cpus,
        ms: cold * 1e3,
        speedup: 1.0,
        checksum: expect.unsigned_abs(),
    }];
    let mut warm_at = Vec::new();
    for m in [1usize, 2, 4, 8] {
        if m > 1 && cpus == 1 {
            println!("| warm session | {m} | skipped (single-CPU runner) | — |");
            continue;
        }
        let t = time(|| run_batch_warm(DEPTH, PROGRAMS, m), expect);
        warm_at.push((m, t));
        println!(
            "| warm session | {m} | {:.1} ms | {:.2}x |",
            t * 1e3,
            cold / t
        );
        rows.push(BenchRow {
            series: "warm session".to_string(),
            workers: m,
            cpus,
            ms: t * 1e3,
            speedup: cold / t,
            checksum: expect.unsigned_abs(),
        });
    }
    println!();
    let path = write_section("b13", &rows);
    println!("wrote {}", path.display());
    println!();
    // Per-series resolution metrics for the warm single-worker run
    // (the unified `MetricsRegistry` snapshot; see DESIGN.md S28).
    let m = batch_metrics(DEPTH, None, PROGRAMS, Backend::Tree);
    println!("warm session metrics (1 worker):");
    println!();
    print!("{}", m.render_table());
    println!();
    assert_eq!(m.programs, PROGRAMS as u64);
    assert!(
        m.cache_hits > m.cache_misses,
        "warm batch should answer most queries from the derivation cache \
         ({} hits / {} misses)",
        m.cache_hits,
        m.cache_misses
    );
    let warm1 = warm_at[0].1;
    assert!(
        cold / warm1 >= 2.0,
        "warm single-thread speedup {:.2}x is below the 2x acceptance bar",
        cold / warm1
    );
    // Scaling bar only where scaling is physically possible.
    if let Some(&(_, warm4)) = warm_at.iter().find(|&&(m, _)| m == 4) {
        assert!(
            cold / warm4 >= 3.0,
            "warm 4-thread speedup {:.2}x is below the 3x acceptance bar",
            cold / warm4
        );
    } else {
        println!("4-worker acceptance bar skipped: single-CPU runner");
    }
}
