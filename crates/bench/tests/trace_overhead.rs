//! NullSink-is-free: the resolution engine's `TraceSink` parameter
//! must cost nothing when tracing is off.
//!
//! Two layers of evidence:
//!
//! - deterministic (always-run) tests assert the instrumented entry
//!   points do *identical work* — same derivations, same statistics,
//!   zero events — whether called through the plain [`resolve`]
//!   facade, an explicit [`NullSink`], or a disabled dynamic sink;
//! - an `#[ignore]`d release measuring test times the B2/B12
//!   workloads through the static `NullSink` path against a
//!   `&mut dyn TraceSink` disabled sink and asserts the ratio stays
//!   within 3%, printing the absolute numbers next to the PR 4
//!   baselines recorded in `EXPERIMENTS.md` (§2 B2, §5 B12, §6 B13):
//!
//! ```text
//! cargo test -p implicit-bench --release --test trace_overhead -- --ignored --nocapture
//! ```

use std::hint::black_box;
use std::time::Instant;

use implicit_bench::{batch_checksum, chain_env, run_batch_warm, wide_env};
use implicit_core::resolve::{resolve, resolve_with, ResolutionPolicy};
use implicit_core::trace::{CollectSink, NullSink, TraceEvent, TraceSink};

/// An enabled-false sink behind a vtable: the strongest "disabled"
/// configuration that still goes through dynamic dispatch, i.e. what
/// a host embedding pays when it threads a sink it has switched off.
struct DisabledSink;

impl TraceSink for DisabledSink {
    fn enabled(&self) -> bool {
        false
    }

    fn event(&mut self, _ev: TraceEvent) {
        panic!("disabled sink must never receive events");
    }
}

#[test]
fn null_and_disabled_sinks_do_identical_work() {
    for (name, env, query) in [
        ("chain16", chain_env(16).0, chain_env(16).1),
        ("wide512", wide_env(512, 0.5).0, wide_env(512, 0.5).1),
    ] {
        for policy in [
            ResolutionPolicy::paper(),
            ResolutionPolicy::paper().without_cache(),
        ] {
            let plain = resolve(&env, &query, &policy).expect("resolves");
            let null = resolve_with(&env, &query, &policy, &mut NullSink).expect("resolves");
            let mut disabled: Box<dyn TraceSink> = Box::new(DisabledSink);
            let dynd = resolve_with(&env, &query, &policy, disabled.as_mut()).expect("resolves");
            assert_eq!(plain, null, "[{name}] NullSink changed the derivation");
            assert_eq!(
                plain, dynd,
                "[{name}] disabled dyn sink changed the derivation"
            );
            let s1 = plain.stats(&env);
            let s2 = dynd.stats(&env);
            assert_eq!(s1.steps, s2.steps, "[{name}] stats diverged");
            assert_eq!(s1.rules_tried, s2.rules_tried, "[{name}] stats diverged");
        }
    }
}

#[test]
fn enabled_tracing_counts_match_resolution_stats() {
    // The trace stream is an event-grained view of the same search
    // the statistics summarize: admitted candidates equal steps, and
    // each query closes exactly once.
    let (env, query) = chain_env(16);
    let policy = ResolutionPolicy::paper().without_cache();
    let mut sink = CollectSink::new();
    let res = resolve_with(&env, &query, &policy, &mut sink).expect("resolves");
    let admitted = sink
        .events
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::CandidateAdmitted { .. }))
        .count();
    let entered = sink
        .events
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::QueryEnter { .. }))
        .count();
    let resolved = sink
        .events
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::QueryResolved { .. }))
        .count();
    assert_eq!(admitted, res.steps(), "one admission per derivation step");
    assert_eq!(entered, resolved, "every query closes");
    assert_eq!(entered, res.steps(), "uncached: one sub-query per step");
}

/// Nanoseconds per call, best of `REPS` batches of `iters`.
fn bench_ns(iters: u32, reps: u32, mut f: impl FnMut()) -> f64 {
    // Warmup batch.
    for _ in 0..iters {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

#[test]
#[ignore = "overhead measurement; run in release with --ignored --nocapture"]
fn nullsink_overhead_stays_within_budget() {
    const REPS: u32 = 5;
    // (label, EXPERIMENTS.md baseline ns, iterations, env, query, policy)
    let wide = wide_env(512, 0.5);
    let chain = chain_env(64);
    let workloads: Vec<(&str, f64, u32, _, _, ResolutionPolicy)> = vec![
        (
            "B2 wide n=512, cached",
            271.0,
            20_000,
            wide.0.clone(),
            wide.1.clone(),
            ResolutionPolicy::paper(),
        ),
        (
            "B12 chain n=64, cached",
            9_210.0,
            2_000,
            chain.0.clone(),
            chain.1.clone(),
            ResolutionPolicy::paper(),
        ),
        (
            "B12 chain n=64, uncached",
            523_000.0,
            40,
            chain.0,
            chain.1,
            ResolutionPolicy::paper().without_cache(),
        ),
    ];

    println!();
    println!("NullSink overhead (static monomorphized vs disabled dyn sink, best of {REPS}):");
    println!();
    println!("| workload | static | dyn-disabled | ratio | EXPERIMENTS.md baseline |");
    println!("|---|---|---|---|---|");
    for (label, baseline, iters, env, query, policy) in workloads {
        let stat = bench_ns(iters, REPS, || {
            black_box(resolve(black_box(&env), black_box(&query), &policy).unwrap());
        });
        let mut sink: Box<dyn TraceSink> = Box::new(DisabledSink);
        let dynd = bench_ns(iters, REPS, || {
            black_box(
                resolve_with(black_box(&env), black_box(&query), &policy, sink.as_mut()).unwrap(),
            );
        });
        let ratio = dynd / stat;
        println!("| {label} | {stat:.0} ns | {dynd:.0} ns | {ratio:.3}x | {baseline:.0} ns |");
        // The zero-cost claim proper: a vtable-dispatched disabled
        // sink costs within 3% of the statically-erased NullSink on
        // workloads big enough to measure (≥ 1 µs per call); the
        // sub-µs B2 row is dominated by timer noise, so it gets a
        // looser sanity bar.
        let bar = if stat >= 1_000.0 { 1.03 } else { 1.25 };
        assert!(
            ratio <= bar,
            "{label}: disabled-sink overhead {ratio:.3}x exceeds {bar}x"
        );
    }

    // B13 batch-level check: the warm batch (whose inner loop is the
    // instrumented resolve with NullSink) still meets the recorded
    // 122.7 ms / ≥2x-vs-cold envelope; assert a generous absolute
    // bar so container variance doesn't flake, and print the number
    // for the EXPERIMENTS.md comparison.
    const DEPTH: usize = 48;
    const PROGRAMS: usize = 256;
    let expect = batch_checksum(DEPTH, PROGRAMS);
    assert_eq!(run_batch_warm(DEPTH, PROGRAMS, 1), expect);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        assert_eq!(run_batch_warm(DEPTH, PROGRAMS, 1), expect);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    println!();
    println!(
        "| B13 warm batch, 1 worker | {:.1} ms | — | — | 122.7 ms |",
        best * 1e3
    );
    println!();
    assert!(
        best < 0.35,
        "warm batch took {:.1} ms — more than ~3x the recorded 122.7 ms baseline, \
         instrumentation likely leaked onto the hot path",
        best * 1e3
    );
}
