//! The B17 daemon-service table, measured directly (not via
//! Criterion) so a single release run prints the exact markdown
//! recorded in `EXPERIMENTS.md` §13:
//!
//! ```text
//! cargo test -p implicit-bench --release --test daemon_table -- --ignored --nocapture
//! ```
//!
//! One in-process `implicitd` serves a chain-prelude tenant; the legs
//! measure what residency is worth end-to-end (framing, socket, and
//! admission queue included in every number):
//!
//! - **cold-per-request** — every request opens a fresh tenant
//!   (prelude recompiled from source), evaluates, and closes: the
//!   no-daemon baseline a CLI invocation pays;
//! - **warm resident, 1 client** — one tenant compiled once, then
//!   sequential requests against the warm session;
//! - **warm resident, soak concurrency** — the same tenant under
//!   concurrent clients, client-side per-request latencies recorded
//!   for p50/p99.
//!
//! Acceptance bars pin the daemon's reason to exist: warm resident
//! throughput must be ≥ 3x cold-per-request (the tenant genuinely
//! amortizes the prelude), and at soak concurrency p99 must stay
//! ≤ 5x p50 (the admission queue bounds latency spread rather than
//! letting stragglers pile up).
//!
//! Also writes the `b17` section of the repo-root `BENCH_vm.json`
//! artifact for CI upload.

use std::time::Instant;

use implicit_bench::report::{detected_parallelism, write_section, BenchRow};
use implicit_pipeline::service::{prelude_source, Client, Daemon, DaemonConfig};
use implicit_pipeline::{Backend, Prelude};

const DEPTH: usize = 12;
const COLD_REQUESTS: usize = 24;
const WARM_REQUESTS: usize = 600;
const SOAK_CLIENTS: usize = 4;
const QUERY: &str = "?(Int * Int)";

/// Per-request work for the warm legs: evaluate the chain query and
/// fold the reply into a checksum so the measurement cannot be
/// optimized into not reading responses.
fn checked_eval(client: &mut Client, tenant: &str) -> u64 {
    let (value, ty) = client.eval(tenant, QUERY).expect("warm eval");
    (value.len() + ty.len()) as u64
}

#[test]
#[ignore = "B17 measurement; run in release with --ignored --nocapture"]
fn daemon_table() {
    let cpus = detected_parallelism();
    let d = Daemon::start(DaemonConfig {
        max_tenants: SOAK_CLIENTS + 2,
        ..DaemonConfig::default()
    })
    .expect("daemon starts");
    let addr = d.addr();
    let prelude = prelude_source(&Prelude::chain(DEPTH));

    // --- Cold-per-request: open + eval + close, every time. -------
    let mut c = Client::connect(addr).unwrap();
    let mut cold_checksum = 0u64;
    let t0 = Instant::now();
    for i in 0..COLD_REQUESTS {
        let tenant = format!("cold-{i}");
        c.open_prelude(&tenant, &prelude, Backend::Vm).unwrap();
        cold_checksum += checked_eval(&mut c, &tenant);
        c.close(&tenant).unwrap();
    }
    let cold_s = t0.elapsed().as_secs_f64();
    let cold_rps = COLD_REQUESTS as f64 / cold_s;

    // --- Warm resident, 1 client. ---------------------------------
    c.open_prelude("warm", &prelude, Backend::Vm).unwrap();
    let mut warm_checksum = checked_eval(&mut c, "warm"); // warmup
    let t0 = Instant::now();
    for _ in 0..WARM_REQUESTS {
        warm_checksum += checked_eval(&mut c, "warm");
    }
    let warm_s = t0.elapsed().as_secs_f64();
    let warm_rps = WARM_REQUESTS as f64 / warm_s;

    // --- Warm resident under soak concurrency. --------------------
    let t0 = Instant::now();
    let mut latencies_us: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SOAK_CLIENTS)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("soak client");
                    let mut lat = Vec::with_capacity(WARM_REQUESTS / SOAK_CLIENTS);
                    let mut sum = 0u64;
                    for _ in 0..WARM_REQUESTS / SOAK_CLIENTS {
                        let t = Instant::now();
                        sum += checked_eval(&mut client, "warm");
                        lat.push(t.elapsed().as_micros() as u64);
                    }
                    (lat, sum)
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            let (lat, sum) = h.join().unwrap();
            all.extend(lat);
            warm_checksum += sum;
        }
        all
    });
    let soak_s = t0.elapsed().as_secs_f64();
    let soak_total = latencies_us.len();
    let soak_rps = soak_total as f64 / soak_s;
    latencies_us.sort_unstable();
    let p50 = latencies_us[soak_total / 2];
    let p99 = latencies_us[(soak_total * 99 / 100).min(soak_total - 1)];

    // Every leg computed the same per-request answer.
    let per_request = cold_checksum / COLD_REQUESTS as u64;
    assert_eq!(
        warm_checksum % per_request,
        0,
        "legs disagreed on the reply"
    );

    println!();
    println!(
        "B17: chain depth {DEPTH}, query `{QUERY}`, {COLD_REQUESTS} cold / \
         {WARM_REQUESTS} warm requests, soak {SOAK_CLIENTS} clients ({cpus} CPUs)"
    );
    println!();
    println!("| series | clients | req/s | p50 | p99 |");
    println!("|---|---|---|---|---|");
    println!(
        "| cold-per-request | 1 | {cold_rps:.0} | {:.1} ms | — |",
        cold_s / COLD_REQUESTS as f64 * 1e3
    );
    println!(
        "| warm resident | 1 | {warm_rps:.0} | {:.3} ms | — |",
        warm_s / WARM_REQUESTS as f64 * 1e3
    );
    println!(
        "| warm resident | {SOAK_CLIENTS} | {soak_rps:.0} | {:.3} ms | {:.3} ms |",
        p50 as f64 / 1e3,
        p99 as f64 / 1e3
    );
    println!();

    let rows = vec![
        BenchRow::single(
            "daemon cold-per-request",
            cold_s / COLD_REQUESTS as f64 * 1e3,
            1.0,
            cold_checksum,
        ),
        BenchRow::single(
            "daemon warm resident",
            warm_s / WARM_REQUESTS as f64 * 1e3,
            warm_rps / cold_rps,
            per_request,
        ),
        BenchRow {
            series: String::from("daemon warm soak p99"),
            workers: SOAK_CLIENTS,
            cpus,
            ms: p99 as f64 / 1e3,
            speedup: soak_rps / cold_rps,
            checksum: p50, // p50 rides along in the checksum slot
        },
    ];
    let path = write_section("b17", &rows);
    println!("wrote {}", path.display());
    println!();

    // Acceptance bars.
    assert!(
        warm_rps >= 3.0 * cold_rps,
        "warm resident is only {:.2}x cold-per-request throughput — below the 3x bar \
         (warm {warm_rps:.0} req/s vs cold {cold_rps:.0} req/s)",
        warm_rps / cold_rps
    );
    assert!(
        p99 <= 5 * p50.max(1),
        "p99 {p99} µs is more than 5x p50 {p50} µs at {SOAK_CLIENTS}-client soak — \
         the admission queue is not bounding latency spread"
    );

    drop(d);
}
