//! The B16 warm-restart table, measured directly (not via Criterion)
//! so a single release run prints the exact markdown recorded in
//! `EXPERIMENTS.md` §12:
//!
//! ```text
//! cargo test -p implicit-bench --release --test restart_table -- --ignored --nocapture
//! ```
//!
//! Three legs over the B13 batch workload (256 programs, chain depth
//! 48), tree and register-VM backends:
//!
//! - **cold one-shot** — every program re-elaborates and re-evaluates
//!   the prelude from source (the no-session baseline);
//! - **warm session** — one in-process [`Session`] built cold, then
//!   copy-on-write program runs (the B13 warm series);
//! - **warm restart** — the session is *rehydrated from a serialized
//!   artifact* built by a previous process, skipping typechecking,
//!   elaboration, prelude evaluation, and compilation entirely.
//!
//! The acceptance bars pin the artifact store's reason to exist: a
//! restarted batch must be ≥ 3x faster than cold (the artifact
//! actually carries the prelude work) and within 1.15x of the
//! same-process warm batch (rehydration is a read, not a rebuild —
//! imported derivation-cache entries, memo roots, and compiled code
//! genuinely hit).
//!
//! Also writes the `b16` section of the repo-root `BENCH_vm.json`
//! artifact for CI upload.

use std::time::Instant;

use implicit_bench::report::{detected_parallelism, write_section, BenchRow};
use implicit_bench::{
    batch_checksum, chain_artifact, run_batch_cold, run_batch_restarted, run_batch_warm_backend,
};
use implicit_pipeline::Backend;

const DEPTH: usize = 48;
const PROGRAMS: usize = 256;
const REPS: u32 = 3;

/// Times `f` (seconds per batch, best of [`REPS`] after one warmup),
/// asserting the checksum on every run.
fn time(f: impl Fn() -> i64, expect: i64) -> f64 {
    assert_eq!(f(), expect);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        assert_eq!(f(), expect);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[test]
#[ignore = "B16 measurement; run in release with --ignored --nocapture"]
fn warm_restart_table() {
    let cpus = detected_parallelism();
    let expect = batch_checksum(DEPTH, PROGRAMS);
    // The artifact is built once, outside every timed region: it is
    // the previous process's output, not part of the restart.
    let bytes = chain_artifact(DEPTH);

    let cold = time(|| run_batch_cold(DEPTH, PROGRAMS, 1), expect);
    let warm_tree = time(
        || run_batch_warm_backend(DEPTH, PROGRAMS, 1, Backend::Tree),
        expect,
    );
    let restart_tree = time(
        || run_batch_restarted(DEPTH, PROGRAMS, 1, &bytes, Backend::Tree),
        expect,
    );
    let warm_vm = time(
        || run_batch_warm_backend(DEPTH, PROGRAMS, 1, Backend::Vm),
        expect,
    );
    let restart_vm = time(
        || run_batch_restarted(DEPTH, PROGRAMS, 1, &bytes, Backend::Vm),
        expect,
    );

    println!();
    println!(
        "B16: {PROGRAMS} programs, chain depth {DEPTH}, artifact {} bytes, \
         best of {REPS} ({cpus} CPUs)",
        bytes.len()
    );
    println!();
    println!("| series | workers | time/batch | speedup vs cold |");
    println!("|---|---|---|---|");
    let table = [
        ("cold one-shot", cold),
        ("warm session, tree", warm_tree),
        ("warm restart, tree", restart_tree),
        ("warm session, register vm", warm_vm),
        ("warm restart, register vm", restart_vm),
    ];
    for (label, t) in table {
        println!("| {label} | 1 | {:.1} ms | {:.2}x |", t * 1e3, cold / t);
    }
    println!();
    let rows: Vec<BenchRow> = table
        .iter()
        .map(|&(label, t)| BenchRow::single(label, t * 1e3, cold / t, expect.unsigned_abs()))
        .collect();
    let path = write_section("b16", &rows);
    println!("wrote {}", path.display());
    println!();

    // Acceptance bars (tree and VM legs independently).
    for (label, warm, restart) in [
        ("tree", warm_tree, restart_tree),
        ("register vm", warm_vm, restart_vm),
    ] {
        assert!(
            cold / restart >= 3.0,
            "{label}: warm restart is only {:.2}x over cold — below the 3x bar",
            cold / restart
        );
        assert!(
            restart <= warm * 1.15,
            "{label}: warm restart ({:.1} ms) is more than 1.15x the same-process \
             warm batch ({:.1} ms) — rehydration is not actually warm",
            restart * 1e3,
            warm * 1e3
        );
    }
}
