//! The B15 wild-throughput table, measured directly (not via
//! Criterion) so a single release run prints the exact markdown
//! recorded in `EXPERIMENTS.md` §10/§11:
//!
//! ```text
//! cargo test -p implicit-bench --release --test wild_table -- --ignored --nocapture
//! ```
//!
//! Also writes the `b15` section of the repo-root `BENCH_vm.json`
//! artifact (series, ms, speedup, checksum) for CI upload.

use std::time::Instant;

use implicit_bench::report::{write_section, BenchRow};
use implicit_bench::{run_wild, wild_workload, WildConfig, WildEngine};

const SEED: u64 = 0;
const PASSES: usize = 8;
const REPS: u32 = 3;

/// Times `f` (seconds per run, best of [`REPS`] after one warmup),
/// asserting the step checksum on every run.
fn time(f: impl Fn() -> u64, expect: u64) -> f64 {
    assert_eq!(f(), expect);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        assert_eq!(f(), expect);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[test]
#[ignore = "B15 measurement; run in release with --ignored --nocapture"]
fn wild_throughput_table() {
    let config = WildConfig::field_study();
    let w = wild_workload(SEED, &config);
    let hist = &w.histogram;
    let queries = (config.queries * PASSES) as f64;

    // All four engines must agree derivation-for-derivation; the
    // step total is the cross-engine checksum.
    let expect = run_wild(SEED, &config, WildEngine::LogicNoCache, PASSES);
    assert!(expect > 0, "workload did no resolution work");

    println!();
    println!(
        "B15: wild workload seed {SEED} — {} rules over {} frames \
         (largest {}), max chain {}, {} queries ({} hot / {} cold) x {PASSES} passes, best of {REPS}",
        hist.total_rules(),
        hist.rules_per_frame.len(),
        hist.rules_per_frame.iter().max().unwrap(),
        hist.max_chain_len,
        config.queries,
        hist.hot_queries,
        hist.cold_queries,
    );
    println!();
    println!("head-constructor skew (top 8):");
    println!();
    print!("{}", hist.render_table(8));
    println!();

    let series = [
        WildEngine::LogicNoCache,
        WildEngine::Logic,
        WildEngine::SubtypingScan,
        WildEngine::Subtyping,
    ];
    let times: Vec<f64> = series
        .iter()
        .map(|&e| time(|| run_wild(SEED, &config, e, PASSES), expect))
        .collect();
    let nocache = times[0];

    println!("| series | time/run | queries/sec | vs cache-off |");
    println!("|---|---|---|---|");
    let mut rows = Vec::new();
    for (engine, &t) in series.iter().zip(&times) {
        println!(
            "| {} | {:.2} ms | {:.0} | {:.2}x |",
            engine.label(),
            t * 1e3,
            queries / t,
            nocache / t
        );
        rows.push(BenchRow::single(
            engine.label(),
            t * 1e3,
            nocache / t,
            expect,
        ));
    }
    println!();
    let path = write_section("b15", &rows);
    println!("wrote {}", path.display());
    println!();

    // Shape bars (the production-likeness acceptance criteria), not
    // perf bars — wall-clock ratios on shared CI boxes are noise.
    assert!(hist.rules_per_frame.iter().max().unwrap() >= &100);
    assert!(hist.max_chain_len >= 8);
    // The pre-filter must strictly beat the linear scan on this
    // head-skewed workload (a shape property of the index, loose
    // enough to hold on noisy shared boxes).
    let (scan, indexed) = (times[2], times[3]);
    assert!(
        indexed < scan,
        "head index ({:.2} ms) did not beat linear scan ({:.2} ms)",
        indexed * 1e3,
        scan * 1e3
    );
    assert_eq!(run_wild(SEED, &config, WildEngine::Logic, PASSES), expect);
    assert_eq!(
        run_wild(SEED, &config, WildEngine::Subtyping, PASSES),
        expect
    );
}
