//! Machine-readable bench artifact: `BENCH_vm.json` at the
//! repository root, one section per measurement table (`b13` from
//! `batch_table`, `b14` from `vm_table`, `b15` from `wild_table`,
//! `b16` from `restart_table`, `b17` from `daemon_table`). Each
//! section is an array of
//! `{series, workers, cpus, ms, speedup, checksum}` rows, so the perf
//! trajectory is diffable across PRs and CI can upload a single
//! superset artifact.
//!
//! The tables run as separate test binaries, so a writer must not
//! clobber the others' sections: [`write_section`] re-reads the file
//! and carries every other known section over verbatim. The format is
//! fully controlled by this module (flat rows, no nested brackets),
//! which is what makes the bracket-scan in [`section_body`] sound.
//!
//! Rows record both the worker count the series *requested* and the
//! parallelism the host *offers* ([`detected_parallelism`]): a
//! "4 workers" row measured on a 1-CPU runner is contention, not
//! speedup, and downstream consumers must be able to tell the two
//! apart. The table binaries skip multi-worker series outright on
//! single-CPU hosts.

use std::fmt::Write as _;
use std::path::PathBuf;

/// Every section a `BENCH_vm.json` may contain, in file order.
const SECTIONS: [&str; 5] = ["b13", "b14", "b15", "b16", "b17"];

/// The parallelism the host actually offers, with 1 as the
/// conservative fallback when the query fails (cgroup-restricted
/// runners). Multi-worker series are meaningless when this is 1.
pub fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One measured series: label, worker count, host parallelism,
/// best-of wall time, speedup against the table's baseline series,
/// and the cross-engine checksum that pins the run as semantically
/// valid.
pub struct BenchRow {
    /// Stable series label (matches the markdown table row).
    pub series: String,
    /// Worker threads the series ran with.
    pub workers: usize,
    /// Host parallelism at measurement time
    /// ([`detected_parallelism`]); rows with `workers > cpus` measure
    /// contention and carry no speedup claim.
    pub cpus: usize,
    /// Best-of-reps wall time in milliseconds.
    pub ms: f64,
    /// Ratio of the baseline series' time to this one.
    pub speedup: f64,
    /// The run's checksum (step total, value sum — table-specific).
    pub checksum: u64,
}

impl BenchRow {
    /// A single-worker row — the common case for every series that
    /// isn't explicitly a scaling measurement.
    pub fn single(series: &str, ms: f64, speedup: f64, checksum: u64) -> Self {
        BenchRow {
            series: series.to_string(),
            workers: 1,
            cpus: detected_parallelism(),
            ms,
            speedup,
            checksum,
        }
    }
}

/// Repository-root path of the artifact.
pub fn artifact_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_vm.json")
}

/// Writes (or replaces) one section of `BENCH_vm.json`, preserving
/// the other sections already on disk. Returns the path written.
///
/// # Panics
///
/// Panics if `section` is not one of the known [`SECTIONS`] or the
/// file cannot be written — a bench artifact that silently fails to
/// land is worse than a loud one.
pub fn write_section(section: &str, rows: &[BenchRow]) -> PathBuf {
    assert!(
        SECTIONS.contains(&section),
        "unknown BENCH_vm.json section `{section}`"
    );
    let path = artifact_path();
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let mut out = String::from("{\n");
    for (i, name) in SECTIONS.iter().enumerate() {
        let body = if *name == section {
            render_rows(rows)
        } else {
            section_body(&existing, name).unwrap_or_else(|| String::from("[]"))
        };
        let comma = if i + 1 < SECTIONS.len() { "," } else { "" };
        let _ = writeln!(out, "  \"{name}\": {body}{comma}");
    }
    out.push_str("}\n");
    std::fs::write(&path, out).expect("write BENCH_vm.json");
    path
}

/// Renders rows as a JSON array, one flat object per line.
fn render_rows(rows: &[BenchRow]) -> String {
    if rows.is_empty() {
        return String::from("[]");
    }
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"series\": \"{}\", \"workers\": {}, \"cpus\": {}, \
             \"ms\": {:.3}, \"speedup\": {:.3}, \"checksum\": {}}}{comma}",
            escape(&r.series),
            r.workers,
            r.cpus,
            r.ms,
            r.speedup,
            r.checksum
        );
    }
    out.push_str("  ]");
    out
}

/// Extracts a section's `[...]` body from a previously written file.
/// Sound only on this module's own output: rows are flat objects, so
/// the first `]` after the key closes the array.
fn section_body(text: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\":");
    let start = text.find(&key)? + key.len();
    let rest = &text[start..];
    let open = rest.find('[')?;
    let close = rest.find(']')?;
    (open < close).then(|| rest[open..=close].to_string())
}

/// Escapes a series label for a JSON string literal.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_reextract_round_trip() {
        let rows = vec![
            BenchRow::single("warm tree", 563.712, 1.0, 42),
            BenchRow {
                series: String::from("warm vm"),
                workers: 4,
                cpus: 8,
                ms: 61.5,
                speedup: 9.17,
                checksum: 42,
            },
        ];
        let body = render_rows(&rows);
        let file =
            format!("{{\n  \"b13\": [],\n  \"b14\": {body},\n  \"b15\": [],\n  \"b16\": []\n}}\n");
        assert_eq!(section_body(&file, "b14").unwrap(), body);
        assert_eq!(section_body(&file, "b15").unwrap(), "[]");
        assert_eq!(section_body(&file, "b16").unwrap(), "[]");
        assert!(section_body(&file, "b99").is_none());
        assert!(body.contains("\"ms\": 563.712"));
        assert!(body.contains("\"speedup\": 9.170"));
        assert!(body.contains("\"workers\": 4"));
        assert!(body.contains("\"cpus\": 8"));
    }

    #[test]
    fn detected_parallelism_is_at_least_one() {
        assert!(detected_parallelism() >= 1);
    }
}
