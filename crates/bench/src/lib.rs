//! # `implicit-bench` — benchmark workloads
//!
//! Shared programs for the Criterion benchmark targets (`benches/`).
//! The workload families themselves live in [`genprog`]; this crate
//! adds the source-language programs used by the end-to-end pipeline
//! benchmarks and re-exports everything the bench targets need.
//!
//! See `EXPERIMENTS.md` at the repository root for the experiment
//! index (B1–B9) and recorded results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use genprog::{
    chain_env, chain_program, deep_stack_env, distinct_type, partial_env, poly_env, poly_wide_env,
    wide_env, wild_workload, WildConfig, WildHistogram, WildWorkload,
};

use std::rc::Rc;

use implicit_core::resolve::ResolutionPolicy;
use implicit_core::syntax::{BinOp, Declarations, Expr, Type};
use implicit_pipeline::{run_batch_scoped, Backend, Prelude, Session};

pub mod report;

/// One B13 batch program: `snd(?T_depth) + j`, where `T_depth` is the
/// head of [`Prelude::chain`]. Resolving the query is a `depth`-deep
/// recursive derivation; the program evaluates to `depth + j`.
pub fn batch_program(depth: usize, j: i64) -> Expr {
    Expr::binop(
        BinOp::Add,
        Expr::Snd(Expr::query_simple(Prelude::chain_head(depth)).into()),
        Expr::Int(j),
    )
}

/// Runs the B13 batch **cold**: every program is desugared to its
/// standalone equivalent (`prelude.wrap`) and pushed through a fresh
/// one-shot pipeline, re-elaborating and re-evaluating the prelude
/// each time. Returns the checksum of all program values.
pub fn run_batch_cold(depth: usize, programs: usize, workers: usize) -> i64 {
    let jobs: Vec<i64> = (0..programs as i64).collect();
    run_batch_scoped(jobs, workers, |_, source| {
        let decls = Declarations::new();
        let prelude = Prelude::chain(depth);
        let policy = ResolutionPolicy::paper();
        let mut sum = 0i64;
        for (_, j) in source {
            let wrapped = prelude.wrap(batch_program(depth, j), Type::Int);
            let out = implicit_elab::run_with(&decls, &wrapped, &policy).expect("cold batch run");
            sum += out.value.to_string().parse::<i64>().expect("int value");
        }
        sum
    })
    .into_iter()
    .sum()
}

/// Runs the B13 batch **warm**: each worker builds one
/// [`Session`] (prelude typechecked, elaborated, and evaluated once;
/// interner snapshotted; caches warm) and runs every program as a
/// copy-on-write extension of it. Returns the checksum of all
/// program values — identical to [`run_batch_cold`]'s by the
/// session-equivalence property.
pub fn run_batch_warm(depth: usize, programs: usize, workers: usize) -> i64 {
    let jobs: Vec<i64> = (0..programs as i64).collect();
    run_batch_scoped(jobs, workers, |_, source| {
        let decls = Declarations::new();
        let prelude = Prelude::chain(depth);
        let mut session = Session::new(&decls, ResolutionPolicy::paper(), &prelude)
            .expect("chain prelude is valid");
        let mut sum = 0i64;
        for (_, j) in source {
            let out = session
                .run(&batch_program(depth, j))
                .expect("warm batch run");
            sum += out.value.to_string().parse::<i64>().expect("int value");
        }
        sum
    })
    .into_iter()
    .sum()
}

/// The checksum both batch runners must produce for a
/// `depth`/`programs` configuration: program `j` evaluates to
/// `depth + j`.
pub fn batch_checksum(depth: usize, programs: usize) -> i64 {
    (0..programs as i64).map(|j| depth as i64 + j).sum()
}

/// Builds the warmed B16 chain-prelude artifact once: a session is
/// constructed cold, one probe program is run per leg (tree and
/// compiled) so the derivation cache, runtime memo, and compiled
/// prelude all carry state, and the session is serialized. This is
/// the "previous process" half of a warm restart — its cost is the
/// one-time install, not part of the restarted batch.
pub fn chain_artifact(depth: usize) -> Vec<u8> {
    let decls = Declarations::new();
    let prelude = Prelude::chain(depth);
    let mut session =
        Session::new(&decls, ResolutionPolicy::paper(), &prelude).expect("chain prelude is valid");
    session.run(&batch_program(depth, 0)).expect("warmup run");
    session
        .run_compiled(&batch_program(depth, 0))
        .expect("warmup compiled run");
    session.to_artifact()
}

/// Runs the B13 batch through sessions **rehydrated** from `bytes`
/// ([`chain_artifact`]) — the B16 `warm_restart` series. Each worker
/// deserializes the prelude state instead of re-typechecking,
/// re-elaborating, re-evaluating, and re-compiling it, then runs
/// every program under `backend` as a copy-on-write extension.
/// Returns the same checksum as the other batch runners.
pub fn run_batch_restarted(
    depth: usize,
    programs: usize,
    workers: usize,
    bytes: &[u8],
    backend: Backend,
) -> i64 {
    let jobs: Vec<i64> = (0..programs as i64).collect();
    run_batch_scoped(jobs, workers, |_, source| {
        let decls = Declarations::new();
        let prelude = Prelude::chain(depth);
        let policy = ResolutionPolicy::paper();
        let mut session = Session::from_artifact(
            &decls,
            &policy,
            &prelude,
            true,
            false,
            systemf::Isa::Register,
            bytes,
        )
        .expect("chain artifact rehydrates");
        let mut sum = 0i64;
        for (_, j) in source {
            let out = session
                .run_with_backend(&batch_program(depth, j), backend)
                .expect("restarted batch run");
            sum += out.value.to_string().parse::<i64>().expect("int value");
        }
        sum
    })
    .into_iter()
    .sum()
}

/// Runs the B13 batch warm under an explicit backend (the
/// same-process comparison leg for B16): one [`Session`] per worker,
/// built cold in-process, every program a copy-on-write extension.
pub fn run_batch_warm_backend(
    depth: usize,
    programs: usize,
    workers: usize,
    backend: Backend,
) -> i64 {
    let jobs: Vec<i64> = (0..programs as i64).collect();
    run_batch_scoped(jobs, workers, |_, source| {
        let decls = Declarations::new();
        let prelude = Prelude::chain(depth);
        let mut session = Session::new(&decls, ResolutionPolicy::paper(), &prelude)
            .expect("chain prelude is valid");
        let mut sum = 0i64;
        for (_, j) in source {
            let out = session
                .run_with_backend(&batch_program(depth, j), backend)
                .expect("warm batch run");
            sum += out.value.to_string().parse::<i64>().expect("int value");
        }
        sum
    })
    .into_iter()
    .sum()
}

/// Runs one warm single-worker batch with a metrics sink installed
/// and returns the unified snapshot — the per-series metrics row
/// source for the B13/B14 tables. The checksum is asserted inside.
pub fn batch_metrics(
    depth: usize,
    iters: Option<i64>,
    programs: usize,
    backend: Backend,
) -> implicit_core::trace::MetricsRegistry {
    use implicit_core::trace::{MetricsSink, SharedSink};
    let decls = Declarations::new();
    let prelude = Prelude::chain(depth);
    let isa = backend.isa().unwrap_or_default();
    let mut session =
        Session::new_configured_isa(&decls, ResolutionPolicy::paper(), &prelude, true, true, isa)
            .expect("chain prelude is valid");
    session.set_trace(Some(SharedSink::new(MetricsSink::new())));
    let mut sum = 0i64;
    for j in 0..programs as i64 {
        let program = match iters {
            Some(iters) => vm_batch_program(depth, iters, j),
            None => batch_program(depth, j),
        };
        let out = session
            .run_with_backend(&program, backend)
            .expect("metrics batch run");
        sum += out.value.to_string().parse::<i64>().expect("int value");
    }
    assert_eq!(sum, batch_checksum(depth, programs));
    session.metrics()
}

/// One B14 program: a unary `fix` countdown that makes `iters`
/// recursive calls before returning [`batch_program`]'s
/// `snd(?T_depth) + j`:
///
/// ```text
/// (fix go : Int -> Int. \n. if n <= 0 then snd(?T_depth) + j
///                           else go (n - 1)) iters
/// ```
///
/// Resolution and elaboration cost are the same as B13's program, but
/// evaluation is dominated by the loop — so timing this batch under
/// [`Backend::Tree`] vs [`Backend::Vm`] compares the System F
/// evaluators themselves. Evaluates to `depth + j`, like
/// [`batch_program`].
pub fn vm_batch_program(depth: usize, iters: i64, j: i64) -> Expr {
    let go = implicit_core::symbol::Symbol::intern("go");
    let n = implicit_core::symbol::Symbol::intern("n");
    let int_to_int = Type::arrow(Type::Int, Type::Int);
    let body = Expr::if_(
        Expr::binop(BinOp::Le, Expr::var(n), Expr::Int(0)),
        batch_program(depth, j),
        Expr::app(
            Expr::var(go),
            Expr::binop(BinOp::Sub, Expr::var(n), Expr::Int(1)),
        ),
    );
    let looped = Expr::Fix(go, int_to_int, Rc::new(Expr::lam(n, Type::Int, body)));
    Expr::app(looped, Expr::Int(iters))
}

/// Runs the B14 batch **cold** under the chosen backend: every
/// program rebuilds its [`Session`] from scratch, so the prelude is
/// re-elaborated, re-evaluated and (for [`Backend::Vm`]) re-compiled
/// each time. Returns the checksum of all program values.
pub fn run_vm_batch_cold(
    depth: usize,
    iters: i64,
    programs: usize,
    workers: usize,
    backend: Backend,
) -> i64 {
    let jobs: Vec<i64> = (0..programs as i64).collect();
    run_batch_scoped(jobs, workers, |_, source| {
        let decls = Declarations::new();
        let prelude = Prelude::chain(depth);
        let mut sum = 0i64;
        let isa = backend.isa().unwrap_or_default();
        for (_, j) in source {
            let mut session = Session::new_configured_isa(
                &decls,
                ResolutionPolicy::paper(),
                &prelude,
                true,
                false,
                isa,
            )
            .expect("chain prelude is valid");
            let out = session
                .run_with_backend(&vm_batch_program(depth, iters, j), backend)
                .expect("cold vm batch run");
            sum += out.value.to_string().parse::<i64>().expect("int value");
        }
        sum
    })
    .into_iter()
    .sum()
}

/// Runs the B14 batch **warm** under the chosen backend: one
/// [`Session`] per worker (prelude compiled once for [`Backend::Vm`],
/// with per-program code rolled back after each run), with
/// superinstruction fusion and the dictionary inline cache enabled —
/// the full warm-path configuration the B14 table measures. Returns
/// the checksum of all program values — identical to
/// [`run_vm_batch_cold`]'s.
pub fn run_vm_batch_warm(
    depth: usize,
    iters: i64,
    programs: usize,
    workers: usize,
    backend: Backend,
) -> i64 {
    let jobs: Vec<i64> = (0..programs as i64).collect();
    run_batch_scoped(jobs, workers, |_, source| {
        let decls = Declarations::new();
        let prelude = Prelude::chain(depth);
        let isa = backend.isa().unwrap_or_default();
        let mut session = Session::new_configured_isa(
            &decls,
            ResolutionPolicy::paper(),
            &prelude,
            true,
            true,
            isa,
        )
        .expect("chain prelude is valid");
        let mut sum = 0i64;
        for (_, j) in source {
            let out = session
                .run_with_backend(&vm_batch_program(depth, iters, j), backend)
                .expect("warm vm batch run");
            sum += out.value.to_string().parse::<i64>().expect("int value");
        }
        sum
    })
    .into_iter()
    .sum()
}

/// The Figure-"Encoding the Equality Type Class" program (§5),
/// parameterized by how deeply the compared pairs nest: depth 0
/// compares `Int`s, depth `d` compares `d`-times-nested pairs —
/// resolution work grows linearly with `d`.
pub fn eq_source_program(depth: usize) -> String {
    let mut value = String::from("1");
    for _ in 0..depth {
        value = format!("({value}, {value})");
    }
    format!(
        r#"
interface Eq a = {{ eq : a -> a -> Bool }}
let eqv : forall a. {{Eq a}} => a -> a -> Bool = eq ? in
let eqInt : Eq Int = Eq {{ eq = \x. \y. x == y }} in
let eqPair : forall a b. {{Eq a, Eq b}} => Eq (a * b) =
  Eq {{ eq = \x. \y. eqv (fst x) (fst y) && eqv (snd x) (snd y) }} in
implicit eqInt, eqPair in eqv {value} {value}
"#
    )
}

/// The §5 higher-order pretty-printing program, parameterized by
/// list length.
pub fn show_source_program(len: usize) -> String {
    let items: String = (1..=len.max(1)).map(|i| format!("{i} :: ")).collect();
    format!(
        r#"
let show : forall a. {{a -> String}} => a -> String = ? in
let showInt' : Int -> String = \n. showInt n in
let comma : forall a. {{a -> String}} => [a] -> String =
  fix go : [a] -> String. \xs.
    case xs of
      nil -> ""
    | h :: t -> (case t of nil -> show h | h2 :: t2 -> show h ++ "," ++ go t)
in
let o : {{Int -> String, {{Int -> String}} => [Int] -> String}} => String =
  show ({items}nil)
in
implicit showInt' in (implicit comma in o)
"#
    )
}

/// The §1 `Perfect` program at the given tree depth: the value at
/// depth d contains 2^d − 1 integers, and compiling it exercises
/// data-type kind inference, higher-kinded resolution and
/// polymorphic recursion.
pub fn perfect_source_program(depth: usize) -> String {
    fn value(d: usize, next: &mut i64) -> String {
        if d == 0 {
            let v = *next;
            *next += 1;
            v.to_string()
        } else {
            let f = value(d - 1, next);
            let b = value(d - 1, next);
            format!("Twice {{ front = {f}, back = {b} }}")
        }
    }
    fn spine(d: usize, depth: usize, next: &mut i64) -> String {
        if d == depth {
            "PNil".to_owned()
        } else {
            let head = value(d, next);
            let tail = spine(d + 1, depth, next);
            format!("PCons ({head}) ({tail})")
        }
    }
    let mut counter = 1;
    let tree = spine(0, depth, &mut counter);
    format!(
        r#"
data Perfect f a = PNil | PCons a (Perfect f (f a))
interface Twice a = {{ front : a, back : a }}
let show : forall a. {{a -> String}} => a -> String = ? in
let showInt' : Int -> String = \n. showInt n in
let showTwice : forall a. {{a -> String}} => Twice a -> String =
  \t. "<" ++ show (front t) ++ "," ++ show (back t) ++ ">" in
letrec showPerfect : forall f a.
    {{forall b. {{b -> String}} => f b -> String, a -> String}}
      => Perfect f a -> String =
  \t. match t {{ PNil -> "Nil" | PCons x rest -> show x ++ " :: " ++ showPerfect rest }}
in
implicit showInt', showTwice in showPerfect (({tree}) : Perfect Twice Int)
"#
    )
}

// ---------------------------------------------------------------
// B15: wild (production-shaped) resolution throughput
// ---------------------------------------------------------------

/// Which resolution engine a B15 series exercises.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WildEngine {
    /// The logic resolver with the derivation cache disabled.
    LogicNoCache,
    /// The logic resolver with the derivation cache (cold at the start
    /// of the run, warming as the hot queries repeat).
    Logic,
    /// The intersection-subtyping resolver, with the environment
    /// translated to intersections once per run (the analog of a warm
    /// compiled prelude) and the head-constructor pre-filter on.
    Subtyping,
    /// The intersection-subtyping resolver with the pre-filter
    /// disabled: every member of every intersection is scanned, as
    /// the resolver did before the index existed.
    SubtypingScan,
}

impl WildEngine {
    /// Stable series label for tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            WildEngine::LogicNoCache => "logic, cache off",
            WildEngine::Logic => "logic, cached",
            WildEngine::Subtyping => "subtyping, head-indexed",
            WildEngine::SubtypingScan => "subtyping, linear scan",
        }
    }
}

/// One B15 run: builds the seeded wild workload fresh (so the cached
/// series starts cold), then resolves every query `passes` times with
/// the chosen engine. Returns the total `TyRes` step count — the
/// cross-engine checksum (all engines must agree derivation-for-
/// derivation, so their step totals are equal).
pub fn run_wild(seed: u64, config: &WildConfig, engine: WildEngine, passes: usize) -> u64 {
    let w = wild_workload(seed, config);
    let depth = 4096;
    let policy = match engine {
        WildEngine::LogicNoCache => ResolutionPolicy::paper()
            .without_cache()
            .with_max_depth(depth),
        _ => ResolutionPolicy::paper().with_max_depth(depth),
    };
    let sigma = match engine {
        WildEngine::Subtyping | WildEngine::SubtypingScan => {
            implicit_core::subtyping::translate_env(&w.env)
        }
        _ => Vec::new(),
    };
    let mut steps = 0u64;
    for _ in 0..passes {
        for q in &w.queries {
            steps += match engine {
                WildEngine::Subtyping => {
                    implicit_core::subtyping::subtype_resolve_translated(&sigma, q, &policy)
                        .unwrap_or_else(|e| panic!("wild query `{q}` failed: {e:?}"))
                        .steps() as u64
                }
                WildEngine::SubtypingScan => {
                    implicit_core::subtyping::subtype_resolve_translated_scan(&sigma, q, &policy)
                        .unwrap_or_else(|e| panic!("wild query `{q}` failed: {e:?}"))
                        .steps() as u64
                }
                _ => implicit_core::resolve::resolve(&w.env, q, &policy)
                    .unwrap_or_else(|e| panic!("wild query `{q}` failed: {e:?}"))
                    .steps() as u64,
            };
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_programs_compile_and_run_at_every_depth() {
        for d in [0, 1, 3] {
            let src = eq_source_program(d);
            let c = implicit_source::compile(&src).unwrap_or_else(|e| panic!("depth {d}: {e}"));
            let out = implicit_elab::run(&c.decls, &c.core).unwrap();
            assert_eq!(out.value.to_string(), "true", "depth {d}");
        }
    }

    #[test]
    fn perfect_programs_compile_and_run() {
        let src = perfect_source_program(2);
        let c = implicit_source::compile(&src).unwrap();
        let out = implicit_elab::run(&c.decls, &c.core).unwrap();
        assert_eq!(out.value.to_string(), "\"1 :: <2,3> :: Nil\"");
    }

    #[test]
    fn show_programs_compile_and_run() {
        let src = show_source_program(4);
        let c = implicit_source::compile(&src).unwrap();
        let out = implicit_elab::run(&c.decls, &c.core).unwrap();
        assert_eq!(out.value.to_string(), "\"1,2,3,4\"");
    }

    #[test]
    fn vm_batch_runners_agree_on_the_checksum_under_both_backends() {
        // Small so the debug-build sanity check stays quick; the real
        // B14 series runs in release via `benches/vm.rs` and
        // `tests/vm_table.rs`.
        let (depth, iters, programs) = (6, 50, 12);
        let expect = batch_checksum(depth, programs);
        for backend in [Backend::Tree, Backend::Vm] {
            assert_eq!(
                run_vm_batch_cold(depth, iters, programs, 1, backend),
                expect,
                "cold {backend}"
            );
            assert_eq!(
                run_vm_batch_warm(depth, iters, programs, 1, backend),
                expect,
                "warm {backend}"
            );
            assert_eq!(
                run_vm_batch_warm(depth, iters, programs, 4, backend),
                expect,
                "warm {backend} x4"
            );
        }
    }

    #[test]
    fn wild_engines_agree_on_the_step_checksum() {
        // Small shape so the debug-build sanity check stays quick; the
        // real B15 series runs in release via `benches/wild.rs`.
        let config = WildConfig {
            rules_per_frame: 40,
            frames: 3,
            max_chain: 8,
            skew: 1.2,
            queries: 12,
            hot_fraction: 0.75,
        };
        for seed in [0u64, 5] {
            let expect = run_wild(seed, &config, WildEngine::LogicNoCache, 2);
            assert!(expect > 0);
            assert_eq!(expect, run_wild(seed, &config, WildEngine::Logic, 2));
            assert_eq!(expect, run_wild(seed, &config, WildEngine::Subtyping, 2));
            assert_eq!(
                expect,
                run_wild(seed, &config, WildEngine::SubtypingScan, 2)
            );
        }
    }

    #[test]
    fn batch_runners_agree_on_the_checksum() {
        // Small depth so the debug-build sanity check stays quick; the
        // real B13 series runs in release via `benches/batch.rs`.
        let (depth, programs) = (6, 24);
        let expect = batch_checksum(depth, programs);
        assert_eq!(run_batch_cold(depth, programs, 1), expect);
        assert_eq!(run_batch_warm(depth, programs, 1), expect);
        assert_eq!(run_batch_warm(depth, programs, 4), expect);
    }
}
