//! Ablation benchmarks (experiments B7–B8 in `EXPERIMENTS.md`).
//!
//! * B7 `ablation_policies` — the design choices §3.2 discusses: the
//!   paper's syntactic `TyRes` vs. the environment-extension variant
//!   (costlier assumption handling), and `no_overlap` vs.
//!   most-specific overlap handling; plus the *semantic* entailment
//!   prover with backtracking, quantifying what the paper's "no
//!   backtracking" decision buys.
//! * B8 `termination_checker` — cost of the Appendix A conditions,
//!   which are intended to be cheap enough to run on every context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use implicit_bench::{chain_env, poly_env};
use implicit_core::logic;
use implicit_core::resolve::{resolve, ResolutionPolicy};
use implicit_core::termination;

fn ablation_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_policies");
    for n in [4usize, 16, 64] {
        let (env, query) = chain_env(n);
        // Cache off: B7 compares the per-resolution cost of the
        // policies themselves (B12 measures the derivation cache).
        let paper = ResolutionPolicy::paper()
            .with_max_depth(4096)
            .without_cache();
        let ext = paper.clone().with_env_extension();
        let most_specific = paper.clone().with_most_specific();
        g.bench_with_input(BenchmarkId::new("paper", n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), &query, &paper).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("env_extension", n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), &query, &ext).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("most_specific", n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), &query, &most_specific).unwrap()))
        });
        // The semantic prover with full backtracking — the road not
        // taken (§3.2 rejects it for predictability and cost).
        if n <= 16 {
            g.bench_with_input(
                BenchmarkId::new("backtracking_entailment", n),
                &n,
                |b, _| b.iter(|| black_box(logic::entails(black_box(&env), &query, 4096))),
            );
        }
    }
    g.finish();
}

fn termination_checker(c: &mut Criterion) {
    let mut g = c.benchmark_group("termination_checker");
    for n in [8usize, 64, 512] {
        let (env, _) = chain_env(n);
        g.bench_with_input(BenchmarkId::new("chain", n), &n, |b, _| {
            b.iter(|| black_box(termination::check_env(black_box(&env)).is_ok()))
        });
        let (poly, _) = poly_env(n);
        g.bench_with_input(BenchmarkId::new("poly", n), &n, |b, _| {
            b.iter(|| black_box(termination::check_env(black_box(&poly)).is_ok()))
        });
    }
    g.finish();
}

criterion_group!(benches, ablation_policies, termination_checker);
criterion_main!(benches);
