//! Resolution micro-benchmarks (experiments B1–B4 in
//! `EXPERIMENTS.md`).
//!
//! * B1 `resolution_depth` — cost of `Δ ⊢r ρ` vs. recursive chain
//!   length (the analogue of instance-chain depth in type classes).
//! * B2 `environment_size` — lookup cost vs. rules-per-frame (wide)
//!   and vs. stack depth (deep).
//! * B3 `polymorphic_matching` — matching against many non-matching
//!   polymorphic candidates.
//! * B4 `partial_resolution` — higher-order queries: how the split
//!   between assumed and recursively resolved premises affects cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use implicit_bench::{chain_env, deep_stack_env, partial_env, poly_env, wide_env};
use implicit_core::resolve::{resolve, ResolutionPolicy};

fn resolution_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("resolution_depth");
    for n in [1usize, 4, 16, 64, 256] {
        let (env, query) = chain_env(n);
        let policy = ResolutionPolicy::paper().with_max_depth(4096);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = resolve(black_box(&env), black_box(&query), &policy).unwrap();
                black_box(r.steps())
            })
        });
    }
    g.finish();
}

fn environment_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("environment_size");
    for n in [8usize, 32, 128, 512] {
        let (env, query) = wide_env(n, 1.0);
        let policy = ResolutionPolicy::paper();
        g.bench_with_input(BenchmarkId::new("wide_frame", n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &policy).unwrap()))
        });
    }
    for n in [8usize, 32, 128, 512] {
        let (env, query) = deep_stack_env(n);
        let policy = ResolutionPolicy::paper();
        g.bench_with_input(BenchmarkId::new("deep_stack", n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &policy).unwrap()))
        });
    }
    g.finish();
}

fn polymorphic_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("polymorphic_matching");
    for n in [4usize, 16, 64, 256] {
        let (env, query) = poly_env(n);
        let policy = ResolutionPolicy::paper();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &policy).unwrap()))
        });
    }
    g.finish();
}

fn partial_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("partial_resolution");
    let n = 12usize;
    for assumed in [0usize, 4, 8, 12] {
        let (env, query) = partial_env(n, assumed);
        let policy = ResolutionPolicy::paper();
        g.bench_with_input(
            BenchmarkId::new(format!("assumed_of_{n}"), assumed),
            &assumed,
            |b, _| {
                b.iter(|| {
                    black_box(resolve(black_box(&env), black_box(&query), &policy).unwrap())
                })
            },
        );
    }
    g.finish();
}

fn higher_kinded_depth(c: &mut Criterion) {
    // B10: constructor matching through the §1-shaped rule
    // ∀b. {b → String} ⇒ f b → String at growing nesting depth.
    let mut g = c.benchmark_group("higher_kinded_depth");
    for n in [1usize, 4, 16, 64] {
        let (env, query) = genprog::hk_nested_env(n);
        let policy = ResolutionPolicy::paper().with_max_depth(4096);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = resolve(black_box(&env), black_box(&query), &policy).unwrap();
                black_box(r.steps())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    resolution_depth,
    environment_size,
    polymorphic_matching,
    partial_resolution,
    higher_kinded_depth
);
criterion_main!(benches);
