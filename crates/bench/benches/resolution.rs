//! Resolution micro-benchmarks (experiments B1–B4 in
//! `EXPERIMENTS.md`).
//!
//! * B1 `resolution_depth` — cost of `Δ ⊢r ρ` vs. recursive chain
//!   length (the analogue of instance-chain depth in type classes).
//! * B2 `environment_size` — lookup cost vs. rules-per-frame (wide)
//!   and vs. stack depth (deep).
//! * B3 `polymorphic_matching` — matching against many non-matching
//!   polymorphic candidates.
//! * B4 `partial_resolution` — higher-order queries: how the split
//!   between assumed and recursively resolved premises affects cost.
//! * B12 `cached_resolution` — repeated queries with the derivation
//!   cache on vs. off.
//!
//! B1–B4 and B10 disable the derivation cache: they measure how raw
//! resolution cost scales, and with the cache on every iteration
//! after the first would be a constant-time hit. B12 measures the
//! cache itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use implicit_bench::{chain_env, deep_stack_env, partial_env, poly_env, poly_wide_env, wide_env};
use implicit_core::resolve::{resolve, ResolutionPolicy};

fn resolution_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("resolution_depth");
    for n in [1usize, 4, 16, 64, 256] {
        let (env, query) = chain_env(n);
        let policy = ResolutionPolicy::paper()
            .with_max_depth(4096)
            .without_cache();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = resolve(black_box(&env), black_box(&query), &policy).unwrap();
                black_box(r.steps())
            })
        });
    }
    g.finish();
}

fn environment_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("environment_size");
    for n in [8usize, 32, 128, 512] {
        let (env, query) = wide_env(n, 1.0);
        let policy = ResolutionPolicy::paper().without_cache();
        g.bench_with_input(BenchmarkId::new("wide_frame", n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &policy).unwrap()))
        });
    }
    for n in [8usize, 32, 128, 512] {
        let (env, query) = deep_stack_env(n);
        let policy = ResolutionPolicy::paper().without_cache();
        g.bench_with_input(BenchmarkId::new("deep_stack", n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &policy).unwrap()))
        });
    }
    g.finish();
}

fn polymorphic_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("polymorphic_matching");
    for n in [4usize, 16, 64, 256] {
        let (env, query) = poly_env(n);
        let policy = ResolutionPolicy::paper().without_cache();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &policy).unwrap()))
        });
    }
    g.finish();
}

fn partial_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("partial_resolution");
    let n = 12usize;
    for assumed in [0usize, 4, 8, 12] {
        let (env, query) = partial_env(n, assumed);
        let policy = ResolutionPolicy::paper().without_cache();
        g.bench_with_input(
            BenchmarkId::new(format!("assumed_of_{n}"), assumed),
            &assumed,
            |b, _| {
                b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &policy).unwrap()))
            },
        );
    }
    g.finish();
}

fn higher_kinded_depth(c: &mut Criterion) {
    // B10: constructor matching through the §1-shaped rule
    // ∀b. {b → String} ⇒ f b → String at growing nesting depth.
    let mut g = c.benchmark_group("higher_kinded_depth");
    for n in [1usize, 4, 16, 64] {
        let (env, query) = genprog::hk_nested_env(n);
        let policy = ResolutionPolicy::paper()
            .with_max_depth(4096)
            .without_cache();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = resolve(black_box(&env), black_box(&query), &policy).unwrap();
                black_box(r.steps())
            })
        });
    }
    g.finish();
}

fn cached_resolution(c: &mut Criterion) {
    // B12: the same query resolved repeatedly against an unchanged
    // environment — after the first resolution the derivation cache
    // answers from the memo, so the cached series should sit far
    // below the uncached one and stay flat in `n`.
    let mut g = c.benchmark_group("cached_resolution");
    for n in [16usize, 64, 256] {
        let (env, query) = chain_env(n);
        let cached = ResolutionPolicy::paper().with_max_depth(4096);
        let uncached = cached.clone().without_cache();
        g.bench_with_input(BenchmarkId::new("chain_cached", n), &n, |b, _| {
            resolve(&env, &query, &cached).unwrap(); // warm the cache
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &cached).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("chain_uncached", n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &uncached).unwrap()))
        });
    }
    // Plain wide_env: the head index already filters every decoy, so
    // uncached lookup is O(1) and the cache's margin is small — kept
    // as a control series.
    for n in [32usize, 128, 512] {
        let (env, query) = wide_env(n, 1.0);
        let cached = ResolutionPolicy::paper();
        let uncached = cached.clone().without_cache();
        g.bench_with_input(BenchmarkId::new("wide_cached", n), &n, |b, _| {
            resolve(&env, &query, &cached).unwrap(); // warm the cache
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &cached).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("wide_uncached", n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &uncached).unwrap()))
        });
    }
    // poly_wide_env: every decoy shares the query's head constructor,
    // so the index admits all of them and only the cache can make
    // repeated lookups sublinear.
    for n in [32usize, 128, 512] {
        let (env, query) = poly_wide_env(n);
        let cached = ResolutionPolicy::paper();
        let uncached = cached.clone().without_cache();
        g.bench_with_input(BenchmarkId::new("poly_wide_cached", n), &n, |b, _| {
            resolve(&env, &query, &cached).unwrap(); // warm the cache
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &cached).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("poly_wide_uncached", n), &n, |b, _| {
            b.iter(|| black_box(resolve(black_box(&env), black_box(&query), &uncached).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    resolution_depth,
    environment_size,
    polymorphic_matching,
    partial_resolution,
    higher_kinded_depth,
    cached_resolution
);
criterion_main!(benches);
