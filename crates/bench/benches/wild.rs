//! B15 `wild_throughput` — resolution at production shapes
//! (`EXPERIMENTS.md` §10).
//!
//! One run = the field-study wild workload (a 160-rule import frame
//! under 3 local frames, Zipf-skewed head constructors, conversion
//! chains up to 12, 32 queries at 75% hot) resolved 8 passes over,
//! per engine: the logic resolver with the derivation cache off and
//! on (cold start, warming as hot queries repeat), and the
//! intersection-subtyping resolver over a once-translated
//! environment. All engines produce identical derivations, so the
//! series isolate engine and caching cost at realistic scope sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use implicit_bench::{run_wild, WildConfig, WildEngine};

const SEED: u64 = 0;
const PASSES: usize = 8;

fn wild_throughput(c: &mut Criterion) {
    let config = WildConfig::field_study();
    let mut g = c.benchmark_group("wild_throughput");
    for engine in [
        WildEngine::LogicNoCache,
        WildEngine::Logic,
        WildEngine::Subtyping,
    ] {
        g.bench_with_input(
            BenchmarkId::new(engine.label(), PASSES),
            &engine,
            |b, &engine| b.iter(|| black_box(run_wild(SEED, &config, engine, PASSES))),
        );
    }
    g.finish();
}

criterion_group!(benches, wild_throughput);
criterion_main!(benches);
