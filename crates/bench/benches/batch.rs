//! B13 `batch_throughput` — the warm-session batch engine
//! (`EXPERIMENTS.md` §6).
//!
//! One batch = 256 programs against a 48-deep chain prelude. The
//! `cold` series desugars each program to its standalone equivalent
//! and re-runs the whole pipeline per program; the `warm` series
//! builds one [`implicit_pipeline::Session`] per worker and runs
//! every program as a copy-on-write extension, at 1/2/4/8 worker
//! threads through the work-stealing driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use implicit_bench::{run_batch_cold, run_batch_warm};

const DEPTH: usize = 48;
const PROGRAMS: usize = 256;

fn batch_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_throughput");
    g.bench_with_input(BenchmarkId::new("cold", 1), &1usize, |b, _| {
        b.iter(|| black_box(run_batch_cold(DEPTH, PROGRAMS, 1)))
    });
    for m in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("warm", m), &m, |b, &m| {
            b.iter(|| black_box(run_batch_warm(DEPTH, PROGRAMS, m)))
        });
    }
    g.finish();
}

criterion_group!(benches, batch_throughput);
criterion_main!(benches);
