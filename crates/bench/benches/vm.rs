//! B14 `vm_throughput` — the compiled System F backend
//! (`EXPERIMENTS.md` §7).
//!
//! One batch = 96 programs, each a 20k-iteration `fix` loop ending
//! in a chain-prelude query, against a 16-deep chain prelude.
//! Resolution work is identical across series; the variable is the
//! System F evaluator — the `Rc`-cloning tree-walker vs. the
//! closure-converted bytecode VM — and, for the VM, whether the
//! compiled prelude is reused (`warm`) or rebuilt per program
//! (`cold`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use implicit_bench::{run_vm_batch_cold, run_vm_batch_warm};
use implicit_pipeline::Backend;

const DEPTH: usize = 16;
const ITERS: i64 = 20_000;
const PROGRAMS: usize = 96;

fn vm_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm_throughput");
    for m in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("tree_warm", m), &m, |b, &m| {
            b.iter(|| black_box(run_vm_batch_warm(DEPTH, ITERS, PROGRAMS, m, Backend::Tree)))
        });
    }
    g.bench_with_input(BenchmarkId::new("vm_cold", 1), &1usize, |b, _| {
        b.iter(|| black_box(run_vm_batch_cold(DEPTH, ITERS, PROGRAMS, 1, Backend::Vm)))
    });
    for m in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("vm_warm", m), &m, |b, &m| {
            b.iter(|| black_box(run_vm_batch_warm(DEPTH, ITERS, PROGRAMS, m, Backend::Vm)))
        });
    }
    g.finish();
}

criterion_group!(benches, vm_throughput);
criterion_main!(benches);
