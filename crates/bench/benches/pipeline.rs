//! End-to-end pipeline benchmarks (experiments B5, B6, B9 in
//! `EXPERIMENTS.md`).
//!
//! * B5 `elaborate_vs_opsem` — the paper's two semantics compared:
//!   static resolution + System F evaluation vs. the direct
//!   interpreter with runtime resolution; plus the warm-session rows
//!   (one program against a prelude compiled once per session vs. the
//!   same program re-wrapped and recompiled cold each run).
//! * B6 `source_pipeline` — the §5 front end: parse → infer → encode
//!   → type-check → elaborate → evaluate on the Figure-3 `Eq`
//!   program and the higher-order `show` program.
//! * B9 `unification` — one-way matching micro-cost vs. type size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use implicit_bench::{
    batch_program, chain_program, distinct_type, eq_source_program, perfect_source_program,
    show_source_program,
};
use implicit_core::resolve::ResolutionPolicy;
use implicit_core::syntax::{Declarations, Type};
use implicit_core::unify;
use implicit_pipeline::{Prelude, Session};

fn elaborate_vs_opsem(c: &mut Criterion) {
    let mut g = c.benchmark_group("elaborate_vs_opsem");
    let decls = Declarations::new();
    for n in [2usize, 8, 32] {
        let prog = chain_program(n);
        g.bench_with_input(BenchmarkId::new("elaborate_eval", n), &n, |b, _| {
            b.iter(|| black_box(implicit_elab::run(&decls, black_box(&prog)).unwrap().value))
        });
        g.bench_with_input(BenchmarkId::new("opsem_eval", n), &n, |b, _| {
            b.iter(|| black_box(implicit_opsem::eval(&decls, black_box(&prog)).unwrap()))
        });
        // Elaboration alone (the "compile-time" part).
        g.bench_with_input(BenchmarkId::new("elaborate_only", n), &n, |b, _| {
            b.iter(|| black_box(implicit_elab::elaborate(&decls, black_box(&prog)).unwrap()))
        });
        // Warm session: the chain lives in a session prelude compiled
        // once; each iteration runs one program as a copy-on-write
        // extension of the warm state.
        g.bench_with_input(BenchmarkId::new("warm_session_eval", n), &n, |b, &n| {
            let prelude = Prelude::chain(n);
            let mut session = Session::new(&decls, ResolutionPolicy::paper(), &prelude).unwrap();
            let query = batch_program(n, 1);
            b.iter(|| black_box(session.run(black_box(&query)).unwrap().value))
        });
        // The same program desugared to its standalone equivalent and
        // recompiled cold each iteration — the warm row's baseline.
        g.bench_with_input(BenchmarkId::new("wrapped_cold_eval", n), &n, |b, &n| {
            let prelude = Prelude::chain(n);
            let policy = ResolutionPolicy::paper();
            let wrapped = prelude.wrap(batch_program(n, 1), Type::Int);
            b.iter(|| {
                black_box(
                    implicit_elab::run_with(&decls, black_box(&wrapped), &policy)
                        .unwrap()
                        .value,
                )
            })
        });
    }
    g.finish();
}

fn source_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("source_pipeline");
    for depth in [0usize, 2, 4] {
        let src = eq_source_program(depth);
        g.bench_with_input(BenchmarkId::new("eq_compile", depth), &depth, |b, _| {
            b.iter(|| black_box(implicit_source::compile(black_box(&src)).unwrap()))
        });
        let compiled = implicit_source::compile(&src).unwrap();
        g.bench_with_input(BenchmarkId::new("eq_run", depth), &depth, |b, _| {
            b.iter(|| {
                black_box(
                    implicit_elab::run(&compiled.decls, black_box(&compiled.core))
                        .unwrap()
                        .value,
                )
            })
        });
    }
    // B11: the §1 Perfect program — data kinds + higher-kinded
    // resolution + polymorphic recursion through the whole pipeline.
    for depth in [1usize, 2, 3, 4] {
        let src = perfect_source_program(depth);
        g.bench_with_input(
            BenchmarkId::new("perfect_compile", depth),
            &depth,
            |b, _| b.iter(|| black_box(implicit_source::compile(black_box(&src)).unwrap())),
        );
        let compiled = implicit_source::compile(&src).unwrap();
        g.bench_with_input(BenchmarkId::new("perfect_run", depth), &depth, |b, _| {
            b.iter(|| {
                black_box(
                    implicit_elab::run(&compiled.decls, black_box(&compiled.core))
                        .unwrap()
                        .value,
                )
            })
        });
    }
    for len in [4usize, 16, 64] {
        let src = show_source_program(len);
        g.bench_with_input(BenchmarkId::new("show_compile", len), &len, |b, _| {
            b.iter(|| black_box(implicit_source::compile(black_box(&src)).unwrap()))
        });
        let compiled = implicit_source::compile(&src).unwrap();
        g.bench_with_input(BenchmarkId::new("show_run", len), &len, |b, _| {
            b.iter(|| {
                black_box(
                    implicit_elab::run(&compiled.decls, black_box(&compiled.core))
                        .unwrap()
                        .value,
                )
            })
        });
    }
    g.finish();
}

fn unification(c: &mut Criterion) {
    let mut g = c.benchmark_group("unification");
    for size in [2usize, 8, 32, 128] {
        // Match a polymorphic pattern against a large ground type.
        let a = implicit_core::symbol::Symbol::intern("bench_a");
        let pattern = implicit_core::syntax::Type::prod(
            implicit_core::syntax::Type::Var(a),
            implicit_core::syntax::Type::Var(a),
        );
        let big = distinct_type(size);
        let target = implicit_core::syntax::Type::prod(big.clone(), big);
        g.bench_with_input(BenchmarkId::new("match", size), &size, |b, _| {
            b.iter(|| black_box(unify::match_type(&pattern, black_box(&target), &[a]).unwrap()))
        });
        let mismatch =
            implicit_core::syntax::Type::prod(distinct_type(size), distinct_type(size + 1));
        g.bench_with_input(BenchmarkId::new("match_fail", size), &size, |b, _| {
            b.iter(|| black_box(unify::match_type(&pattern, black_box(&mismatch), &[a])))
        });
    }
    g.finish();
}

criterion_group!(benches, elaborate_vs_opsem, source_pipeline, unification);
criterion_main!(benches);
