//! Parallel differential conformance harness for the implicit
//! calculus.
//!
//! The repo carries three independent executable readings of the
//! paper's semantics — elaboration to System F (§4), a direct
//! big-step operational semantics, and the resolution engine with its
//! policy/caching variants. The theorems of the paper (coherence,
//! preservation, the equivalence of the cached and uncached
//! resolution) say these must all agree; this crate checks that they
//! do, at scale:
//!
//! * [`oracle`] — the three-way semantic oracle run per seed,
//! * [`shrink`] — a delta-debugging minimizer for reproducers,
//! * [`runner`] — the sharded multi-threaded sweep driver and the
//!   replayable divergence corpus,
//! * [`report`] — the machine-readable JSON run report.
//!
//! The `conformance` binary drives a sweep:
//!
//! ```text
//! conformance --shards 4 --seeds 0..10000 --report report.json \
//!             --corpus corpus/ --fail-on-divergence
//! ```
//!
//! Every seed is self-contained: `--shards` changes only the
//! partition, never the per-seed behavior, so a CI failure at seed
//! `s` replays locally with `--shards 1 --seeds s..s+1`.

pub mod oracle;
pub mod report;
pub mod runner;
pub mod shrink;

pub use oracle::{
    run_program_oracle, run_resolution_oracle, run_subtyping_oracle, run_wild_oracle, Divergence,
    DivergenceKind,
};
pub use report::{DivergenceRecord, LegTimings, RunReport, ShardReport};
pub use runner::{replay, run, RunnerConfig};
pub use shrink::{node_count, shrink};
