//! A delta-debugging shrinker for divergence reproducers.
//!
//! Greedy first-improvement search: generate structurally smaller
//! candidate programs (branch selection, operand promotion, context
//! pruning, literal collapse), keep any candidate on which the
//! caller's property still holds, repeat until no candidate is
//! accepted. The property is typically "the oracle still reports the
//! same [`DivergenceKind`](crate::oracle::DivergenceKind)", which
//! subsumes well-typedness — ill-typed candidates simply fail the
//! property, so the candidate generator is free to propose
//! type-breaking reductions.

use std::rc::Rc;

use implicit_core::syntax::{BinOp, Expr, MatchArm, RuleType, Type, UnOp};

/// Counts expression AST nodes (types and rule-type annotations are
/// not counted — the minimization target is the term).
pub fn node_count(e: &Expr) -> usize {
    1 + match e {
        Expr::Int(_)
        | Expr::Bool(_)
        | Expr::Str(_)
        | Expr::Unit
        | Expr::Var(_)
        | Expr::Query(_)
        | Expr::Nil(_) => 0,
        Expr::Lam(_, _, b) | Expr::UnOp(_, b) | Expr::Fix(_, _, b) | Expr::Proj(b, _) => {
            node_count(b)
        }
        Expr::TyApp(b, _) => node_count(b),
        Expr::App(a, b) | Expr::BinOp(_, a, b) | Expr::Pair(a, b) | Expr::Cons(a, b) => {
            node_count(a) + node_count(b)
        }
        Expr::Fst(a) | Expr::Snd(a) => node_count(a),
        Expr::RuleAbs(_, b) => node_count(b),
        Expr::RuleApp(f, args) => {
            node_count(f) + args.iter().map(|(a, _)| node_count(a)).sum::<usize>()
        }
        Expr::If(c, t, e) => node_count(c) + node_count(t) + node_count(e),
        Expr::ListCase {
            scrut, nil, cons, ..
        } => node_count(scrut) + node_count(nil) + node_count(cons),
        Expr::Make(_, _, fields) => fields.iter().map(|(_, e)| node_count(e)).sum(),
        Expr::Inject(_, _, args) => args.iter().map(node_count).sum(),
        Expr::Match(s, arms) => {
            node_count(s) + arms.iter().map(|a| node_count(&a.body)).sum::<usize>()
        }
    }
}

/// Literal stand-ins tried when collapsing a subtree wholesale. The
/// property predicate filters out the type-incorrect ones.
fn literal_pool() -> [Expr; 4] {
    [
        Expr::Int(0),
        Expr::Bool(false),
        Expr::Str(String::new()),
        Expr::Unit,
    ]
}

/// All single-step shrink candidates of `e`: top-level reductions
/// plus every rebuild of `e` with exactly one child shrunk.
pub fn candidates(e: &Expr) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::new();

    // Wholesale literal collapse (skip when already a leaf literal).
    if node_count(e) > 1 {
        out.extend(literal_pool());
    }

    // Top-level structural reductions.
    match e {
        Expr::If(c, t, el) => {
            out.push((**t).clone());
            out.push((**el).clone());
            out.push((**c).clone());
        }
        Expr::BinOp(op, a, b) => {
            match op {
                // Same-typed operands: either side can stand in.
                BinOp::Add
                | BinOp::Sub
                | BinOp::Mul
                | BinOp::Div
                | BinOp::Mod
                | BinOp::And
                | BinOp::Or
                | BinOp::Concat => {
                    out.push((**a).clone());
                    out.push((**b).clone());
                }
                // Comparisons produce Bool; collapse to a literal.
                BinOp::Eq | BinOp::Lt | BinOp::Le => {
                    out.push(Expr::Bool(false));
                    out.push(Expr::Bool(true));
                }
            }
        }
        Expr::UnOp(op, a) => match op {
            UnOp::Neg => out.push((**a).clone()),
            UnOp::Not => out.push(Expr::Bool(false)),
            UnOp::IntToStr => out.push(Expr::Str(String::new())),
        },
        Expr::App(f, a) => {
            out.push((**f).clone());
            out.push((**a).clone());
        }
        Expr::Pair(a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
        }
        Expr::Fst(a) | Expr::Snd(a) => out.push((**a).clone()),
        Expr::Cons(_, t) => out.push((**t).clone()),
        Expr::ListCase { scrut, nil, .. } => {
            out.push((**nil).clone());
            out.push((**scrut).clone());
        }
        Expr::Fix(_, _, b) | Expr::Lam(_, _, b) | Expr::RuleAbs(_, b) => {
            // Usually leaves an open variable — the property filter
            // rejects those — but unblocks shrinks where the binder
            // is dead.
            out.push((**b).clone());
        }
        Expr::TyApp(b, _) => out.push((**b).clone()),
        Expr::Proj(b, _) => out.push((**b).clone()),
        Expr::Query(rho) => out.extend(query_stub(rho)),
        Expr::Match(s, arms) => {
            out.push((**s).clone());
            for arm in arms {
                if arm.binders.is_empty() {
                    out.push(arm.body.clone());
                }
            }
        }
        Expr::Inject(_, tys, args) => {
            // `GpSome(e) → GpNone`-style: same data type, nullary
            // sibling constructors are tried by dropping all args.
            for a in args {
                out.push(a.clone());
            }
            if !args.is_empty() {
                out.push(Expr::Inject(
                    implicit_core::Symbol::intern("GpNone"),
                    tys.clone(),
                    Vec::new(),
                ));
            }
        }
        Expr::RuleApp(f, args) => {
            // Drop argument `i` together with its context premise
            // when the rule abstraction is literal (`implicit` sugar).
            if let Expr::RuleAbs(rho, body) = &**f {
                out.push((**body).clone());
                if rho.vars().is_empty() && rho.context().len() == args.len() {
                    for i in 0..args.len() {
                        let mut ctx: Vec<RuleType> = rho.context().to_vec();
                        let keep = ctx.remove(i);
                        let mut rest = args.clone();
                        // Canonical context order matches the
                        // argument order only when the generator
                        // built them together; guard on agreement.
                        if rest[i].1 == keep {
                            rest.remove(i);
                            if ctx.is_empty() {
                                out.push((**body).clone());
                            } else {
                                out.push(Expr::with(
                                    Expr::rule_abs(
                                        RuleType::mono(ctx, rho.head().clone()),
                                        (**body).clone(),
                                    ),
                                    rest,
                                ));
                            }
                        }
                    }
                }
            } else {
                out.push((**f).clone());
            }
            for (a, _) in args {
                out.push(a.clone());
            }
        }
        Expr::Make(_, _, fields) => {
            for (_, a) in fields {
                out.push(a.clone());
            }
        }
        _ => {}
    }

    // One-child rewrites (recursive).
    out.extend(child_rewrites(e));
    out
}

/// A small literal of the query's head type, used to discharge
/// trivial queries.
fn query_stub(rho: &RuleType) -> Vec<Expr> {
    if !rho.is_trivial() {
        return Vec::new();
    }
    match rho.head() {
        Type::Int => vec![Expr::Int(0)],
        Type::Bool => vec![Expr::Bool(false)],
        Type::Str => vec![Expr::Str(String::new())],
        Type::Unit => vec![Expr::Unit],
        _ => Vec::new(),
    }
}

fn child_rewrites(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Lam(x, ty, b) => {
            for c in candidates(b) {
                out.push(Expr::Lam(*x, ty.clone(), Rc::new(c)));
            }
        }
        Expr::App(f, a) => {
            for c in candidates(f) {
                out.push(Expr::App(Rc::new(c), a.clone()));
            }
            for c in candidates(a) {
                out.push(Expr::App(f.clone(), Rc::new(c)));
            }
        }
        Expr::RuleAbs(rho, b) => {
            for c in candidates(b) {
                out.push(Expr::RuleAbs(rho.clone(), Rc::new(c)));
            }
        }
        Expr::TyApp(b, tys) => {
            for c in candidates(b) {
                out.push(Expr::TyApp(Rc::new(c), tys.clone()));
            }
        }
        Expr::RuleApp(f, args) => {
            for c in candidates(f) {
                out.push(Expr::RuleApp(Rc::new(c), args.clone()));
            }
            for i in 0..args.len() {
                for c in candidates(&args[i].0) {
                    let mut rest = args.clone();
                    rest[i].0 = c;
                    out.push(Expr::RuleApp(f.clone(), rest));
                }
            }
        }
        Expr::If(cnd, t, el) => {
            for c in candidates(cnd) {
                out.push(Expr::If(Rc::new(c), t.clone(), el.clone()));
            }
            for c in candidates(t) {
                out.push(Expr::If(cnd.clone(), Rc::new(c), el.clone()));
            }
            for c in candidates(el) {
                out.push(Expr::If(cnd.clone(), t.clone(), Rc::new(c)));
            }
        }
        Expr::BinOp(op, a, b) => {
            for c in candidates(a) {
                out.push(Expr::BinOp(*op, Rc::new(c), b.clone()));
            }
            for c in candidates(b) {
                out.push(Expr::BinOp(*op, a.clone(), Rc::new(c)));
            }
        }
        Expr::UnOp(op, a) => {
            for c in candidates(a) {
                out.push(Expr::UnOp(*op, Rc::new(c)));
            }
        }
        Expr::Pair(a, b) => {
            for c in candidates(a) {
                out.push(Expr::Pair(Rc::new(c), b.clone()));
            }
            for c in candidates(b) {
                out.push(Expr::Pair(a.clone(), Rc::new(c)));
            }
        }
        Expr::Fst(a) => {
            for c in candidates(a) {
                out.push(Expr::Fst(Rc::new(c)));
            }
        }
        Expr::Snd(a) => {
            for c in candidates(a) {
                out.push(Expr::Snd(Rc::new(c)));
            }
        }
        Expr::Cons(h, t) => {
            for c in candidates(h) {
                out.push(Expr::Cons(Rc::new(c), t.clone()));
            }
            for c in candidates(t) {
                out.push(Expr::Cons(h.clone(), Rc::new(c)));
            }
        }
        Expr::ListCase {
            scrut,
            nil,
            head,
            tail,
            cons,
        } => {
            for c in candidates(scrut) {
                out.push(Expr::ListCase {
                    scrut: Rc::new(c),
                    nil: nil.clone(),
                    head: *head,
                    tail: *tail,
                    cons: cons.clone(),
                });
            }
            for c in candidates(nil) {
                out.push(Expr::ListCase {
                    scrut: scrut.clone(),
                    nil: Rc::new(c),
                    head: *head,
                    tail: *tail,
                    cons: cons.clone(),
                });
            }
            for c in candidates(cons) {
                out.push(Expr::ListCase {
                    scrut: scrut.clone(),
                    nil: nil.clone(),
                    head: *head,
                    tail: *tail,
                    cons: Rc::new(c),
                });
            }
        }
        Expr::Fix(x, ty, b) => {
            for c in candidates(b) {
                out.push(Expr::Fix(*x, ty.clone(), Rc::new(c)));
            }
        }
        Expr::Proj(b, u) => {
            for c in candidates(b) {
                out.push(Expr::Proj(Rc::new(c), *u));
            }
        }
        Expr::Make(name, tys, fields) => {
            for i in 0..fields.len() {
                for c in candidates(&fields[i].1) {
                    let mut rest = fields.clone();
                    rest[i].1 = c;
                    out.push(Expr::Make(*name, tys.clone(), rest));
                }
            }
        }
        Expr::Inject(ctor, tys, args) => {
            for i in 0..args.len() {
                for c in candidates(&args[i]) {
                    let mut rest = args.clone();
                    rest[i] = c;
                    out.push(Expr::Inject(*ctor, tys.clone(), rest));
                }
            }
        }
        Expr::Match(s, arms) => {
            for c in candidates(s) {
                out.push(Expr::Match(Rc::new(c), arms.clone()));
            }
            for i in 0..arms.len() {
                for c in candidates(&arms[i].body) {
                    let mut rest = arms.clone();
                    rest[i] = MatchArm {
                        ctor: arms[i].ctor,
                        binders: arms[i].binders.clone(),
                        body: c,
                    };
                    out.push(Expr::Match(s.clone(), rest));
                }
            }
        }
        _ => {}
    }
    out
}

/// Greedily minimizes `e` while `property` holds: each round picks
/// the smallest accepted candidate and restarts from it; stops at a
/// local minimum (or after `max_rounds` as a safety valve).
///
/// The caller's property MUST hold on the input; the result is the
/// smallest expression found on which it still holds.
pub fn shrink(e: &Expr, property: &dyn Fn(&Expr) -> bool) -> Expr {
    let mut current = e.clone();
    let mut current_size = node_count(&current);
    let max_rounds = 10_000;
    for _ in 0..max_rounds {
        let mut cands = candidates(&current);
        cands.sort_by_key(node_count);
        let mut improved = false;
        for cand in cands {
            let size = node_count(&cand);
            if size >= current_size {
                // Sorted ascending: nothing smaller remains.
                break;
            }
            if property(&cand) {
                current = cand;
                current_size = size;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use implicit_core::syntax::Declarations;
    use implicit_core::typeck::{types_equal, Typechecker};

    fn contains_mul(e: &Expr) -> bool {
        if let Expr::BinOp(BinOp::Mul, _, _) = e {
            return true;
        }
        match e {
            Expr::Lam(_, _, b)
            | Expr::UnOp(_, b)
            | Expr::Fix(_, _, b)
            | Expr::Proj(b, _)
            | Expr::TyApp(b, _)
            | Expr::RuleAbs(_, b)
            | Expr::Fst(b)
            | Expr::Snd(b) => contains_mul(b),
            Expr::App(a, b) | Expr::BinOp(_, a, b) | Expr::Pair(a, b) | Expr::Cons(a, b) => {
                contains_mul(a) || contains_mul(b)
            }
            Expr::If(c, t, e2) => contains_mul(c) || contains_mul(t) || contains_mul(e2),
            Expr::RuleApp(f, args) => contains_mul(f) || args.iter().any(|(a, _)| contains_mul(a)),
            Expr::ListCase {
                scrut, nil, cons, ..
            } => contains_mul(scrut) || contains_mul(nil) || contains_mul(cons),
            Expr::Make(_, _, fields) => fields.iter().any(|(_, e2)| contains_mul(e2)),
            Expr::Inject(_, _, args) => args.iter().any(contains_mul),
            Expr::Match(s, arms) => contains_mul(s) || arms.iter().any(|a| contains_mul(&a.body)),
            _ => false,
        }
    }

    #[test]
    fn node_count_counts_terms() {
        let e = Expr::binop(BinOp::Add, Expr::Int(1), Expr::Int(2));
        assert_eq!(node_count(&e), 3);
    }

    #[test]
    fn shrink_finds_minimal_mul_preserving_type() {
        // A deliberately bloated well-typed Int program containing a
        // single `*`; the property mimics the harness's: same type,
        // still "diverges" (here: still contains `*`).
        let decls = Declarations::new();
        let e = implicit_core::parse::parse_expr(
            "implicit {3 : Int, true : Bool} in \
             (if ?(Bool) then ?(Int) + (2 * (?(Int) - 1)) else 0 - ?(Int)) : Int",
        )
        .unwrap();
        let tc = Typechecker::new(&decls);
        let ty = tc.check_closed(&e).unwrap();
        let property = |cand: &Expr| {
            contains_mul(cand)
                && tc
                    .check_closed(cand)
                    .map(|t| types_equal(&t, &ty))
                    .unwrap_or(false)
        };
        assert!(property(&e));
        let small = shrink(&e, &property);
        assert!(property(&small));
        assert!(
            node_count(&small) <= 10,
            "shrunk to {} nodes: {small}",
            node_count(&small)
        );
        assert!(node_count(&small) < node_count(&e));
    }

    #[test]
    fn shrink_is_identity_at_local_minimum() {
        let e = Expr::Int(7);
        let out = shrink(&e, &|c| matches!(c, Expr::Int(7)));
        assert_eq!(out, e);
    }
}
