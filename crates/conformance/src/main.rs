//! The `conformance` CLI: sharded differential sweeps and corpus
//! replay.

use std::path::PathBuf;
use std::process::ExitCode;

use conformance::{replay, run, RunnerConfig};

const USAGE: &str = "\
conformance — differential conformance harness for the implicit calculus

USAGE:
    conformance [--shards N] [--seeds A..B] [--corpus DIR]
                [--report FILE] [--fail-on-divergence] [--wild]
                [--cache-dir DIR]
    conformance --replay FILE

OPTIONS:
    --shards N             worker threads (default: 4)
    --seeds A..B           seed range, half-open (default: 0..1000)
    --corpus DIR           persist divergence reproducers here
    --report FILE          write the JSON run report here
    --fail-on-divergence   exit non-zero if any divergence was found
    --wild                 production-shaped wild-mode sweep: per-seed
                           field-study environments (hundreds of rules,
                           Zipf head skew, conversion chains) resolved
                           by the logic and subtyping engines
    --cache-dir DIR        load-or-build the rehydrated-session leg's
                           prelude artifact through this on-disk store
                           (exercises the cross-process warm-start
                           path; without it the leg round-trips the
                           artifact in memory)
    --daemon               seventh oracle leg: start an in-process
                           implicitd, open one tenant per shard, and
                           serve every round-trippable program over
                           the framed wire protocol, comparing against
                           the in-process warm session
    --replay FILE          re-run the oracle on a corpus .imp file
    --help                 show this help
";

struct Cli {
    shards: usize,
    seed_lo: u64,
    seed_hi: u64,
    corpus: Option<PathBuf>,
    report: Option<PathBuf>,
    fail_on_divergence: bool,
    wild: bool,
    cache_dir: Option<PathBuf>,
    daemon: bool,
    replay: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        shards: 4,
        seed_lo: 0,
        seed_hi: 1000,
        corpus: None,
        report: None,
        fail_on_divergence: false,
        wild: false,
        cache_dir: None,
        daemon: false,
        replay: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--shards" => {
                cli.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if cli.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--seeds" => {
                let v = value("--seeds")?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds expects A..B, got `{v}`"))?;
                cli.seed_lo = a.parse().map_err(|e| format!("--seeds lower bound: {e}"))?;
                cli.seed_hi = b.parse().map_err(|e| format!("--seeds upper bound: {e}"))?;
                if cli.seed_hi < cli.seed_lo {
                    return Err(format!("--seeds range is empty: {v}"));
                }
            }
            "--corpus" => cli.corpus = Some(PathBuf::from(value("--corpus")?)),
            "--report" => cli.report = Some(PathBuf::from(value("--report")?)),
            "--fail-on-divergence" => cli.fail_on_divergence = true,
            "--wild" => cli.wild = true,
            "--cache-dir" => cli.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--daemon" => cli.daemon = true,
            "--replay" => cli.replay = Some(PathBuf::from(value("--replay")?)),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &cli.replay {
        return match replay(path) {
            Ok(verdict) => {
                println!("{verdict}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }

    let config = RunnerConfig {
        seed_lo: cli.seed_lo,
        seed_hi: cli.seed_hi,
        shards: cli.shards,
        corpus_dir: cli.corpus.clone(),
        gen: genprog::GenConfig::default(),
        wild: cli.wild,
        cache_dir: cli.cache_dir.clone(),
        daemon: cli.daemon,
    };
    let report = match run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{}seeds {}..{} over {} shard(s): {} oracle runs in {} ms wall \
         ({:.0} programs/sec, {:.2}x shard speedup), {} divergence(s)",
        if cli.wild { "wild-mode " } else { "" },
        report.seed_lo,
        report.seed_hi,
        report.shards,
        report.total_programs(),
        report.wall_ms,
        report.programs_per_sec(),
        report.speedup(),
        report.divergences.len(),
    );
    let legs = report.total_leg_timings();
    println!(
        "  per-leg cpu time: {}",
        legs.as_pairs()
            .iter()
            .map(|(name, us)| format!("{name} {:.1} ms", *us as f64 / 1000.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for d in &report.divergences {
        println!(
            "  {}: seed {} shard {} — {} ({} -> {} nodes{})",
            d.kind,
            d.seed,
            d.shard,
            d.detail,
            d.original_nodes,
            d.minimized_nodes,
            if d.replayable { ", replayable" } else { "" }
        );
    }

    if let Some(path) = &cli.report {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: writing report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("report written to {}", path.display());
    }
    if let Some(dir) = &cli.corpus {
        if !report.divergences.is_empty() {
            println!("corpus written to {}", dir.display());
        }
    }

    if cli.fail_on_divergence && !report.divergences.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
