//! Machine-readable run reports.
//!
//! The harness emits a single JSON document per sweep: per-shard
//! throughput (so future perf PRs can regress-check programs/sec),
//! the generator coverage histogram, and every divergence with its
//! minimized reproducer. The encoder is the hand-rolled JSON value
//! from [`implicit_pipeline::service`] (re-exported here as [`Json`])
//! — the daemon wire protocol and this report share one
//! implementation, so a report value can be framed to `implicitd`
//! verbatim and vice versa. The build environment has no registry
//! access, and both shapes are small and fixed.

use implicit_core::trace::MetricsRegistry;

/// The report's JSON value — the daemon protocol's encoder/decoder
/// ([`implicit_pipeline::service::Json`]), re-exported so existing
/// `conformance::report::Json` users keep compiling.
pub use implicit_pipeline::service::Json;

/// Wall time spent inside each oracle leg, accumulated per shard in
/// microseconds (reported in milliseconds), so the cost of every leg
/// — the new subtyping leg in particular — is visible in the JSON
/// report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LegTimings {
    /// The program oracle (typecheck, 3× elaboration, VM, opsem,
    /// per-site subtyping cross-check).
    pub program_us: u64,
    /// The warm/cold session oracle.
    pub session_us: u64,
    /// The env-level resolution oracle.
    pub resolution_us: u64,
    /// The env-level subtyping oracle.
    pub subtyping_us: u64,
    /// The rehydrated-session (warm-restart) oracle.
    pub restart_us: u64,
    /// The wild-mode oracle (wild sweeps only).
    pub wild_us: u64,
    /// The daemon oracle: an `implicitd` tenant served over the wire
    /// must agree with the in-process warm session (daemon sweeps
    /// only).
    pub daemon_us: u64,
}

impl LegTimings {
    /// Accumulates another shard's (or seed's) timings.
    pub fn merge(&mut self, other: &LegTimings) {
        self.program_us += other.program_us;
        self.session_us += other.session_us;
        self.resolution_us += other.resolution_us;
        self.subtyping_us += other.subtyping_us;
        self.restart_us += other.restart_us;
        self.wild_us += other.wild_us;
        self.daemon_us += other.daemon_us;
    }

    /// `(leg name, accumulated microseconds)` pairs in report order.
    pub fn as_pairs(&self) -> [(&'static str, u64); 7] {
        [
            ("program", self.program_us),
            ("session", self.session_us),
            ("resolution", self.resolution_us),
            ("subtyping", self.subtyping_us),
            ("restart", self.restart_us),
            ("wild", self.wild_us),
            ("daemon", self.daemon_us),
        ]
    }

    fn to_json(self) -> Json {
        Json::Obj(
            self.as_pairs()
                .into_iter()
                .map(|(k, us)| (format!("{k}_ms"), Json::Num(us as f64 / 1000.0)))
                .collect(),
        )
    }
}

/// Per-shard throughput numbers.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Seeds this shard processed.
    pub seeds: u64,
    /// Oracle runs (one program + one resolution workload per seed).
    pub programs: u64,
    /// Wall time spent inside the shard's worker thread.
    pub duration_ms: u64,
    /// Divergences this shard found.
    pub divergences: u64,
    /// Seeds this worker stole from a sibling's local deque.
    pub steals: u64,
    /// Warm-session derivation-cache hits accumulated by this
    /// worker's [`implicit_pipeline::Session`] across its seeds.
    pub warm_cache_hits: u64,
    /// The worker session's unified counter snapshot (resolution,
    /// cache, memo, evaluator, and session counters; DESIGN.md S28).
    pub metrics: MetricsRegistry,
    /// Per-oracle-leg wall time accumulated across this shard's
    /// seeds.
    pub leg_timings: LegTimings,
}

impl ShardReport {
    /// Programs per second, guarding the division.
    pub fn programs_per_sec(&self) -> f64 {
        if self.duration_ms == 0 {
            self.programs as f64 * 1000.0
        } else {
            self.programs as f64 * 1000.0 / self.duration_ms as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("shard", Json::Int(self.shard as i64)),
            ("seeds", Json::Int(self.seeds as i64)),
            ("programs", Json::Int(self.programs as i64)),
            ("duration_ms", Json::Int(self.duration_ms as i64)),
            ("programs_per_sec", Json::Num(self.programs_per_sec())),
            ("divergences", Json::Int(self.divergences as i64)),
            ("steals", Json::Int(self.steals as i64)),
            ("warm_cache_hits", Json::Int(self.warm_cache_hits as i64)),
            ("leg_timing", self.leg_timings.to_json()),
            ("metrics", metrics_json(&self.metrics)),
        ])
    }
}

/// Renders a [`MetricsRegistry`] as a flat JSON object.
fn metrics_json(m: &MetricsRegistry) -> Json {
    Json::Obj(
        m.as_pairs()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), Json::Int(v as i64)))
            .collect(),
    )
}

/// A persisted divergence: everything needed to replay and triage.
#[derive(Clone, Debug)]
pub struct DivergenceRecord {
    /// Corpus id (also the corpus file stem).
    pub id: String,
    /// The generating seed.
    pub seed: u64,
    /// The shard that found it.
    pub shard: usize,
    /// Divergence category (stable machine-readable label).
    pub kind: String,
    /// Human-readable oracle verdicts.
    pub detail: String,
    /// The original program, pretty-printed.
    pub program: String,
    /// The minimized program, pretty-printed.
    pub minimized: String,
    /// AST node count before shrinking.
    pub original_nodes: usize,
    /// AST node count after shrinking.
    pub minimized_nodes: usize,
    /// Whether the pretty-printed program parses back identically
    /// (replayable via `conformance --replay`).
    pub replayable: bool,
}

impl DivergenceRecord {
    /// The record's JSON metadata (the corpus `.json` side file).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("seed", Json::Int(self.seed as i64)),
            ("shard", Json::Int(self.shard as i64)),
            ("kind", Json::Str(self.kind.clone())),
            ("detail", Json::Str(self.detail.clone())),
            ("program", Json::Str(self.program.clone())),
            ("minimized", Json::Str(self.minimized.clone())),
            ("original_nodes", Json::Int(self.original_nodes as i64)),
            ("minimized_nodes", Json::Int(self.minimized_nodes as i64)),
            ("replayable", Json::Bool(self.replayable)),
        ])
    }
}

/// The whole-run report.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// First seed (inclusive).
    pub seed_lo: u64,
    /// Last seed (exclusive).
    pub seed_hi: u64,
    /// Worker thread count.
    pub shards: usize,
    /// Wall time of the whole sweep (max over shards + join).
    pub wall_ms: u64,
    /// Per-shard numbers.
    pub shard_reports: Vec<ShardReport>,
    /// Generator coverage histogram (construct → emission count).
    pub coverage: Vec<(&'static str, u64)>,
    /// All divergences, shrunk.
    pub divergences: Vec<DivergenceRecord>,
}

impl RunReport {
    /// Total oracle runs across shards.
    pub fn total_programs(&self) -> u64 {
        self.shard_reports.iter().map(|s| s.programs).sum()
    }

    /// The per-shard metric snapshots merged into one sweep-wide
    /// registry.
    pub fn total_metrics(&self) -> MetricsRegistry {
        let mut total = MetricsRegistry::new();
        for s in &self.shard_reports {
            total.merge(&s.metrics);
        }
        total
    }

    /// The per-shard leg timings summed sweep-wide.
    pub fn total_leg_timings(&self) -> LegTimings {
        let mut total = LegTimings::default();
        for s in &self.shard_reports {
            total.merge(&s.leg_timings);
        }
        total
    }

    /// Sum of per-shard worker durations (the "serial cost"); the
    /// ratio against `wall_ms` is the observed shard speedup.
    pub fn cpu_ms(&self) -> u64 {
        self.shard_reports.iter().map(|s| s.duration_ms).sum()
    }

    /// Observed speedup: serial cost over wall time (≈ shard count
    /// when scaling is near-linear).
    pub fn speedup(&self) -> f64 {
        if self.wall_ms == 0 {
            self.shards as f64
        } else {
            self.cpu_ms() as f64 / self.wall_ms as f64
        }
    }

    /// Aggregate throughput over wall time.
    pub fn programs_per_sec(&self) -> f64 {
        if self.wall_ms == 0 {
            self.total_programs() as f64 * 1000.0
        } else {
            self.total_programs() as f64 * 1000.0 / self.wall_ms as f64
        }
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("seed_lo", Json::Int(self.seed_lo as i64)),
            ("seed_hi", Json::Int(self.seed_hi as i64)),
            ("shards", Json::Int(self.shards as i64)),
            ("wall_ms", Json::Int(self.wall_ms as i64)),
            ("cpu_ms", Json::Int(self.cpu_ms() as i64)),
            ("speedup", Json::Num(self.speedup())),
            ("total_programs", Json::Int(self.total_programs() as i64)),
            ("programs_per_sec", Json::Num(self.programs_per_sec())),
            ("divergence_count", Json::Int(self.divergences.len() as i64)),
            ("leg_timing", self.total_leg_timings().to_json()),
            ("metrics", metrics_json(&self.total_metrics())),
            (
                "coverage",
                Json::Obj(
                    self.coverage
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), Json::Int(*v as i64)))
                        .collect(),
                ),
            ),
            (
                "shards_detail",
                Json::Arr(self.shard_reports.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "divergences",
                Json::Arr(self.divergences.iter().map(|d| d.to_json()).collect()),
            ),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_renders() {
        let j = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("n", Json::Int(-3)),
            ("x", Json::Num(1.5)),
            ("b", Json::Bool(true)),
            ("z", Json::Null),
            ("a", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"s":"a\"b\\c\nd","n":-3,"x":1.500,"b":true,"z":null,"a":[1,2]}"#
        );
    }

    #[test]
    fn report_aggregates() {
        let report = RunReport {
            seed_lo: 0,
            seed_hi: 100,
            shards: 2,
            wall_ms: 50,
            shard_reports: vec![
                ShardReport {
                    shard: 0,
                    seeds: 50,
                    programs: 50,
                    duration_ms: 40,
                    divergences: 0,
                    steals: 3,
                    warm_cache_hits: 120,
                    metrics: MetricsRegistry {
                        queries: 10,
                        queries_resolved: 10,
                        ..MetricsRegistry::new()
                    },
                    leg_timings: LegTimings {
                        program_us: 30_000,
                        session_us: 5_000,
                        resolution_us: 3_000,
                        subtyping_us: 2_000,
                        restart_us: 1_000,
                        wild_us: 0,
                        daemon_us: 400,
                    },
                },
                ShardReport {
                    shard: 1,
                    seeds: 50,
                    programs: 50,
                    duration_ms: 45,
                    divergences: 0,
                    steals: 0,
                    warm_cache_hits: 118,
                    metrics: MetricsRegistry {
                        queries: 12,
                        queries_resolved: 12,
                        ..MetricsRegistry::new()
                    },
                    leg_timings: LegTimings {
                        program_us: 32_500,
                        session_us: 6_000,
                        resolution_us: 3_500,
                        subtyping_us: 2_500,
                        restart_us: 1_500,
                        wild_us: 0,
                        daemon_us: 600,
                    },
                },
            ],
            coverage: vec![("int_lit", 7)],
            divergences: vec![],
        };
        assert_eq!(report.total_programs(), 100);
        assert_eq!(report.cpu_ms(), 85);
        assert!(report.speedup() > 1.0);
        assert_eq!(report.total_metrics().queries, 22);
        let json = report.to_json();
        assert!(json.contains("\"total_programs\":100"), "got {json}");
        assert!(json.contains("\"int_lit\":7"), "got {json}");
        // Sweep-wide metrics merge, and every shard carries its own.
        assert!(json.contains("\"queries\":22"), "got {json}");
        assert!(json.contains("\"queries\":10"), "got {json}");
        assert!(json.contains("\"queries\":12"), "got {json}");
        // Per-leg timings merge sweep-wide and render in ms.
        let total = report.total_leg_timings();
        assert_eq!(total.program_us, 62_500);
        assert_eq!(total.subtyping_us, 4_500);
        assert_eq!(total.restart_us, 2_500);
        assert_eq!(total.daemon_us, 1_000);
        assert!(json.contains("\"subtyping_ms\":4.500"), "got {json}");
        assert!(json.contains("\"restart_ms\":2.500"), "got {json}");
        assert!(json.contains("\"program_ms\":62.500"), "got {json}");
        assert!(json.contains("\"wild_ms\":0.000"), "got {json}");
        assert!(json.contains("\"daemon_ms\":1.000"), "got {json}");
    }
}
