//! The three-way semantic oracle.
//!
//! Every seed is pushed through three independent implementations of
//! the paper's semantics, which must agree:
//!
//! * **(a) Elaboration** — elaborate to System F, type-check the
//!   output (the §4 preservation theorem, checked dynamically), and
//!   evaluate call-by-value — under the paper policy with the
//!   derivation cache on, off, and under the most-specific overlap
//!   policy (generated programs are overlap-free, so all three must
//!   produce the same value and type).
//! * **(b) Direct operational semantics** — the runtime-resolution
//!   interpreter, with its runtime memo on and off.
//! * **(b′) Compiled backend** — the elaborated System F term is also
//!   closure-converted to bytecode and run on the [`systemf::vm`]
//!   virtual machine under *both* ISAs — the register machine and the
//!   stack machine it replaced — each of which must print the same
//!   value as the tree-walking evaluator.
//! * **(c) Resolution** — a seed-derived environment/query workload
//!   resolved under each [`ResolutionPolicy`] with the derivation
//!   cache on and off; the full [`Resolution`] derivations and their
//!   [`ResolutionStats`]-visible work counters must be identical.
//! * **(d) Intersection subtyping** — every query site in the program
//!   (and every env-level workload query) is also decided by the
//!   structurally independent resolution-as-intersection-subtyping
//!   algorithm ([`implicit_core::subtyping`]), which must reproduce
//!   the logic resolver's outcome, evidence, and failure payloads
//!   exactly.
//!
//! Any disagreement or crash is a [`Divergence`], categorized for
//! triage and for the shrinker's "still diverges the same way"
//! predicate.

use std::fmt;

use implicit_core::resolve::{resolve, Resolution, ResolutionPolicy};
use implicit_core::syntax::{Declarations, Expr, RuleType, Type};
use implicit_core::typeck::{types_equal, Typechecker};
use implicit_opsem::Interpreter;

/// Divergence categories (stable labels; the shrinker preserves the
/// category while minimizing).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DivergenceKind {
    /// The generator emitted an ill-typed program.
    IllTyped,
    /// The checker's type differs from the generator's declared type.
    TypeDrift,
    /// Elaboration failed on a well-typed program.
    ElabFailed,
    /// The elaborated term was ill-typed in System F (§4 preservation
    /// theorem violated).
    PreservationViolated,
    /// System F evaluation of the elaborated term failed (type-safety
    /// violation).
    ElabEvalFailed,
    /// The direct operational semantics failed where elaboration
    /// succeeded.
    OpsemFailed,
    /// Elaboration and the operational semantics computed different
    /// values (coherence violation).
    ValueMismatch,
    /// Cache/memo on vs. off changed an observable result.
    CacheMismatch,
    /// A resolution-policy variant changed the result on an
    /// overlap-free program.
    PolicyMismatch,
    /// The env-level resolution oracle saw differing derivations or
    /// work counters.
    ResolutionMismatch,
    /// A warm [`implicit_pipeline::Session`] run disagreed with the
    /// cold one-shot pipeline on the sugared equivalent program.
    WarmColdMismatch,
    /// The bytecode VM disagreed with (or failed where) the
    /// tree-walking System F evaluator (succeeded).
    VmMismatch,
    /// The intersection-subtyping resolver disagreed with the logic
    /// resolver — different outcome, evidence, or failure payload.
    SubtypingMismatch,
    /// A session rehydrated from a serialized artifact
    /// ([`implicit_pipeline::Session::from_artifact`]) disagreed with
    /// the same-process warm session on a program.
    RestartMismatch,
    /// An `implicitd` tenant serving the program over the wire
    /// ([`implicit_pipeline::service`]) disagreed with the in-process
    /// warm session.
    DaemonMismatch,
}

impl DivergenceKind {
    /// The stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DivergenceKind::IllTyped => "ill_typed",
            DivergenceKind::TypeDrift => "type_drift",
            DivergenceKind::ElabFailed => "elab_failed",
            DivergenceKind::PreservationViolated => "preservation_violated",
            DivergenceKind::ElabEvalFailed => "elab_eval_failed",
            DivergenceKind::OpsemFailed => "opsem_failed",
            DivergenceKind::ValueMismatch => "value_mismatch",
            DivergenceKind::CacheMismatch => "cache_mismatch",
            DivergenceKind::PolicyMismatch => "policy_mismatch",
            DivergenceKind::ResolutionMismatch => "resolution_mismatch",
            DivergenceKind::WarmColdMismatch => "warm_cold_mismatch",
            DivergenceKind::VmMismatch => "vm_mismatch",
            DivergenceKind::SubtypingMismatch => "subtyping_mismatch",
            DivergenceKind::RestartMismatch => "restart_mismatch",
            DivergenceKind::DaemonMismatch => "daemon_mismatch",
        }
    }
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A detected divergence.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Category.
    pub kind: DivergenceKind,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl Divergence {
    fn new(kind: DivergenceKind, detail: impl Into<String>) -> Divergence {
        Divergence {
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// What the program oracle observed when all legs agreed.
#[derive(Clone, Debug)]
pub struct ProgramVerdict {
    /// The agreed value (printed form).
    pub value: String,
    /// The agreed λ⇒ type (printed form).
    pub ty: String,
    /// Runtime memo counters `(hits, misses)` of the memo-on opsem
    /// leg.
    pub memo: (u64, u64),
}

/// Runs the program legs of the oracle: elaboration (cache on / off /
/// most-specific) vs. the direct operational semantics (memo on /
/// off), plus the §4 preservation check.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn run_program_oracle(
    decls: &Declarations,
    expr: &Expr,
    declared_ty: &Type,
) -> Result<ProgramVerdict, Divergence> {
    // Leg 0: the λ⇒ type system accepts the program at the declared
    // type.
    let checked = Typechecker::new(decls)
        .check_closed(expr)
        .map_err(|e| Divergence::new(DivergenceKind::IllTyped, e.to_string()))?;
    if !types_equal(&checked, declared_ty) {
        return Err(Divergence::new(
            DivergenceKind::TypeDrift,
            format!("declared `{declared_ty}`, checked `{checked}`"),
        ));
    }

    // Leg (a): elaboration under three policies. `run_with` already
    // type-checks the System F output (preservation) before
    // evaluating.
    let policies: [(&str, ResolutionPolicy); 3] = [
        ("paper+cache", ResolutionPolicy::paper()),
        ("paper-nocache", ResolutionPolicy::paper().without_cache()),
        (
            "most-specific",
            ResolutionPolicy::paper().with_most_specific(),
        ),
    ];
    let mut elab_value: Option<String> = None;
    let mut elab_ty: Option<String> = None;
    let mut elab_target: Option<systemf::FExpr> = None;
    for (name, policy) in &policies {
        let out = implicit_elab::run_with(decls, expr, policy).map_err(|e| {
            let kind = match &e {
                implicit_elab::RunError::Elab(_) => DivergenceKind::ElabFailed,
                implicit_elab::RunError::PreservationViolated(_) => {
                    DivergenceKind::PreservationViolated
                }
                implicit_elab::RunError::Eval(_) => DivergenceKind::ElabEvalFailed,
            };
            Divergence::new(kind, format!("[{name}] {e}"))
        })?;
        let v = out.value.to_string();
        let t = out.source_type.to_string();
        match (&elab_value, &elab_ty) {
            (None, _) => {
                elab_value = Some(v);
                elab_ty = Some(t);
                elab_target = Some(out.target);
            }
            (Some(v0), Some(t0)) => {
                if *v0 != v || *t0 != t {
                    let kind = if *name == "most-specific" {
                        DivergenceKind::PolicyMismatch
                    } else {
                        DivergenceKind::CacheMismatch
                    };
                    return Err(Divergence::new(
                        kind,
                        format!("[{name}] value `{v}` type `{t}` vs baseline `{v0}` `{t0}`"),
                    ));
                }
            }
            _ => unreachable!("value and type are set together"),
        }
    }
    let value = elab_value.expect("at least one policy ran");

    // Leg (b′): the same elaborated term, closure-converted to
    // bytecode and run on both VM ISAs — the register machine (the
    // default backend) and the stack machine kept as its differential
    // baseline. The tree-walker already evaluated the term, so a
    // compile or run failure here is as much a divergence as a
    // differing value.
    let target = elab_target.expect("target kept alongside the baseline value");
    for isa in [systemf::Isa::Register, systemf::Isa::Stack] {
        match systemf::compile_and_run_isa(&target, isa) {
            Ok(vm_value) => {
                let vm_value = vm_value.to_string();
                if vm_value != value {
                    return Err(Divergence::new(
                        DivergenceKind::VmMismatch,
                        format!("{isa:?} vm `{vm_value}` vs tree-walk `{value}`"),
                    ));
                }
            }
            Err(e) => {
                return Err(Divergence::new(
                    DivergenceKind::VmMismatch,
                    format!("{isa:?} vm failed where tree-walk succeeded: {e}"),
                ));
            }
        }
    }

    // Leg (b): the direct operational semantics, memo on and off.
    let mut memo_on = Interpreter::new(decls);
    let v_on = memo_on
        .eval(expr)
        .map_err(|e| Divergence::new(DivergenceKind::OpsemFailed, format!("[memo-on] {e}")))?;
    let memo = memo_on.memo_counters();
    if v_on.to_string() != value {
        return Err(Divergence::new(
            DivergenceKind::ValueMismatch,
            format!("opsem `{v_on}` vs elaboration `{value}`"),
        ));
    }
    let mut memo_off =
        Interpreter::new(decls).with_policy(ResolutionPolicy::paper().without_cache());
    let v_off = memo_off
        .eval(expr)
        .map_err(|e| Divergence::new(DivergenceKind::OpsemFailed, format!("[memo-off] {e}")))?;
    if v_off.to_string() != v_on.to_string() {
        return Err(Divergence::new(
            DivergenceKind::CacheMismatch,
            format!("opsem memo-off `{v_off}` vs memo-on `{v_on}`"),
        ));
    }

    // Leg (d): the intersection-subtyping resolver, cross-checked at
    // every query site of the program against the logic resolver —
    // same successes (identical evidence after [`MpStep`] →
    // [`Resolution`] conversion) and same failures (equal error
    // values). Ample depth keeps the two engines fuel-equivalent (the
    // logic resolver's derivation cache conserves fuel on repeated
    // sub-queries; the subtyping prover has no cache).
    check_subtyping_sites(expr)?;

    Ok(ProgramVerdict {
        value,
        ty: checked.to_string(),
        memo,
    })
}

/// Cross-checks the subtyping resolver against the logic resolver at
/// every query site of `expr`, under the paper and most-specific
/// policies.
fn check_subtyping_sites(expr: &Expr) -> Result<(), Divergence> {
    let policies = [
        ("paper", ResolutionPolicy::paper().with_max_depth(4096)),
        (
            "most-specific",
            ResolutionPolicy::paper()
                .with_most_specific()
                .with_max_depth(4096),
        ),
    ];
    let mut failure: Option<Divergence> = None;
    implicit_core::subtyping::walk_query_sites(expr, &mut |env, query| {
        if failure.is_some() {
            return;
        }
        for (pname, policy) in &policies {
            if let Err(detail) = implicit_core::subtyping::cross_check(env, query, policy) {
                failure = Some(Divergence::new(
                    DivergenceKind::SubtypingMismatch,
                    format!("[{pname}] query `{query}`: {detail}"),
                ));
                return;
            }
        }
    });
    match failure {
        Some(d) => Err(d),
        None => Ok(()),
    }
}

/// Strips decimal digits so gensym suffixes (`ev17`, `a42`) compare
/// equal across warm and cold runs, whose gensym counters differ.
fn normalize(s: &str) -> String {
    s.chars().filter(|c| !c.is_ascii_digit()).collect()
}

/// The warm-session leg: runs the program through a long-lived
/// [`implicit_pipeline::Session`] (shared interner, warm derivation
/// cache, persistent runtime memo) and demands agreement — in both
/// the elaboration and the operational semantics — with a cold
/// one-shot run of the sugared equivalent `prelude.wrap(expr, τ)`.
///
/// # Errors
///
/// Returns a [`DivergenceKind::WarmColdMismatch`] divergence on any
/// disagreement.
pub fn run_session_oracle(
    decls: &Declarations,
    session: &mut implicit_pipeline::Session<'_>,
    prelude: &implicit_pipeline::Prelude,
    expr: &Expr,
    declared_ty: &Type,
) -> Result<(), Divergence> {
    let wrapped = prelude.wrap(expr.clone(), declared_ty.clone());
    let policy = session.policy().clone();

    let warm = session.run(expr);
    let cold = implicit_elab::run_with(decls, &wrapped, &policy);
    match (&warm, &cold) {
        (Ok(w), Ok(c)) => {
            if w.value.to_string() != c.value.to_string() {
                return Err(Divergence::new(
                    DivergenceKind::WarmColdMismatch,
                    format!("warm value `{}` vs cold `{}`", w.value, c.value),
                ));
            }
            if w.source_type.to_string() != c.source_type.to_string() {
                return Err(Divergence::new(
                    DivergenceKind::WarmColdMismatch,
                    format!("warm type `{}` vs cold `{}`", w.source_type, c.source_type),
                ));
            }
        }
        (Err(we), Err(ce)) => {
            if normalize(&we.to_string()) != normalize(&ce.to_string()) {
                return Err(Divergence::new(
                    DivergenceKind::WarmColdMismatch,
                    format!("warm error `{we}` vs cold `{ce}`"),
                ));
            }
        }
        (w, c) => {
            return Err(Divergence::new(
                DivergenceKind::WarmColdMismatch,
                format!(
                    "warm {} vs cold {}",
                    if w.is_ok() { "succeeded" } else { "failed" },
                    if c.is_ok() { "succeeded" } else { "failed" }
                ),
            ));
        }
    }

    let warm_op = session.run_opsem(expr);
    let cold_op = Interpreter::new(decls).with_policy(policy).eval(&wrapped);
    match (&warm_op, &cold_op) {
        (Ok(w), Ok(c)) => {
            if w.to_string() != c.to_string() {
                return Err(Divergence::new(
                    DivergenceKind::WarmColdMismatch,
                    format!("warm opsem `{w}` vs cold `{c}`"),
                ));
            }
        }
        (Err(we), Err(ce)) => {
            if normalize(&we.to_string()) != normalize(&ce.to_string()) {
                return Err(Divergence::new(
                    DivergenceKind::WarmColdMismatch,
                    format!("warm opsem error `{we}` vs cold `{ce}`"),
                ));
            }
        }
        (w, c) => {
            return Err(Divergence::new(
                DivergenceKind::WarmColdMismatch,
                format!(
                    "warm opsem {} vs cold {}",
                    if w.is_ok() { "succeeded" } else { "failed" },
                    if c.is_ok() { "succeeded" } else { "failed" }
                ),
            ));
        }
    }
    Ok(())
}

/// The rehydrated-session leg: a [`implicit_pipeline::Session`]
/// rebuilt from a serialized artifact (another process's warm state,
/// in spirit) must agree with the same-process warm session on every
/// program, in both the elaboration and the operational semantics.
/// Both sessions restore to their base state after each run, so
/// re-running the warm session here is observationally free.
///
/// # Errors
///
/// Returns a [`DivergenceKind::RestartMismatch`] divergence on any
/// disagreement.
pub fn run_restart_oracle(
    warm: &mut implicit_pipeline::Session<'_>,
    restarted: &mut implicit_pipeline::Session<'_>,
    expr: &Expr,
) -> Result<(), Divergence> {
    let w = warm.run(expr);
    let r = restarted.run(expr);
    match (&w, &r) {
        (Ok(w), Ok(r)) => {
            if w.value.to_string() != r.value.to_string()
                || w.source_type.to_string() != r.source_type.to_string()
            {
                return Err(Divergence::new(
                    DivergenceKind::RestartMismatch,
                    format!(
                        "warm `{} : {}` vs restarted `{} : {}`",
                        w.value, w.source_type, r.value, r.source_type
                    ),
                ));
            }
        }
        (Err(we), Err(re)) => {
            if normalize(&we.to_string()) != normalize(&re.to_string()) {
                return Err(Divergence::new(
                    DivergenceKind::RestartMismatch,
                    format!("warm error `{we}` vs restarted `{re}`"),
                ));
            }
        }
        (w, r) => {
            return Err(Divergence::new(
                DivergenceKind::RestartMismatch,
                format!(
                    "warm {} vs restarted {}",
                    if w.is_ok() { "succeeded" } else { "failed" },
                    if r.is_ok() { "succeeded" } else { "failed" }
                ),
            ));
        }
    }
    let w_op = warm.run_opsem(expr);
    let r_op = restarted.run_opsem(expr);
    match (&w_op, &r_op) {
        (Ok(w), Ok(r)) => {
            if w.to_string() != r.to_string() {
                return Err(Divergence::new(
                    DivergenceKind::RestartMismatch,
                    format!("warm opsem `{w}` vs restarted `{r}`"),
                ));
            }
        }
        (Err(we), Err(re)) => {
            if normalize(&we.to_string()) != normalize(&re.to_string()) {
                return Err(Divergence::new(
                    DivergenceKind::RestartMismatch,
                    format!("warm opsem error `{we}` vs restarted `{re}`"),
                ));
            }
        }
        (w, r) => {
            return Err(Divergence::new(
                DivergenceKind::RestartMismatch,
                format!(
                    "warm opsem {} vs restarted {}",
                    if w.is_ok() { "succeeded" } else { "failed" },
                    if r.is_ok() { "succeeded" } else { "failed" }
                ),
            ));
        }
    }
    Ok(())
}

/// Renders a warm-session error the way the daemon would frame it
/// (`kind: detail`, see `run_error_json` in
/// [`implicit_pipeline::service`]), so the daemon leg can compare
/// error outcomes string-to-string.
fn daemon_err_string(e: &implicit_elab::RunError) -> String {
    use implicit_elab::RunError;
    let kind = match e {
        RunError::Elab(_) => "elab_error",
        RunError::PreservationViolated(_) => "preservation_violated",
        RunError::Eval(_) => "eval_error",
    };
    format!("{kind}: {e}")
}

/// The daemon-service leg: an `implicitd` tenant — same declarations
/// and prelude as the warm session, but living behind the framed JSON
/// protocol on its own thread — must agree with the in-process warm
/// session on every program it can be asked about.
///
/// The daemon serves *source text*, so the leg only fires when the
/// pretty-printed program parses back to the identical AST (the same
/// replayability bar the shrinker applies); programs that don't
/// round-trip are skipped, not failed.
///
/// # Errors
///
/// Returns a [`DivergenceKind::DaemonMismatch`] divergence on any
/// disagreement — including transport-level failures, which should
/// never happen on a healthy daemon.
pub fn run_daemon_oracle(
    client: &mut implicit_pipeline::service::Client,
    tenant: &str,
    warm: &mut implicit_pipeline::Session<'_>,
    expr: &Expr,
) -> Result<(), Divergence> {
    let printed = expr.to_string();
    let roundtrips = implicit_core::parse::parse_expr(&printed)
        .map(|p| &p == expr)
        .unwrap_or(false);
    if !roundtrips {
        return Ok(());
    }
    let w = warm.run(expr);
    let d = client.eval(tenant, &printed);
    match (&w, &d) {
        (Ok(w), Ok((value, ty))) => {
            if w.value.to_string() != *value || w.source_type.to_string() != *ty {
                return Err(Divergence::new(
                    DivergenceKind::DaemonMismatch,
                    format!(
                        "warm `{} : {}` vs daemon `{value} : {ty}`",
                        w.value, w.source_type
                    ),
                ));
            }
        }
        (Err(we), Err(de)) => {
            if normalize(&daemon_err_string(we)) != normalize(de) {
                return Err(Divergence::new(
                    DivergenceKind::DaemonMismatch,
                    format!("warm error `{we}` vs daemon `{de}`"),
                ));
            }
        }
        (w, d) => {
            return Err(Divergence::new(
                DivergenceKind::DaemonMismatch,
                format!(
                    "warm {} vs daemon {}",
                    if w.is_ok() { "succeeded" } else { "failed" },
                    match d {
                        Ok(_) => "succeeded".to_owned(),
                        Err(e) => format!("failed (`{e}`)"),
                    }
                ),
            ));
        }
    }
    Ok(())
}

/// What the resolution oracle observed when all legs agreed.
#[derive(Clone, Debug)]
pub struct ResolutionVerdict {
    /// The workload family used.
    pub family: &'static str,
    /// `TyRes` steps of the agreed derivation.
    pub steps: usize,
}

/// Builds the seed's environment/query workload. Families rotate by
/// seed so a sweep covers chains, wide frames, deep stacks,
/// polymorphic decoys, partial resolution and higher-kinded
/// (`VarApp`) constructor matching.
pub fn resolution_workload(seed: u64) -> (&'static str, implicit_core::ImplicitEnv, RuleType) {
    let n = 1 + (seed / 7) as usize % 24;
    match seed % 7 {
        0 => {
            let (env, q) = genprog::chain_env(n);
            ("chain", env, q)
        }
        1 => {
            let (env, q) = genprog::wide_env(n * 4, (seed % 5) as f64 / 4.0);
            ("wide", env, q)
        }
        2 => {
            let (env, q) = genprog::deep_stack_env(n * 2);
            ("deep_stack", env, q)
        }
        3 => {
            let (env, q) = genprog::poly_env(n);
            ("poly", env, q)
        }
        4 => {
            let (env, q) = genprog::poly_wide_env(n);
            ("poly_wide", env, q)
        }
        5 => {
            let (env, q) = genprog::partial_env(n.min(12), n.min(12) / 2);
            ("partial", env, q)
        }
        _ => {
            let (env, q) = genprog::hk_nested_env(n.min(12));
            ("hk_nested", env, q)
        }
    }
}

/// Runs the env-level resolution leg: the seed's workload resolved
/// under each policy with the derivation cache off, on (cold), and on
/// (warm, replayed from cache). Derivations must be structurally
/// identical and their stats must agree on every cache-independent
/// counter.
///
/// # Errors
///
/// Returns a [`Divergence`] of kind
/// [`DivergenceKind::ResolutionMismatch`] on any disagreement.
pub fn run_resolution_oracle(seed: u64) -> Result<ResolutionVerdict, Divergence> {
    let (family, env, query) = resolution_workload(seed);
    let depth = 4096;
    let mismatch = |detail: String| Divergence::new(DivergenceKind::ResolutionMismatch, detail);

    let mut agreed_steps = 0;
    for (pname, policy) in [
        ("paper", ResolutionPolicy::paper().with_max_depth(depth)),
        (
            "most-specific",
            ResolutionPolicy::paper()
                .with_most_specific()
                .with_max_depth(depth),
        ),
    ] {
        let off = resolve(&env, &query, &policy.clone().without_cache())
            .map_err(|e| mismatch(format!("[{family}/{pname}] cache-off failed: {e}")))?;
        let cold = resolve(&env, &query, &policy)
            .map_err(|e| mismatch(format!("[{family}/{pname}] cache-cold failed: {e}")))?;
        let warm = resolve(&env, &query, &policy)
            .map_err(|e| mismatch(format!("[{family}/{pname}] cache-warm failed: {e}")))?;
        check_derivations_agree(family, pname, &env, &off, &cold)
            .and_then(|_| check_derivations_agree(family, pname, &env, &off, &warm))?;
        agreed_steps = off.steps();
    }

    // The §3.2 environment-extension variant is strictly more
    // permissive: it must succeed wherever the paper rule does, and
    // when its derivation uses no assumption-frame rule it must be the
    // very same derivation.
    let ext_policy = ResolutionPolicy::paper()
        .with_env_extension()
        .with_max_depth(depth);
    let paper = resolve(
        &env,
        &query,
        &ResolutionPolicy::paper().with_max_depth(depth),
    );
    let ext = resolve(&env, &query, &ext_policy);
    match (paper, ext) {
        (Ok(p), Ok(e)) => {
            if !e.uses_extension() && p != e {
                return Err(mismatch(format!(
                    "[{family}/env-extension] non-extension derivation differs:\n{}\nvs\n{}",
                    p.explain(),
                    e.explain()
                )));
            }
        }
        (Ok(p), Err(e)) => {
            return Err(mismatch(format!(
                "[{family}/env-extension] paper resolves ({} steps) but extension fails: {e}",
                p.steps()
            )));
        }
        // Extension-only successes and double failures are consistent.
        (Err(_), _) => {}
    }

    Ok(ResolutionVerdict {
        family,
        steps: agreed_steps,
    })
}

/// Runs the env-level subtyping leg: the seed's resolution workload
/// decided by the intersection-subtyping resolver under all four
/// policies, cross-checked against the logic resolver (same outcome,
/// evidence, and failure payload), plus agreement of the source-level
/// termination/coherence guards with their translated counterparts.
///
/// # Errors
///
/// Returns a [`Divergence`] of kind
/// [`DivergenceKind::SubtypingMismatch`] on any disagreement.
pub fn run_subtyping_oracle(seed: u64) -> Result<ResolutionVerdict, Divergence> {
    let (family, env, query) = resolution_workload(seed);
    let depth = 4096;
    let mismatch = |detail: String| Divergence::new(DivergenceKind::SubtypingMismatch, detail);

    let mut agreed_steps = 0;
    for (pname, policy) in [
        ("paper", ResolutionPolicy::paper().with_max_depth(depth)),
        (
            "paper-nocache",
            ResolutionPolicy::paper()
                .without_cache()
                .with_max_depth(depth),
        ),
        (
            "most-specific",
            ResolutionPolicy::paper()
                .with_most_specific()
                .with_max_depth(depth),
        ),
        (
            "env-extension",
            ResolutionPolicy::paper()
                .with_env_extension()
                .with_max_depth(depth),
        ),
    ] {
        implicit_core::subtyping::cross_check(&env, &query, &policy)
            .map_err(|detail| mismatch(format!("[{family}/{pname}] {detail}")))?;
        if pname == "paper" {
            if let Ok(sub) = implicit_core::subtyping::subtype_resolve(&env, &query, &policy) {
                agreed_steps = sub.steps();
            }
        }
    }

    // The translated guards must accept/reject exactly like the
    // source-level termination and coherence checks.
    let sigma = implicit_core::subtyping::translate_env(&env);
    let translated = implicit_core::subtyping::check_translation(&sigma);
    let source: Result<(), _> = env
        .frames_innermost_first()
        .flat_map(|(_, frame)| frame.iter())
        .try_for_each(implicit_core::termination::check_rule);
    match (&translated, &source) {
        (Ok(()), Ok(())) => {}
        (Err(t), Err(s)) if t == s => {}
        (t, s) => {
            return Err(mismatch(format!(
                "[{family}] guard verdicts differ: translated {t:?} vs source {s:?}"
            )));
        }
    }

    Ok(ResolutionVerdict {
        family,
        steps: agreed_steps,
    })
}

/// What the wild-mode oracle observed when all legs agreed.
#[derive(Clone, Debug)]
pub struct WildVerdict {
    /// Shape statistics of the generated workload (merged into the
    /// sweep's coverage histogram).
    pub histogram: genprog::WildHistogram,
    /// Total `TyRes` steps across all queries.
    pub steps: usize,
}

/// Runs the wild-mode oracle: a production-shaped
/// [`genprog::wild_workload`] (field-study scope sizes, Zipf head
/// skew, conversion chains, hot/cold query mix) where every query is
/// resolved cache-off / cold / warm by the logic resolver and decided
/// by the subtyping resolver, all four in exact agreement.
///
/// # Errors
///
/// Returns a [`DivergenceKind::ResolutionMismatch`] divergence when
/// the logic resolver disagrees with itself across cache modes, and a
/// [`DivergenceKind::SubtypingMismatch`] when the subtyping leg
/// disagrees.
pub fn run_wild_oracle(seed: u64, config: &genprog::WildConfig) -> Result<WildVerdict, Divergence> {
    let w = genprog::wild_workload(seed, config);
    let policy = ResolutionPolicy::paper().with_max_depth(4096);
    let nocache = policy.clone().without_cache();

    let mut steps = 0usize;
    for (i, query) in w.queries.iter().enumerate() {
        let off = resolve(&w.env, query, &nocache).map_err(|e| {
            Divergence::new(
                DivergenceKind::ResolutionMismatch,
                format!("[wild/q{i}] cache-off failed on `{query}`: {e}"),
            )
        })?;
        // Cold and warm hits share one environment: the first resolve
        // fills the derivation cache, the second replays it.
        for mode in ["cold", "warm"] {
            let on = resolve(&w.env, query, &policy).map_err(|e| {
                Divergence::new(
                    DivergenceKind::ResolutionMismatch,
                    format!("[wild/q{i}] cache-{mode} failed on `{query}`: {e}"),
                )
            })?;
            check_derivations_agree("wild", mode, &w.env, &off, &on)?;
        }
        implicit_core::subtyping::cross_check(&w.env, query, &policy).map_err(|detail| {
            Divergence::new(
                DivergenceKind::SubtypingMismatch,
                format!("[wild/q{i}] {detail}"),
            )
        })?;
        steps += off.steps();
    }

    Ok(WildVerdict {
        histogram: w.histogram,
        steps,
    })
}

fn check_derivations_agree(
    family: &str,
    pname: &str,
    env: &implicit_core::ImplicitEnv,
    a: &Resolution,
    b: &Resolution,
) -> Result<(), Divergence> {
    if a != b {
        return Err(Divergence::new(
            DivergenceKind::ResolutionMismatch,
            format!(
                "[{family}/{pname}] derivations differ:\n{}\nvs\n{}",
                a.explain(),
                b.explain()
            ),
        ));
    }
    let sa = a.stats(env);
    let sb = b.stats(env);
    // Compare every cache-independent counter; the cache_* fields are
    // cumulative environment state and legitimately differ between
    // cold and warm runs.
    let fields = [
        ("steps", sa.steps, sb.steps),
        ("frames_scanned", sa.frames_scanned, sb.frames_scanned),
        ("rules_tried", sa.rules_tried, sb.rules_tried),
        ("assumed", sa.assumed, sb.assumed),
        (
            "max_frame_reached",
            sa.max_frame_reached,
            sb.max_frame_reached,
        ),
    ];
    for (name, x, y) in fields {
        if x != y {
            return Err(Divergence::new(
                DivergenceKind::ResolutionMismatch,
                format!("[{family}/{pname}] stats.{name} differ: {x} vs {y}"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genprog::{gen_program_with, rng, GenConfig};

    #[test]
    fn oracle_agrees_on_paper_examples() {
        let decls = Declarations::new();
        for src in [
            "implicit {1 : Int, true : Bool} in (?(Int) + 1, not ?(Bool)) : Int * Bool",
            "implicit {3 : Int, rule (forall a. {a} => a * a) ((?(a), ?(a))) : forall a. {a} => a * a} \
             in ?((Int * Int) * (Int * Int)) : (Int * Int) * (Int * Int)",
        ] {
            let e = implicit_core::parse::parse_expr(src).unwrap();
            let ty = Typechecker::new(&decls).check_closed(&e).unwrap();
            let v = run_program_oracle(&decls, &e, &ty).unwrap_or_else(|d| panic!("{src}: {d}"));
            assert!(!v.value.is_empty());
        }
    }

    #[test]
    fn oracle_flags_type_drift() {
        let decls = Declarations::new();
        let e = Expr::Int(1);
        let d = run_program_oracle(&decls, &e, &Type::Bool).unwrap_err();
        assert_eq!(d.kind, DivergenceKind::TypeDrift);
    }

    #[test]
    fn oracle_flags_ill_typed() {
        let decls = Declarations::new();
        let e = Expr::binop(
            implicit_core::syntax::BinOp::Add,
            Expr::Int(1),
            Expr::Bool(true),
        );
        let d = run_program_oracle(&decls, &e, &Type::Int).unwrap_err();
        assert_eq!(d.kind, DivergenceKind::IllTyped);
    }

    #[test]
    fn oracle_agrees_on_generated_programs() {
        let decls = genprog::data_prelude();
        let mut r = rng(0x5EED);
        for i in 0..150 {
            let p = gen_program_with(&mut r, &GenConfig::default(), &decls);
            run_program_oracle(&decls, &p.expr, &p.ty)
                .unwrap_or_else(|d| panic!("program {i} diverged: {d}\n{}", p.expr));
        }
    }

    #[test]
    fn resolution_oracle_agrees_across_families() {
        for seed in 0..100 {
            let v = run_resolution_oracle(seed).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            assert!(v.steps > 0, "seed {seed} family {}", v.family);
        }
    }

    #[test]
    fn subtyping_oracle_agrees_across_families() {
        for seed in 0..100 {
            let v = run_subtyping_oracle(seed).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            assert!(v.steps > 0, "seed {seed} family {}", v.family);
        }
    }

    #[test]
    fn wild_oracle_agrees_on_field_study_shapes() {
        let cfg = genprog::WildConfig::field_study();
        for seed in 0..4 {
            let v = run_wild_oracle(seed, &cfg).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            assert!(v.steps > 0, "seed {seed}");
            assert!(v.histogram.total_rules() >= 100, "seed {seed}");
        }
    }
}
