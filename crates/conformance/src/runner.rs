//! The sharded sweep driver, built on the work-stealing batch driver
//! of [`implicit_pipeline::driver`].
//!
//! Seeds enter a shared injector deque; workers drain it and steal
//! from each other's local deques, so a skewed seed (one that
//! triggers shrinking, say) no longer stalls a fixed round-robin
//! partition. Divergences are replayable from their seed alone,
//! independent of worker count or scheduling. [`Expr`]s are
//! `Rc`-based and not `Send`, so each worker owns its whole pipeline
//! — generation, a warm [`Session`], oracle, shrinking,
//! pretty-printing — and hands back only strings and counters; the
//! `Symbol` interner is the sole shared state and is thread-safe.
//!
//! Every seed additionally runs the warm/cold session oracle: a
//! long-lived [`Session`] (warm derivation cache, persistent runtime
//! memo, shared interner) must agree with a cold one-shot run of the
//! sugared equivalent program.

use std::path::{Path, PathBuf};
use std::time::Instant;

use genprog::{gen_program_with, rng, GenConfig, GenCounters};
use implicit_core::resolve::ResolutionPolicy;
use implicit_core::syntax::{Declarations, Expr};
use implicit_core::trace::{MetricsSink, SharedSink};
use implicit_pipeline::{run_batch_scoped, Prelude, Session};

use crate::oracle::{
    run_daemon_oracle, run_program_oracle, run_resolution_oracle, run_restart_oracle,
    run_session_oracle, run_subtyping_oracle, run_wild_oracle, Divergence, DivergenceKind,
};
use crate::report::{DivergenceRecord, LegTimings, RunReport, ShardReport};
use crate::shrink::{node_count, shrink};

/// The prelude every sweep worker warms its [`Session`] with: a
/// 6-deep chain of pair rules, so prelude-level resolutions exercise
/// multi-frame scanning and cross-program cache reuse on every seed.
fn session_prelude() -> Prelude {
    Prelude::chain(6)
}

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// First seed (inclusive).
    pub seed_lo: u64,
    /// Last seed (exclusive).
    pub seed_hi: u64,
    /// Worker thread count (clamped to ≥ 1).
    pub shards: usize,
    /// Where to persist divergence reproducers (`<id>.imp` +
    /// `<id>.json`); `None` disables corpus writes.
    pub corpus_dir: Option<PathBuf>,
    /// Program generator knobs.
    pub gen: GenConfig,
    /// Wild mode: replace the per-seed program legs with
    /// production-shaped [`genprog::wild_workload`] environments
    /// (field-study scope sizes, Zipf head skew, conversion chains),
    /// resolved by the logic resolver across cache modes and
    /// cross-checked by the subtyping resolver.
    pub wild: bool,
    /// Artifact-store directory: when set, every worker's rehydrated
    /// session loads-or-builds through the on-disk store
    /// ([`implicit_pipeline::artifact`]) instead of serializing in
    /// memory, so the sweep also exercises the cross-process path.
    pub cache_dir: Option<PathBuf>,
    /// Daemon leg: when set, the sweep starts one in-process
    /// `implicitd` ([`implicit_pipeline::service::Daemon`]), each
    /// shard opens its own tenant over the same prelude recipe, and
    /// every seed's program is additionally served over the wire and
    /// compared against the warm session
    /// ([`crate::oracle::run_daemon_oracle`]).
    pub daemon: bool,
}

impl Default for RunnerConfig {
    fn default() -> RunnerConfig {
        RunnerConfig {
            seed_lo: 0,
            seed_hi: 1000,
            shards: 1,
            corpus_dir: None,
            gen: GenConfig::default(),
            wild: false,
            cache_dir: None,
            daemon: false,
        }
    }
}

/// One shard's results, in `Send`-safe form.
struct ShardOutcome {
    report: ShardReport,
    counters: GenCounters,
    divergences: Vec<DivergenceRecord>,
}

/// Packages an env-level (by-seed) divergence: nothing to shrink, but
/// the record replays by seed.
fn by_seed_record(d: Divergence, seed: u64, shard: usize) -> DivergenceRecord {
    DivergenceRecord {
        id: format!("s{seed}-{}", d.kind.label()),
        seed,
        shard,
        kind: d.kind.label().to_owned(),
        detail: d.detail,
        program: String::new(),
        minimized: String::new(),
        original_nodes: 0,
        minimized_nodes: 0,
        replayable: false,
    }
}

/// Times one oracle leg, accumulating its wall time into `slot`.
fn timed<T>(slot: &mut u64, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    *slot += t.elapsed().as_micros() as u64;
    out
}

/// Runs one seed's program leg end to end — generate, oracle, and on
/// divergence shrink to a minimal reproducer with the same
/// [`DivergenceKind`]. The warm-session, resolution, and subtyping
/// legs run afterwards so every seed exercises all of them.
#[allow(clippy::too_many_arguments)]
fn run_seed(
    decls: &Declarations,
    session: &mut Session<'_>,
    restarted: &mut Session<'_>,
    daemon: Option<&mut (implicit_pipeline::service::Client, String)>,
    prelude: &Prelude,
    gen: &GenConfig,
    seed: u64,
    shard: usize,
    timings: &mut LegTimings,
) -> SeedOutcome {
    let mut r = rng(seed);
    let program = gen_program_with(&mut r, gen, decls);
    let mut divergence = None;

    // Session-state-dependent disagreements (warm/cold, restart)
    // cannot be replayed by the shrinker in isolation; they are
    // recorded unshrunken (see the session leg below).
    let session_record = |d: Divergence| DivergenceRecord {
        id: format!("s{seed}-{}", d.kind.label()),
        seed,
        shard,
        kind: d.kind.label().to_owned(),
        detail: d.detail,
        program: program.expr.to_string(),
        minimized: String::new(),
        original_nodes: node_count(&program.expr),
        minimized_nodes: 0,
        replayable: false,
    };
    if let Err(d) = timed(&mut timings.program_us, || {
        run_program_oracle(decls, &program.expr, &program.ty)
    }) {
        divergence = Some(minimize(decls, &program.expr, &program.ty, d, seed, shard));
    } else if let Err(d) = timed(&mut timings.session_us, || {
        run_session_oracle(decls, session, prelude, &program.expr, &program.ty)
    }) {
        divergence = Some(session_record(d));
    } else if let Err(d) = timed(&mut timings.restart_us, || {
        run_restart_oracle(session, restarted, &program.expr)
    }) {
        divergence = Some(session_record(d));
    } else if let Err(d) = timed(&mut timings.resolution_us, run_resolution_oracle_seed(seed)) {
        divergence = Some(by_seed_record(d, seed, shard));
    } else if let Err(d) = timed(&mut timings.subtyping_us, run_subtyping_oracle_seed(seed)) {
        divergence = Some(by_seed_record(d, seed, shard));
    }
    // Seventh leg: the same program served by the resident daemon
    // over the wire (daemon sweeps only).
    if divergence.is_none() {
        if let Some((client, tenant)) = daemon {
            if let Err(d) = timed(&mut timings.daemon_us, || {
                run_daemon_oracle(client, tenant, session, &program.expr)
            }) {
                divergence = Some(session_record(d));
            }
        }
    }

    SeedOutcome {
        counters: program.counters,
        divergence,
    }
}

/// Thunk adapters so the env-level legs fit [`timed`].
fn run_resolution_oracle_seed(seed: u64) -> impl FnOnce() -> Result<(), Divergence> {
    move || run_resolution_oracle(seed).map(|_| ())
}

fn run_subtyping_oracle_seed(seed: u64) -> impl FnOnce() -> Result<(), Divergence> {
    move || run_subtyping_oracle(seed).map(|_| ())
}

/// Runs one wild-mode seed: a production-shaped environment/query
/// workload through the logic resolver (cache off / cold / warm) and
/// the subtyping resolver, folding the workload's shape histogram
/// into the coverage counters.
fn run_seed_wild(seed: u64, shard: usize, timings: &mut LegTimings) -> SeedOutcome {
    let config = genprog::WildConfig::field_study();
    let mut counters = GenCounters::default();
    let divergence = match timed(&mut timings.wild_us, || run_wild_oracle(seed, &config)) {
        Ok(v) => {
            counters.record_wild(&v.histogram);
            None
        }
        Err(d) => Some(by_seed_record(d, seed, shard)),
    };
    SeedOutcome {
        counters,
        divergence,
    }
}

struct SeedOutcome {
    counters: GenCounters,
    divergence: Option<DivergenceRecord>,
}

/// Shrinks a diverging program while the oracle keeps reporting the
/// same divergence kind, then packages the reproducer.
fn minimize(
    decls: &Declarations,
    expr: &Expr,
    ty: &implicit_core::Type,
    d: Divergence,
    seed: u64,
    shard: usize,
) -> DivergenceRecord {
    let kind = d.kind;
    let property = |cand: &Expr| {
        run_program_oracle(decls, cand, ty)
            .err()
            .is_some_and(|d2| d2.kind == kind)
    };
    let minimized = if kind == DivergenceKind::IllTyped || kind == DivergenceKind::TypeDrift {
        // Generator bugs: the declared type itself is suspect, so a
        // structural shrink against it is meaningless. Keep as-is.
        expr.clone()
    } else {
        shrink(expr, &property)
    };
    let printed = minimized.to_string();
    let replayable = implicit_core::parse::parse_expr(&printed)
        .map(|p| p == minimized)
        .unwrap_or(false);
    DivergenceRecord {
        id: format!("s{seed}-{}", kind.label()),
        seed,
        shard,
        kind: kind.label().to_owned(),
        detail: d.detail,
        program: expr.to_string(),
        minimized: printed,
        original_nodes: node_count(expr),
        minimized_nodes: node_count(&minimized),
        replayable,
    }
}

/// Runs the sweep: feeds the seed range through the work-stealing
/// batch driver (each worker holding a per-thread declaration set and
/// warm [`Session`]), merges counters and divergences, and
/// (optionally) writes the corpus.
pub fn run(config: &RunnerConfig) -> std::io::Result<RunReport> {
    let shards = config.shards.max(1);
    let lo = config.seed_lo;
    let hi = config.seed_hi.max(lo);
    let wall = Instant::now();

    // One resident daemon for the whole sweep: every shard opens its
    // own tenant (sessions are thread-confined daemon-side too), so
    // the wire, admission queue, and per-tenant rollback paths all
    // run under the same multi-shard load as the sweep itself.
    let daemon = if config.daemon {
        let daemon =
            implicit_pipeline::service::Daemon::start(implicit_pipeline::service::DaemonConfig {
                addr: "127.0.0.1:0".to_owned(),
                max_tenants: shards.max(1),
                cache_dir: config.cache_dir.clone(),
                decls: std::sync::Arc::new(genprog::data_prelude),
                ..implicit_pipeline::service::DaemonConfig::default()
            })?;
        Some(daemon)
    } else {
        None
    };
    let daemon_addr = daemon.as_ref().map(|d| d.addr());

    let gen = &config.gen;
    let seeds: Vec<u64> = (lo..hi).collect();
    let outcomes: Vec<ShardOutcome> = run_batch_scoped(seeds, shards, |shard, source| {
        let t0 = Instant::now();
        // Per-worker declarations and warm session: the hash-consing
        // arena is thread-local and evidence values are `Rc`-based,
        // so each worker builds its own from the shared recipe.
        let decls = genprog::data_prelude();
        let prelude = session_prelude();
        let mut session = Session::new(&decls, ResolutionPolicy::paper(), &prelude)
            .expect("the sweep session prelude is valid");
        // A metrics-grade sink: turns on resolution/evaluator event
        // emission so the per-shard report carries the unified
        // counter snapshot (the session folds events into its own
        // registry; this sink just enables the instrumented paths).
        session.set_trace(Some(SharedSink::new(MetricsSink::new())));
        // The rehydrated leg's session: built from a serialized
        // artifact — through the on-disk store when `--cache-dir` is
        // set (exercising the cross-process path; the first worker
        // builds cold and saves, the rest exact-load), else from an
        // in-memory byte roundtrip.
        let mut restarted = match &config.cache_dir {
            Some(dir) => {
                let store = implicit_pipeline::artifact::ArtifactStore::new(dir)
                    .expect("artifact cache dir is creatable");
                implicit_pipeline::artifact::load_or_build(
                    &store,
                    &decls,
                    &ResolutionPolicy::paper(),
                    &prelude,
                    true,
                    false,
                    systemf::Isa::Register,
                )
                .expect("the sweep session prelude is valid")
                .0
            }
            None => {
                let bytes = Session::new(&decls, ResolutionPolicy::paper(), &prelude)
                    .expect("the sweep session prelude is valid")
                    .to_artifact();
                Session::from_artifact(
                    &decls,
                    &ResolutionPolicy::paper(),
                    &prelude,
                    true,
                    false,
                    systemf::Isa::Register,
                    &bytes,
                )
                .expect("the sweep artifact rehydrates")
            }
        };
        let mut counters = GenCounters::default();
        let mut divergences = Vec::new();
        let mut seeds = 0u64;
        let mut timings = LegTimings::default();
        // The shard's daemon tenant: same decls + prelude recipe as
        // the warm session, but compiled daemon-side behind the wire.
        let mut daemon_tenant = daemon_addr.map(|addr| {
            let mut client = implicit_pipeline::service::Client::connect(addr)
                .expect("sweep daemon is reachable");
            let tenant = format!("sweep-shard-{shard}");
            client
                .open_prelude(
                    &tenant,
                    &implicit_pipeline::service::prelude_source(&session_prelude()),
                    implicit_pipeline::Backend::Vm,
                )
                .expect("sweep daemon tenant opens");
            (client, tenant)
        });
        for (_, seed) in source.by_ref() {
            let out = if config.wild {
                run_seed_wild(seed, shard, &mut timings)
            } else {
                run_seed(
                    &decls,
                    &mut session,
                    &mut restarted,
                    daemon_tenant.as_mut(),
                    &prelude,
                    gen,
                    seed,
                    shard,
                    &mut timings,
                )
            };
            counters.merge(&out.counters);
            divergences.extend(out.divergence);
            seeds += 1;
        }
        if let Some((mut client, tenant)) = daemon_tenant.take() {
            // Flushes the tenant's warmed artifact to the store (when
            // the daemon has one) and frees its slot.
            let _ = client.close(&tenant);
        }
        let warm = session.cache_counters();
        let metrics = session.metrics();
        ShardOutcome {
            report: ShardReport {
                shard,
                seeds,
                programs: seeds,
                duration_ms: t0.elapsed().as_millis() as u64,
                divergences: divergences.len() as u64,
                steals: source.steals as u64,
                warm_cache_hits: warm.hits,
                metrics,
                leg_timings: timings,
            },
            counters,
            divergences,
        }
    });

    if let Some(mut d) = daemon {
        d.shutdown();
    }

    let wall_ms = wall.elapsed().as_millis() as u64;
    let mut counters = GenCounters::default();
    let mut divergences = Vec::new();
    let mut shard_reports = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        counters.merge(&o.counters);
        divergences.extend(o.divergences);
        shard_reports.push(o.report);
    }
    // Deterministic report order regardless of thread scheduling.
    divergences.sort_by_key(|d| d.seed);

    if let Some(dir) = &config.corpus_dir {
        if !divergences.is_empty() {
            std::fs::create_dir_all(dir)?;
            for d in &divergences {
                std::fs::write(dir.join(format!("{}.imp", d.id)), &d.minimized)?;
                std::fs::write(dir.join(format!("{}.json", d.id)), d.to_json().render())?;
            }
        }
    }

    Ok(RunReport {
        seed_lo: lo,
        seed_hi: hi,
        shards,
        wall_ms,
        shard_reports,
        coverage: counters.as_pairs(),
        divergences,
    })
}

/// Replays a corpus entry (`.imp` source file): parses it and runs
/// the full program oracle against the generator's prelude
/// declarations.
///
/// # Errors
///
/// Returns a description of the parse failure or the (still
/// reproducing) divergence.
pub fn replay(path: &Path) -> Result<String, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let expr = implicit_core::parse::parse_expr(&src).map_err(|e| format!("parse error: {e}"))?;
    let decls = genprog::data_prelude();
    let ty = implicit_core::Typechecker::new(&decls)
        .check_closed(&expr)
        .map_err(|e| format!("ill-typed reproducer: {e}"))?;
    match run_program_oracle(&decls, &expr, &ty) {
        Ok(v) => Ok(format!("oracle agrees: value {} : {}", v.value, v.ty)),
        Err(d) => Err(format!("divergence reproduced — {d}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_divergence_free_and_deterministic() {
        let config = RunnerConfig {
            seed_lo: 0,
            seed_hi: 120,
            shards: 3,
            corpus_dir: None,
            gen: GenConfig::default(),
            wild: false,
            cache_dir: None,
            daemon: false,
        };
        let r1 = run(&config).unwrap();
        assert_eq!(r1.total_programs(), 120);
        assert!(
            r1.divergences.is_empty(),
            "unexpected divergences: {:?}",
            r1.divergences
                .iter()
                .map(|d| format!("{}: {}", d.id, d.detail))
                .collect::<Vec<_>>()
        );
        // Coverage histogram is shard-count independent.
        let r2 = run(&RunnerConfig {
            shards: 1,
            ..config
        })
        .unwrap();
        assert_eq!(r1.coverage, r2.coverage);
    }

    #[test]
    fn work_stealing_sweep_covers_every_seed_exactly_once() {
        let config = RunnerConfig {
            seed_lo: 5,
            seed_hi: 47,
            shards: 4,
            corpus_dir: None,
            gen: GenConfig::default(),
            wild: false,
            cache_dir: None,
            daemon: false,
        };
        let r = run(&config).unwrap();
        let total: u64 = r.shard_reports.iter().map(|s| s.seeds).sum();
        assert_eq!(total, 42, "reports: {:?}", r.shard_reports);
        assert_eq!(r.total_programs(), 42);
        // Each shard's session carried the unified metrics snapshot:
        // the warm/cold oracle resolves implicit queries every seed.
        let m = r.total_metrics();
        assert!(m.queries > 0, "no resolution metrics: {m:?}");
        assert_eq!(
            m.queries,
            m.queries_resolved + m.queries_failed,
            "unbalanced query spans: {m:?}"
        );
        assert!(m.tree_runs > 0, "no evaluator metrics: {m:?}");
        // Every leg's cost is visible in the report.
        let t = r.total_leg_timings();
        assert!(t.program_us > 0 && t.subtyping_us > 0, "timings: {t:?}");
        assert!(t.restart_us > 0, "rehydrated leg never ran: {t:?}");
        assert_eq!(t.wild_us, 0, "wild leg ran in a normal sweep: {t:?}");
    }

    #[test]
    fn sweep_with_cache_dir_rehydrates_from_the_store() {
        let dir =
            std::env::temp_dir().join(format!("implicit-conformance-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = RunnerConfig {
            seed_lo: 0,
            seed_hi: 40,
            shards: 2,
            corpus_dir: None,
            gen: GenConfig::default(),
            wild: false,
            cache_dir: Some(dir.clone()),
            daemon: false,
        };
        let r = run(&config).unwrap();
        assert!(
            r.divergences.is_empty(),
            "divergences through the store-backed rehydrated leg: {:?}",
            r.divergences
                .iter()
                .map(|d| format!("{}: {}", d.id, d.detail))
                .collect::<Vec<_>>()
        );
        // The store now holds the sweep prelude's artifact (content
        // file + config head pointer).
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert!(files >= 2, "store has only {files} files");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn daemon_sweep_runs_the_seventh_leg_divergence_free() {
        let config = RunnerConfig {
            seed_lo: 0,
            seed_hi: 60,
            shards: 2,
            corpus_dir: None,
            gen: GenConfig::default(),
            wild: false,
            cache_dir: None,
            daemon: true,
        };
        let r = run(&config).unwrap();
        assert!(
            r.divergences.is_empty(),
            "daemon-leg divergences: {:?}",
            r.divergences
                .iter()
                .map(|d| format!("{}: {}", d.id, d.detail))
                .collect::<Vec<_>>()
        );
        assert_eq!(r.total_programs(), 60);
        // The wire leg actually ran and its cost is reported.
        let t = r.total_leg_timings();
        assert!(t.daemon_us > 0, "daemon leg never ran: {t:?}");
        // A daemon-less sweep reports zero daemon time.
        let r2 = run(&RunnerConfig {
            daemon: false,
            ..config
        })
        .unwrap();
        assert_eq!(r2.total_leg_timings().daemon_us, 0);
    }

    #[test]
    fn wild_sweep_is_divergence_free_with_production_coverage() {
        let config = RunnerConfig {
            seed_lo: 0,
            seed_hi: 12,
            shards: 2,
            corpus_dir: None,
            gen: GenConfig::default(),
            wild: true,
            cache_dir: None,
            daemon: false,
        };
        let r = run(&config).unwrap();
        assert!(
            r.divergences.is_empty(),
            "wild divergences: {:?}",
            r.divergences
                .iter()
                .map(|d| format!("{}: {}", d.id, d.detail))
                .collect::<Vec<_>>()
        );
        assert_eq!(r.total_programs(), 12);
        // Coverage carries the wild histogram, not program constructs.
        let cov: std::collections::HashMap<&str, u64> = r.coverage.iter().copied().collect();
        assert!(cov["wild_rules"] >= 12 * 100, "coverage: {:?}", r.coverage);
        assert!(cov["wild_hot_queries"] > 0 && cov["wild_cold_queries"] > 0);
        assert!(cov["wild_max_chain"] >= 8);
        // The wild leg is the only one that accumulated time.
        let t = r.total_leg_timings();
        assert!(t.wild_us > 0 && t.program_us == 0, "timings: {t:?}");
    }
}
