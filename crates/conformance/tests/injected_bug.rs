//! End-to-end validation of the harness's detection and minimization
//! machinery: inject a bug into an oracle leg and check the pipeline
//! catches it and shrinks the reproducer to a tiny program.

use conformance::oracle::{run_program_oracle, Divergence, DivergenceKind};
use conformance::shrink::{node_count, shrink};
use genprog::{gen_program_with, rng, GenConfig};
use implicit_core::syntax::{BinOp, Declarations, Expr, Type};

/// Does the program use integer multiplication anywhere?
fn contains_mul(e: &Expr) -> bool {
    if let Expr::BinOp(BinOp::Mul, _, _) = e {
        return true;
    }
    match e {
        Expr::Lam(_, _, b)
        | Expr::UnOp(_, b)
        | Expr::Fix(_, _, b)
        | Expr::Proj(b, _)
        | Expr::TyApp(b, _)
        | Expr::RuleAbs(_, b)
        | Expr::Fst(b)
        | Expr::Snd(b) => contains_mul(b),
        Expr::App(a, b) | Expr::BinOp(_, a, b) | Expr::Pair(a, b) | Expr::Cons(a, b) => {
            contains_mul(a) || contains_mul(b)
        }
        Expr::If(c, t, e2) => contains_mul(c) || contains_mul(t) || contains_mul(e2),
        Expr::RuleApp(f, args) => contains_mul(f) || args.iter().any(|(a, _)| contains_mul(a)),
        Expr::ListCase {
            scrut, nil, cons, ..
        } => contains_mul(scrut) || contains_mul(nil) || contains_mul(cons),
        Expr::Make(_, _, fields) => fields.iter().any(|(_, e2)| contains_mul(e2)),
        Expr::Inject(_, _, args) => args.iter().any(contains_mul),
        Expr::Match(s, arms) => contains_mul(s) || arms.iter().any(|a| contains_mul(&a.body)),
        _ => false,
    }
}

/// The real oracle with a bug injected into the "operational
/// semantics" leg: any program exercising `*` is reported as a value
/// mismatch — exactly the observable of an interpreter that
/// mis-implements multiplication.
fn buggy_oracle(decls: &Declarations, e: &Expr, ty: &Type) -> Result<(), Divergence> {
    run_program_oracle(decls, e, ty)?;
    if contains_mul(e) {
        return Err(Divergence {
            kind: DivergenceKind::ValueMismatch,
            detail: "injected: opsem multiplies wrong".into(),
        });
    }
    Ok(())
}

#[test]
fn injected_bug_is_caught_and_shrunk_to_a_tiny_program() {
    let decls = genprog::data_prelude();
    let gen = GenConfig::default();

    // Sweep seeds through the buggy oracle until the bug fires, as
    // the runner would.
    let mut caught = None;
    for seed in 0..2000u64 {
        let mut r = rng(seed);
        let p = gen_program_with(&mut r, &gen, &decls);
        if let Err(d) = buggy_oracle(&decls, &p.expr, &p.ty) {
            caught = Some((seed, p, d));
            break;
        }
    }
    let (seed, program, d) = caught.expect("generator never emitted a `*` within 2000 seeds");
    assert_eq!(d.kind, DivergenceKind::ValueMismatch, "seed {seed}: {d}");

    // Shrink under the harness's property: the buggy oracle still
    // reports the same divergence kind.
    let property = |cand: &Expr| {
        buggy_oracle(&decls, cand, &program.ty)
            .err()
            .is_some_and(|d2| d2.kind == d.kind)
    };
    assert!(property(&program.expr));
    let minimized = shrink(&program.expr, &property);

    assert!(property(&minimized), "shrink lost the divergence");
    assert!(contains_mul(&minimized));
    assert!(
        node_count(&minimized) <= 10,
        "seed {seed}: shrunk only to {} nodes: {minimized}",
        node_count(&minimized)
    );
}
