//! End-to-end validation of the harness's handling of the fifth
//! (intersection-subtyping) oracle leg: inject a bug that makes the
//! leg mis-report on any program containing an implicit query, and
//! check the pipeline catches it as a [`DivergenceKind::SubtypingMismatch`]
//! and shrinks the reproducer to a tiny program — mirroring the PR 2
//! injected-bug test for the opsem leg.

use conformance::oracle::{run_program_oracle, Divergence, DivergenceKind};
use conformance::shrink::{node_count, shrink};
use genprog::{gen_program_with, rng, GenConfig};
use implicit_core::syntax::{Declarations, Expr, Type};

/// Does the program contain an implicit query `?(ρ)` anywhere?
fn contains_query(e: &Expr) -> bool {
    let mut found = false;
    implicit_core::subtyping::walk_query_sites(e, &mut |_, _| found = true);
    found
}

/// The real oracle with a bug injected into the subtyping leg: any
/// program exercising implicit resolution is reported as a subtyping
/// mismatch — the observable of an intersection-subtyping prover
/// whose modus-ponens step selects the wrong intersection member.
fn buggy_oracle(decls: &Declarations, e: &Expr, ty: &Type) -> Result<(), Divergence> {
    run_program_oracle(decls, e, ty)?;
    if contains_query(e) {
        return Err(Divergence {
            kind: DivergenceKind::SubtypingMismatch,
            detail: "injected: subtyping prover selects the wrong member".into(),
        });
    }
    Ok(())
}

#[test]
fn injected_subtyping_bug_is_caught_and_shrunk_to_a_tiny_program() {
    let decls = genprog::data_prelude();
    let gen = GenConfig::default();

    // Sweep seeds through the buggy oracle until the bug fires, as
    // the runner would.
    let mut caught = None;
    for seed in 0..2000u64 {
        let mut r = rng(seed);
        let p = gen_program_with(&mut r, &gen, &decls);
        if let Err(d) = buggy_oracle(&decls, &p.expr, &p.ty) {
            caught = Some((seed, p, d));
            break;
        }
    }
    let (seed, program, d) = caught.expect("generator never emitted a query within 2000 seeds");
    assert_eq!(
        d.kind,
        DivergenceKind::SubtypingMismatch,
        "seed {seed}: {d}"
    );

    // Shrink under the harness's property: the buggy oracle still
    // reports the same divergence kind.
    let property = |cand: &Expr| {
        buggy_oracle(&decls, cand, &program.ty)
            .err()
            .is_some_and(|d2| d2.kind == d.kind)
    };
    assert!(property(&program.expr));
    let minimized = shrink(&program.expr, &property);

    assert!(property(&minimized), "shrink lost the divergence");
    assert!(contains_query(&minimized));
    assert!(
        node_count(&minimized) <= 10,
        "seed {seed}: shrunk only to {} nodes: {minimized}",
        node_count(&minimized)
    );
}
