//! Type inference and the type-directed encoding into λ⇒ (§5,
//! Figure "Type-directed Encoding of Source Language in λ⇒").
//!
//! The translation `G ⊢ E : T ⇝ e` is implemented as a single pass
//! that *infers* simple types with unification metavariables while
//! *emitting* the core term. The interesting rules:
//!
//! * `TyLVar` — using a let-bound `u : ∀ᾱ. σ̄ ⇒ T′` instantiates the
//!   quantifiers with fresh metavariables and fires one query
//!   `?⟦θσᵢ⟧` per context entry: implicit instantiation;
//! * `TyLet` — `let u : σ = E₁ in E₂` becomes
//!   `(λu:⟦σ⟧. e₂) (rule(⟦σ⟧)(e₁))`;
//! * `TyImp` — `implicit ū in E` becomes
//!   `rule({⟦σ̄⟧} ⇒ ⟦T⟧)(e) with {ū:⟦σ̄⟧}`;
//! * `TyIVar` — the bare query `?` gets its type from inference;
//! * `TyRec` — record construction infers the interface's type
//!   arguments from its fields.
//!
//! Metavariables are encoded as reserved type variables and solved by
//! first-order unification; after the pass, the solution is applied
//! to the emitted core term (zonking) and any remaining metavariable
//! is reported as an ambiguous type. Resolution itself is *not*
//! performed here — the emitted core term carries the queries, and
//! the core type checker / elaborator resolves them. This mirrors the
//! paper's layering exactly.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

use implicit_core::subst::TySubst;
use implicit_core::symbol::{fresh, Symbol};
use implicit_core::syntax::{BinOp, Declarations, Expr, RuleType, Type, UnOp};

use crate::ast::{SExpr, SProgram};

/// A source-language type error.
#[derive(Clone, Debug)]
pub enum SrcError {
    /// Unbound variable.
    UnboundVar(Symbol),
    /// Two types failed to unify.
    Unify {
        /// First type (zonked).
        left: Type,
        /// Second type (zonked).
        right: Type,
    },
    /// Occurs-check failure (infinite type).
    Occurs {
        /// The metavariable.
        meta: Symbol,
        /// The type containing it.
        ty: Type,
    },
    /// A type could not be fully inferred; an annotation is needed.
    Ambiguous {
        /// Where the unsolved type appeared (description).
        context: String,
    },
    /// Unknown interface.
    UnknownInterface(Symbol),
    /// Unknown interface field.
    UnknownField {
        /// Interface.
        interface: Symbol,
        /// Field.
        field: Symbol,
    },
    /// A record literal omits or duplicates fields.
    BadRecordLiteral {
        /// Interface.
        interface: Symbol,
        /// Explanation.
        reason: String,
    },
    /// `fix` requires a function type.
    FixNotFunction(Type),
    /// `implicit` names a variable that is not in scope.
    ImplicitUnbound(Symbol),
    /// Unknown data constructor in a `match`.
    UnknownCtor(Symbol),
    /// A `match` with no arms.
    EmptyMatch,
    /// A recursive `let` needs a function- or rule-typed scheme.
    BadRecursion(Type),
}

impl fmt::Display for SrcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrcError::UnboundVar(x) => write!(f, "unbound variable `{x}`"),
            SrcError::Unify { left, right } => {
                write!(f, "cannot unify `{left}` with `{right}`")
            }
            SrcError::Occurs { meta, ty } => {
                write!(f, "infinite type: `{meta}` occurs in `{ty}`")
            }
            SrcError::Ambiguous { context } => {
                write!(f, "ambiguous type in {context}; add an annotation")
            }
            SrcError::UnknownInterface(i) => write!(f, "unknown interface `{i}`"),
            SrcError::UnknownField { interface, field } => {
                write!(f, "interface `{interface}` has no field `{field}`")
            }
            SrcError::BadRecordLiteral { interface, reason } => {
                write!(f, "bad record literal for `{interface}`: {reason}")
            }
            SrcError::FixNotFunction(t) => {
                write!(f, "`fix` requires a function type, found `{t}`")
            }
            SrcError::ImplicitUnbound(u) => {
                write!(f, "`implicit` names unbound variable `{u}`")
            }
            SrcError::UnknownCtor(c) => write!(f, "unknown data constructor `{c}`"),
            SrcError::EmptyMatch => f.write_str("`match` needs at least one arm"),
            SrcError::BadRecursion(t) => write!(
                f,
                "recursive definitions need a function or rule type, found `{t}`"
            ),
        }
    }
}

impl std::error::Error for SrcError {}

#[derive(Clone, Debug)]
enum Binding {
    Mono(Type),
    Poly(RuleType),
}

/// The inference-and-translation engine.
pub struct Translator<'d> {
    decls: &'d Declarations,
    solution: BTreeMap<Symbol, Type>,
    metas: BTreeSet<Symbol>,
    /// Metavariables standing for type *constructors* (arrow-kinded
    /// scheme quantifiers instantiated at use sites), with their
    /// arity.
    ctor_metas: BTreeSet<Symbol>,
}

impl<'d> Translator<'d> {
    /// Creates a translator for the given interface declarations.
    pub fn new(decls: &'d Declarations) -> Translator<'d> {
        Translator {
            decls,
            solution: BTreeMap::new(),
            metas: BTreeSet::new(),
            ctor_metas: BTreeSet::new(),
        }
    }

    fn fresh_meta(&mut self) -> Type {
        let m = fresh("_m");
        self.metas.insert(m);
        Type::Var(m)
    }

    /// Shallow zonk: chase top-level solved metavariables (including
    /// solved constructor heads of applied variables).
    fn head_zonk(&self, t: &Type) -> Type {
        let mut t = t.clone();
        loop {
            match &t {
                Type::Var(v) if self.solution.contains_key(v) => {
                    t = self.solution[v].clone();
                }
                Type::VarApp(f, args) if self.solution.contains_key(f) => {
                    t = match &self.solution[f] {
                        Type::Var(g) => Type::VarApp(*g, args.clone()),
                        Type::Ctor(c) => c.apply(args.clone()),
                        Type::Con(n, a) if a.is_empty() => Type::Con(*n, args.clone()),
                        other => panic!("ill-kinded constructor solution `{other}` for `{f}`"),
                    };
                }
                _ => return t,
            }
        }
    }

    /// The solved image of an applied-variable head, if any.
    fn head_image(&self, f: Symbol) -> Option<&Type> {
        self.solution.get(&f)
    }

    /// Deep zonk.
    fn zonk(&self, t: &Type) -> Type {
        let t = self.head_zonk(t);
        match &t {
            Type::Var(_) | Type::Int | Type::Bool | Type::Str | Type::Unit => t,
            Type::Arrow(a, b) => Type::arrow(self.zonk(a), self.zonk(b)),
            Type::Prod(a, b) => Type::prod(self.zonk(a), self.zonk(b)),
            Type::List(a) => Type::list(self.zonk(a)),
            Type::Con(n, args) => Type::Con(*n, args.iter().map(|a| self.zonk(a)).collect()),
            Type::VarApp(f, args) => {
                let args2: Vec<Type> = args.iter().map(|a| self.zonk(a)).collect();
                match self.solution.get(f) {
                    Some(Type::Var(g)) => Type::VarApp(*g, args2),
                    Some(Type::Ctor(c)) => c.apply(args2),
                    Some(Type::Con(n, a)) if a.is_empty() => Type::Con(*n, args2),
                    _ => Type::VarApp(*f, args2),
                }
            }
            Type::Ctor(_) => t,
            Type::Rule(_) => t,
        }
    }

    fn unify(&mut self, a: &Type, b: &Type) -> Result<(), SrcError> {
        let a = self.head_zonk(a);
        let b = self.head_zonk(b);
        match (&a, &b) {
            (Type::Var(x), Type::Var(y)) if x == y => Ok(()),
            (Type::Var(m), other) | (other, Type::Var(m)) if self.metas.contains(m) => {
                let other_z = self.zonk(other);
                if other_z.ftv().contains(m) {
                    return Err(SrcError::Occurs {
                        meta: *m,
                        ty: other_z,
                    });
                }
                self.solution.insert(*m, other_z);
                Ok(())
            }
            (Type::Int, Type::Int)
            | (Type::Bool, Type::Bool)
            | (Type::Str, Type::Str)
            | (Type::Unit, Type::Unit) => Ok(()),
            (Type::Arrow(a1, b1), Type::Arrow(a2, b2))
            | (Type::Prod(a1, b1), Type::Prod(a2, b2)) => {
                self.unify(a1, a2)?;
                self.unify(b1, b2)
            }
            (Type::List(a1), Type::List(a2)) => self.unify(a1, a2),
            (Type::Con(n1, a1), Type::Con(n2, a2)) if n1 == n2 && a1.len() == a2.len() => {
                for (x, y) in a1.iter().zip(a2) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (Type::VarApp(f1, a1), Type::VarApp(f2, a2)) if a1.len() == a2.len() => {
                // Heads: chase solved constructor metas first.
                let h1 = self.head_image(*f1);
                let h2 = self.head_image(*f2);
                match (h1, h2) {
                    (None, None) if f1 == f2 => {}
                    (None, None) if self.ctor_metas.contains(f1) => {
                        self.solution.insert(*f1, Type::Var(*f2));
                    }
                    (None, None) if self.ctor_metas.contains(f2) => {
                        self.solution.insert(*f2, Type::Var(*f1));
                    }
                    (None, None) => {
                        return Err(SrcError::Unify {
                            left: self.zonk(&a),
                            right: self.zonk(&b),
                        })
                    }
                    _ => unreachable!("head_zonk resolves solved heads"),
                }
                for (x, y) in a1.iter().zip(a2) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (Type::VarApp(f, fa), Type::List(el)) | (Type::List(el), Type::VarApp(f, fa))
                if fa.len() == 1 && self.ctor_metas.contains(f) =>
            {
                self.solution
                    .insert(*f, Type::Ctor(implicit_core::syntax::TyCon::List));
                self.unify(&fa[0], el)
            }
            (Type::VarApp(f, fa), Type::Con(n, na)) | (Type::Con(n, na), Type::VarApp(f, fa))
                if fa.len() == na.len() && self.ctor_metas.contains(f) =>
            {
                self.solution
                    .insert(*f, Type::Ctor(implicit_core::syntax::TyCon::Named(*n)));
                for (x, y) in fa.iter().zip(na) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (Type::Ctor(c1), Type::Ctor(c2)) if c1 == c2 => Ok(()),
            (Type::Ctor(implicit_core::syntax::TyCon::Named(n1)), Type::Con(n2, a2))
            | (Type::Con(n2, a2), Type::Ctor(implicit_core::syntax::TyCon::Named(n1)))
                if a2.is_empty() && n1 == n2 =>
            {
                Ok(())
            }
            (Type::Rule(r1), Type::Rule(r2)) if implicit_core::alpha::alpha_eq(r1, r2) => Ok(()),
            _ => Err(SrcError::Unify {
                left: self.zonk(&a),
                right: self.zonk(&b),
            }),
        }
    }

    fn infer(
        &mut self,
        env: &mut Vec<(Symbol, Binding)>,
        e: &SExpr,
    ) -> Result<(Type, Expr), SrcError> {
        match e {
            SExpr::Int(n) => Ok((Type::Int, Expr::Int(*n))),
            SExpr::Bool(b) => Ok((Type::Bool, Expr::Bool(*b))),
            SExpr::Str(s) => Ok((Type::Str, Expr::Str(s.clone()))),
            SExpr::Unit => Ok((Type::Unit, Expr::Unit)),
            SExpr::Var(x) => {
                let binding = env
                    .iter()
                    .rev()
                    .find(|(y, _)| y == x)
                    .map(|(_, b)| b.clone())
                    .ok_or(SrcError::UnboundVar(*x))?;
                match binding {
                    Binding::Mono(t) => Ok((t, Expr::Var(*x))),
                    Binding::Poly(sigma) => self.instantiate_var(*x, &sigma),
                }
            }
            SExpr::Lam(x, ann, body) => {
                let dom = match ann {
                    Some(t) => t.clone(),
                    None => self.fresh_meta(),
                };
                env.push((*x, Binding::Mono(dom.clone())));
                let out = self.infer(env, body);
                env.pop();
                let (cod, be) = out?;
                Ok((
                    Type::arrow(dom.clone(), cod),
                    Expr::Lam(*x, dom, Rc::new(be)),
                ))
            }
            SExpr::App(f, a) => {
                let (tf, ef) = self.infer(env, f)?;
                let (ta, ea) = self.infer(env, a)?;
                let out = self.fresh_meta();
                self.unify(&tf, &Type::arrow(ta, out.clone()))?;
                Ok((out, Expr::app(ef, ea)))
            }
            SExpr::Let {
                name,
                scheme,
                rhs,
                body,
            } => {
                // TyLet. The scheme's variables are rigid in the rhs.
                let (t_rhs, e_rhs) = self.infer(env, rhs)?;
                self.unify(&t_rhs, scheme.head())?;
                env.push((*name, Binding::Poly(scheme.clone())));
                let out = self.infer(env, body);
                env.pop();
                let (t_body, e_body) = out?;
                let bound = if scheme.is_trivial() {
                    e_rhs
                } else {
                    Expr::rule_abs(scheme.clone(), e_rhs)
                };
                Ok((
                    t_body,
                    Expr::app(Expr::Lam(*name, scheme.to_type(), Rc::new(e_body)), bound),
                ))
            }
            SExpr::LetRec {
                name,
                scheme,
                rhs,
                body,
            } => {
                // Polymorphic recursion: `name` carries its full
                // scheme inside the definition, so recursive uses may
                // instantiate it differently (the Perfect pattern).
                env.push((*name, Binding::Poly(scheme.clone())));
                let rhs_out = self.infer(env, rhs);
                let (t_rhs, e_rhs) = match rhs_out {
                    Ok(x) => x,
                    Err(e) => {
                        env.pop();
                        return Err(e);
                    }
                };
                if let Err(e) = self.unify(&t_rhs, scheme.head()) {
                    env.pop();
                    return Err(e);
                }
                let out = self.infer(env, body);
                env.pop();
                let (t_body, e_body) = out?;
                let ty = scheme.to_type();
                if scheme.is_trivial() && !matches!(ty, Type::Arrow(_, _)) {
                    return Err(SrcError::BadRecursion(ty));
                }
                let wrapped = if scheme.is_trivial() {
                    e_rhs
                } else {
                    Expr::rule_abs(scheme.clone(), e_rhs)
                };
                let bound = Expr::Fix(*name, ty.clone(), Rc::new(wrapped));
                Ok((
                    t_body,
                    Expr::app(Expr::Lam(*name, ty, Rc::new(e_body)), bound),
                ))
            }
            SExpr::Match(scrut, arms) => {
                let (ts, es) = self.infer(env, scrut)?;
                let first = arms.first().ok_or(SrcError::EmptyMatch)?;
                let data = self
                    .decls
                    .lookup_ctor(first.ctor)
                    .ok_or(SrcError::UnknownCtor(first.ctor))?
                    .0
                    .clone();
                let targs: Vec<Type> = data
                    .params
                    .iter()
                    .map(|(_, k)| {
                        let m = self.fresh_meta();
                        if *k > 0 {
                            if let Type::Var(mv) = &m {
                                self.ctor_metas.insert(*mv);
                            }
                        }
                        m
                    })
                    .collect();
                self.unify(&ts, &Type::Con(data.name, targs.clone()))?;
                let mut result: Option<Type> = None;
                let mut out_arms = Vec::with_capacity(arms.len());
                for arm in arms {
                    let want = data
                        .ctor_arg_types(arm.ctor, &targs)
                        .ok_or(SrcError::UnknownCtor(arm.ctor))?;
                    if want.len() != arm.binders.len() {
                        return Err(SrcError::BadRecordLiteral {
                            interface: data.name,
                            reason: format!(
                                "constructor `{}` takes {} argument(s), {} bound",
                                arm.ctor,
                                want.len(),
                                arm.binders.len()
                            ),
                        });
                    }
                    for (b, w) in arm.binders.iter().zip(&want) {
                        env.push((*b, Binding::Mono(w.clone())));
                    }
                    let body_out = self.infer(env, &arm.body);
                    for _ in &arm.binders {
                        env.pop();
                    }
                    let (t_arm, e_arm) = body_out?;
                    match &result {
                        None => result = Some(t_arm),
                        Some(prev) => self.unify(prev, &t_arm)?,
                    }
                    out_arms.push(implicit_core::syntax::MatchArm {
                        ctor: arm.ctor,
                        binders: arm.binders.clone(),
                        body: e_arm,
                    });
                }
                Ok((
                    result.ok_or(SrcError::EmptyMatch)?,
                    Expr::Match(Rc::new(es), out_arms),
                ))
            }
            SExpr::LetMono { name, rhs, body } => {
                // Monomorphic let: infer the definition's type; no
                // generalization, no context.
                let (t_rhs, e_rhs) = self.infer(env, rhs)?;
                env.push((*name, Binding::Mono(t_rhs.clone())));
                let out = self.infer(env, body);
                env.pop();
                let (t_body, e_body) = out?;
                Ok((
                    t_body,
                    Expr::app(Expr::Lam(*name, t_rhs, Rc::new(e_body)), e_rhs),
                ))
            }
            SExpr::Implicit(names, body) => {
                // TyImp: rule({⟦σ̄⟧} ⇒ ⟦T⟧)(e) with {ū:⟦σ̄⟧}.
                let mut args: Vec<(Expr, RuleType)> = Vec::with_capacity(names.len());
                for u in names {
                    let binding = env
                        .iter()
                        .rev()
                        .find(|(y, _)| y == u)
                        .map(|(_, b)| b.clone())
                        .ok_or(SrcError::ImplicitUnbound(*u))?;
                    let sigma = match binding {
                        Binding::Poly(s) => s,
                        Binding::Mono(t) => t.promote(),
                    };
                    args.push((Expr::Var(*u), sigma));
                }
                let (t_body, e_body) = self.infer(env, body)?;
                Ok((t_body.clone(), Expr::implicit(args, e_body, t_body)))
            }
            SExpr::Query => {
                // TyIVar: the type is inferred; emit ?τ.
                let t = self.fresh_meta();
                Ok((t.clone(), Expr::Query(RuleType::simple(t))))
            }
            SExpr::Make(name, fields) => {
                // TyRec: infer the interface's type arguments.
                let decl = self
                    .decls
                    .lookup(*name)
                    .ok_or(SrcError::UnknownInterface(*name))?
                    .clone();
                if fields.len() != decl.fields.len() {
                    return Err(SrcError::BadRecordLiteral {
                        interface: *name,
                        reason: format!(
                            "expected {} field(s), found {}",
                            decl.fields.len(),
                            fields.len()
                        ),
                    });
                }
                let targs: Vec<Type> = decl.vars.iter().map(|_| self.fresh_meta()).collect();
                let inst = TySubst::bind_all(&decl.vars, &targs);
                let mut out_fields = Vec::with_capacity(fields.len());
                for (u, fe) in fields {
                    let Some((_, want_raw)) = decl.fields.iter().find(|(w, _)| w == u) else {
                        return Err(SrcError::UnknownField {
                            interface: *name,
                            field: *u,
                        });
                    };
                    let want = inst.apply_type(want_raw);
                    let (got, ee) = self.infer(env, fe)?;
                    self.unify(&got, &want)?;
                    out_fields.push((*u, ee));
                }
                Ok((
                    Type::Con(*name, targs.clone()),
                    Expr::Make(*name, targs, out_fields),
                ))
            }
            SExpr::If(c, t, f) => {
                let (tc, ec) = self.infer(env, c)?;
                self.unify(&tc, &Type::Bool)?;
                let (tt, et) = self.infer(env, t)?;
                let (tf, ef) = self.infer(env, f)?;
                self.unify(&tt, &tf)?;
                Ok((tt, Expr::If(ec.into(), et.into(), ef.into())))
            }
            SExpr::Pair(a, b) => {
                let (ta, ea) = self.infer(env, a)?;
                let (tb, eb) = self.infer(env, b)?;
                Ok((Type::prod(ta, tb), Expr::Pair(ea.into(), eb.into())))
            }
            SExpr::Fst(a) => {
                let (ta, ea) = self.infer(env, a)?;
                let l = self.fresh_meta();
                let r = self.fresh_meta();
                self.unify(&ta, &Type::prod(l.clone(), r))?;
                Ok((l, Expr::Fst(ea.into())))
            }
            SExpr::Snd(a) => {
                let (ta, ea) = self.infer(env, a)?;
                let l = self.fresh_meta();
                let r = self.fresh_meta();
                self.unify(&ta, &Type::prod(l, r.clone()))?;
                Ok((r, Expr::Snd(ea.into())))
            }
            SExpr::Nil => {
                let el = self.fresh_meta();
                Ok((Type::list(el.clone()), Expr::Nil(el)))
            }
            SExpr::Cons(h, t) => {
                let (th, eh) = self.infer(env, h)?;
                let (tt, et) = self.infer(env, t)?;
                self.unify(&tt, &Type::list(th))?;
                Ok((tt, Expr::Cons(eh.into(), et.into())))
            }
            SExpr::ListCase {
                scrut,
                nil,
                head,
                tail,
                cons,
            } => {
                let (ts, es) = self.infer(env, scrut)?;
                let el = self.fresh_meta();
                self.unify(&ts, &Type::list(el.clone()))?;
                let (tn, en) = self.infer(env, nil)?;
                env.push((*head, Binding::Mono(el.clone())));
                env.push((*tail, Binding::Mono(Type::list(el))));
                let out = self.infer(env, cons);
                env.pop();
                env.pop();
                let (tc, ec) = out?;
                self.unify(&tn, &tc)?;
                Ok((
                    tn,
                    Expr::ListCase {
                        scrut: es.into(),
                        nil: en.into(),
                        head: *head,
                        tail: *tail,
                        cons: ec.into(),
                    },
                ))
            }
            SExpr::Fix(x, t, body) => {
                env.push((*x, Binding::Mono(t.clone())));
                let out = self.infer(env, body);
                env.pop();
                let (tb, eb) = out?;
                self.unify(&tb, t)?;
                Ok((t.clone(), Expr::Fix(*x, t.clone(), eb.into())))
            }
            SExpr::BinOp(op, a, b) => {
                let (ta, ea) = self.infer(env, a)?;
                let (tb, eb) = self.infer(env, b)?;
                use BinOp::*;
                let out = match op {
                    Add | Sub | Mul | Div | Mod => {
                        self.unify(&ta, &Type::Int)?;
                        self.unify(&tb, &Type::Int)?;
                        Type::Int
                    }
                    Lt | Le => {
                        self.unify(&ta, &Type::Int)?;
                        self.unify(&tb, &Type::Int)?;
                        Type::Bool
                    }
                    And | Or => {
                        self.unify(&ta, &Type::Bool)?;
                        self.unify(&tb, &Type::Bool)?;
                        Type::Bool
                    }
                    Concat => {
                        self.unify(&ta, &Type::Str)?;
                        self.unify(&tb, &Type::Str)?;
                        Type::Str
                    }
                    Eq => {
                        self.unify(&ta, &tb)?;
                        // Base-type restriction checked after zonking
                        // by the core type checker.
                        Type::Bool
                    }
                };
                Ok((out, Expr::BinOp(*op, ea.into(), eb.into())))
            }
            SExpr::UnOp(op, a) => {
                let (ta, ea) = self.infer(env, a)?;
                let (dom, cod) = match op {
                    UnOp::Not => (Type::Bool, Type::Bool),
                    UnOp::Neg => (Type::Int, Type::Int),
                    UnOp::IntToStr => (Type::Int, Type::Str),
                };
                self.unify(&ta, &dom)?;
                Ok((cod, Expr::UnOp(*op, ea.into())))
            }
            SExpr::Ann(a, t) => {
                let (ta, ea) = self.infer(env, a)?;
                self.unify(&ta, t)?;
                Ok((t.clone(), ea))
            }
        }
    }

    /// TyLVar: instantiate a let-bound variable's scheme, emitting
    /// `u[⟦T̄⟧] with {?⟦θσᵢ⟧ : ⟦θσᵢ⟧, …}`.
    fn instantiate_var(&mut self, u: Symbol, sigma: &RuleType) -> Result<(Type, Expr), SrcError> {
        if sigma.is_trivial() {
            return Ok((sigma.head().clone(), Expr::Var(u)));
        }
        // Fresh metas per quantifier; arrow-kinded quantifiers get
        // *constructor* metas, solved to `List`/interface heads by
        // unification.
        let kinds = implicit_core::typeck::infer_binder_kinds(self.decls, sigma).map_err(|e| {
            SrcError::Ambiguous {
                context: format!("scheme of `{u}` ({e})"),
            }
        })?;
        let targs: Vec<Type> = sigma
            .vars()
            .iter()
            .map(|v| {
                let m = self.fresh_meta();
                if kinds.get(v).copied().unwrap_or(0) > 0 {
                    if let Type::Var(mv) = &m {
                        self.ctor_metas.insert(*mv);
                    }
                }
                m
            })
            .collect();
        let theta = TySubst::bind_all(sigma.vars(), &targs);
        let mut out: Expr = Expr::Var(u);
        if !sigma.vars().is_empty() {
            out = Expr::TyApp(Rc::new(out), targs);
        }
        if !sigma.context().is_empty() {
            let args: Vec<(Expr, RuleType)> = sigma
                .context()
                .iter()
                .map(|si| {
                    let inst = theta.apply_rule(si);
                    (Expr::Query(inst.clone()), inst)
                })
                .collect();
            out = Expr::with(out, args);
        }
        Ok((theta.apply_type(sigma.head()), out))
    }

    /// Finishes a translation: zonks the emitted term and reports any
    /// remaining metavariables.
    fn finish(&self, ty: Type, expr: Expr) -> Result<(Type, Expr), SrcError> {
        let mut subst = TySubst::new();
        for m in &self.metas {
            if self.solution.contains_key(m) {
                subst.bind(*m, self.zonk(&Type::Var(*m)));
            }
        }
        let ty = subst.apply_type(&ty);
        let expr = subst.apply_expr(&expr);
        // Any meta still reachable is an ambiguity.
        let mut remaining: BTreeSet<Symbol> = BTreeSet::new();
        collect_metas_expr(&expr, &self.metas, &mut remaining);
        ty.ftv()
            .into_iter()
            .filter(|v| self.metas.contains(v))
            .for_each(|v| {
                remaining.insert(v);
            });
        if let Some(m) = remaining.into_iter().next() {
            return Err(SrcError::Ambiguous {
                context: format!("inferred term (unsolved `{m}`)"),
            });
        }
        Ok((ty, expr))
    }
}

fn collect_metas_type(t: &Type, metas: &BTreeSet<Symbol>, out: &mut BTreeSet<Symbol>) {
    for v in t.ftv() {
        if metas.contains(&v) {
            out.insert(v);
        }
    }
}

fn collect_metas_rule(r: &RuleType, metas: &BTreeSet<Symbol>, out: &mut BTreeSet<Symbol>) {
    for v in r.ftv() {
        if metas.contains(&v) {
            out.insert(v);
        }
    }
}

fn collect_metas_expr(e: &Expr, metas: &BTreeSet<Symbol>, out: &mut BTreeSet<Symbol>) {
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::Unit | Expr::Var(_) => {}
        Expr::Lam(_, t, b) => {
            collect_metas_type(t, metas, out);
            collect_metas_expr(b, metas, out);
        }
        Expr::App(f, a) => {
            collect_metas_expr(f, metas, out);
            collect_metas_expr(a, metas, out);
        }
        Expr::Query(r) => collect_metas_rule(r, metas, out),
        Expr::RuleAbs(r, b) => {
            collect_metas_rule(r, metas, out);
            collect_metas_expr(b, metas, out);
        }
        Expr::TyApp(f, ts) => {
            collect_metas_expr(f, metas, out);
            ts.iter().for_each(|t| collect_metas_type(t, metas, out));
        }
        Expr::RuleApp(f, args) => {
            collect_metas_expr(f, metas, out);
            for (a, r) in args {
                collect_metas_expr(a, metas, out);
                collect_metas_rule(r, metas, out);
            }
        }
        Expr::If(a, b, c) => {
            collect_metas_expr(a, metas, out);
            collect_metas_expr(b, metas, out);
            collect_metas_expr(c, metas, out);
        }
        Expr::BinOp(_, a, b) | Expr::Pair(a, b) | Expr::Cons(a, b) => {
            collect_metas_expr(a, metas, out);
            collect_metas_expr(b, metas, out);
        }
        Expr::UnOp(_, a) | Expr::Fst(a) | Expr::Snd(a) => collect_metas_expr(a, metas, out),
        Expr::Nil(t) => collect_metas_type(t, metas, out),
        Expr::ListCase {
            scrut, nil, cons, ..
        } => {
            collect_metas_expr(scrut, metas, out);
            collect_metas_expr(nil, metas, out);
            collect_metas_expr(cons, metas, out);
        }
        Expr::Fix(_, t, b) => {
            collect_metas_type(t, metas, out);
            collect_metas_expr(b, metas, out);
        }
        Expr::Make(_, ts, fields) => {
            ts.iter().for_each(|t| collect_metas_type(t, metas, out));
            fields
                .iter()
                .for_each(|(_, fe)| collect_metas_expr(fe, metas, out));
        }
        Expr::Proj(a, _) => collect_metas_expr(a, metas, out),
        Expr::Inject(_, ts, args) => {
            ts.iter().for_each(|t| collect_metas_type(t, metas, out));
            args.iter().for_each(|a| collect_metas_expr(a, metas, out));
        }
        Expr::Match(scrut, arms) => {
            collect_metas_expr(scrut, metas, out);
            arms.iter()
                .for_each(|arm| collect_metas_expr(&arm.body, metas, out));
        }
    }
}

/// Translates a bare source expression (no interface accessors in
/// scope).
///
/// # Errors
///
/// Returns a [`SrcError`] describing the first inference failure.
pub fn translate_expr(decls: &Declarations, e: &SExpr) -> Result<(Type, Expr), SrcError> {
    let mut tr = Translator::new(decls);
    let mut env = Vec::new();
    let (t, ce) = tr.infer(&mut env, e)?;
    tr.finish(t, ce)
}

/// The scheme of an interface field accessor: field `u : T` of
/// `interface I ᾱ` becomes `u : ∀ᾱ.{} ⇒ I ᾱ → T` (§5: "field names
/// are modeled as regular functions taking a record as the first
/// argument").
pub fn accessor_scheme(
    decl: &implicit_core::syntax::InterfaceDecl,
    field: Symbol,
) -> Option<RuleType> {
    let (_, t) = decl.fields.iter().find(|(u, _)| *u == field)?;
    let iface_ty = Type::Con(decl.name, decl.vars.iter().map(|v| Type::Var(*v)).collect());
    Some(crate::ast::scheme(
        &decl.vars,
        vec![],
        Type::arrow(iface_ty, t.clone()),
    ))
}

/// Translates a whole program: brings every interface field accessor
/// into scope as a let-bound function, then translates the body.
///
/// # Errors
///
/// Returns a [`SrcError`] describing the first inference failure.
pub fn translate_program(prog: &SProgram) -> Result<(Type, Expr), SrcError> {
    let mut tr = Translator::new(&prog.decls);
    let mut env: Vec<(Symbol, Binding)> = Vec::new();
    // Accessor schemes for every interface field.
    let mut accessors: Vec<(Symbol, RuleType, Expr)> = Vec::new();
    for decl in prog.decls.iter() {
        for (u, _) in &decl.fields {
            let sigma = accessor_scheme(decl, *u).expect("field exists");
            let record = fresh("r");
            let iface_ty = Type::Con(decl.name, decl.vars.iter().map(|v| Type::Var(*v)).collect());
            let body = Expr::lam(record, iface_ty, Expr::Proj(Rc::new(Expr::Var(record)), *u));
            accessors.push((*u, sigma.clone(), body));
            env.push((*u, Binding::Poly(sigma)));
        }
    }
    // Constructor functions for every data constructor: `C` becomes
    // a let-bound curried function
    // `∀p̄. {} ⇒ T₁ → … → Tₙ → D p̄` whose body injects.
    for d in prog.decls.iter_datas() {
        let param_vars: Vec<Symbol> = d.params.iter().map(|(v, _)| *v).collect();
        let result_ty = Type::Con(d.name, param_vars.iter().map(|v| Type::Var(*v)).collect());
        for (c, arg_tys) in &d.ctors {
            let sigma = RuleType::new(
                param_vars.clone(),
                vec![],
                arg_tys
                    .iter()
                    .rev()
                    .fold(result_ty.clone(), |acc, t| Type::arrow(t.clone(), acc)),
            );
            let xs: Vec<Symbol> = (0..arg_tys.len()).map(|_| fresh("cx")).collect();
            let inject = Expr::Inject(
                *c,
                param_vars.iter().map(|v| Type::Var(*v)).collect(),
                xs.iter().map(|x| Expr::Var(*x)).collect(),
            );
            let body = xs
                .iter()
                .zip(arg_tys)
                .rev()
                .fold(inject, |acc, (x, t)| Expr::Lam(*x, t.clone(), Rc::new(acc)));
            accessors.push((*c, sigma.clone(), body));
            env.push((*c, Binding::Poly(sigma)));
        }
    }
    let (t, core_body) = tr.infer(&mut env, &prog.body)?;
    let (t, core_body) = tr.finish(t, core_body)?;
    // Wrap: (λu:⟦σ⟧. …) (rule(σ)(λr. r.u)) for each accessor,
    // innermost-last so earlier interfaces scope over later ones.
    let wrapped = accessors
        .into_iter()
        .rev()
        .fold(core_body, |acc, (u, sigma, body)| {
            let bound = if sigma.is_trivial() {
                body
            } else {
                Expr::rule_abs(sigma.clone(), body)
            };
            Expr::app(Expr::Lam(u, sigma.to_type(), Rc::new(acc)), bound)
        });
    Ok((t, wrapped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::scheme;
    use implicit_core::syntax::InterfaceDecl;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tv(s: &str) -> Type {
        Type::var(v(s))
    }

    #[test]
    fn literals_and_application_infer() {
        let decls = Declarations::new();
        let e = SExpr::app(SExpr::lam("x", SExpr::var("x")), SExpr::Int(42));
        let (t, ce) = translate_expr(&decls, &e).unwrap();
        assert_eq!(t, Type::Int);
        // The lambda's inferred annotation must be zonked to Int.
        match ce {
            Expr::App(f, _) => match &*f {
                Expr::Lam(_, t, _) => assert_eq!(*t, Type::Int),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsolved_metas_are_ambiguous() {
        let decls = Declarations::new();
        let e = SExpr::lam("x", SExpr::var("x"));
        assert!(matches!(
            translate_expr(&decls, &e),
            Err(SrcError::Ambiguous { .. })
        ));
    }

    #[test]
    fn occurs_check_fires() {
        let decls = Declarations::new();
        // \x. x x
        let e = SExpr::lam("x", SExpr::app(SExpr::var("x"), SExpr::var("x")));
        assert!(matches!(
            translate_expr(&decls, &e),
            Err(SrcError::Occurs { .. })
        ));
    }

    #[test]
    fn let_with_scheme_emits_rule_abstraction() {
        let decls = Declarations::new();
        // let id : forall a. a -> a = \x. x in id 3
        let sigma = scheme(&[v("a")], vec![], Type::arrow(tv("a"), tv("a")));
        let e = SExpr::Let {
            name: v("id"),
            scheme: sigma,
            rhs: SExpr::lam("x", SExpr::var("x")).into(),
            body: SExpr::app(SExpr::var("id"), SExpr::Int(3)).into(),
        };
        let (t, ce) = translate_expr(&decls, &e).unwrap();
        assert_eq!(t, Type::Int);
        // id's use must be a type application at Int.
        let printed = ce.to_string();
        assert!(
            printed.contains("[Int]"),
            "expected instantiation in {printed}"
        );
    }

    #[test]
    fn let_var_context_fires_queries() {
        // let f : {Int} => Int = ? + 1 in implicit-free use fails to
        // resolve at core level, but the translation must fire ?Int.
        let decls = Declarations::new();
        let sigma = RuleType::mono(vec![Type::Int.promote()], Type::Int);
        let e = SExpr::Let {
            name: v("f"),
            scheme: sigma,
            rhs: SExpr::BinOp(BinOp::Add, SExpr::Query.into(), SExpr::Int(1).into()).into(),
            body: SExpr::var("f").into(),
        };
        let (_, ce) = translate_expr(&decls, &e).unwrap();
        let printed = ce.to_string();
        assert!(
            printed.contains("with {?(Int) : Int}"),
            "expected fired query in {printed}"
        );
    }

    #[test]
    fn implicit_translates_to_rule_with() {
        let decls = Declarations::new();
        // let x : Int = 1 in implicit x in ? + 0
        // (the `+ 0` pins the query's type; a bare `?` with no usage
        // context is genuinely ambiguous and rejected).
        let query_plus = SExpr::BinOp(BinOp::Add, SExpr::Query.into(), SExpr::Int(0).into());
        let e = SExpr::Let {
            name: v("x"),
            scheme: RuleType::simple(Type::Int),
            rhs: SExpr::Int(1).into(),
            body: SExpr::Implicit(vec![v("x")], query_plus.into()).into(),
        };
        let (t, ce) = translate_expr(&decls, &e).unwrap();
        assert_eq!(t, Type::Int);
        let printed = ce.to_string();
        assert!(printed.contains("with {x : Int}"), "got {printed}");
    }

    #[test]
    fn records_infer_their_type_arguments() {
        let mut decls = Declarations::new();
        decls
            .declare(InterfaceDecl {
                name: v("Eq"),
                vars: vec![v("a")],
                fields: vec![(
                    v("eq"),
                    Type::arrow(tv("a"), Type::arrow(tv("a"), Type::Bool)),
                )],
            })
            .unwrap();
        // Eq { eq = \x. \y. x == y } with ints ⇒ Eq Int. The equality
        // constrains nothing by itself, so pin one operand:
        let lit = SExpr::Make(
            v("Eq"),
            vec![(
                v("eq"),
                SExpr::lam(
                    "x",
                    SExpr::lam(
                        "y",
                        SExpr::BinOp(BinOp::Add, SExpr::var("x").into(), SExpr::Int(0).into()),
                    ),
                ),
            )],
        );
        // eq : a -> a -> Bool but our field body returns Int — must
        // fail to unify.
        assert!(translate_expr(&decls, &lit).is_err());
    }

    #[test]
    fn accessor_schemes_follow_the_paper() {
        let decl = InterfaceDecl {
            name: v("Eq"),
            vars: vec![v("a")],
            fields: vec![(
                v("eq"),
                Type::arrow(tv("a"), Type::arrow(tv("a"), Type::Bool)),
            )],
        };
        let sigma = accessor_scheme(&decl, v("eq")).unwrap();
        assert_eq!(sigma.to_string(), "forall a. Eq a -> a -> a -> Bool");
    }
}
