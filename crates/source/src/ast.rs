//! Abstract syntax of the source language (§5, Figure "Syntax of
//! Source Language").
//!
//! The source language adds programmer convenience on top of λ⇒:
//!
//! * **interfaces** `interface I ᾱ = {u : T}` — simple nominal record
//!   types whose field names become globally let-bound accessor
//!   functions of type `∀ᾱ.{} ⇒ I ᾱ → T`;
//! * annotated, polymorphic **`let`** with schemes
//!   `σ = ∀ᾱ. σ̄ ⇒ T`;
//! * **`implicit ū in E`** scoping of let-bound rules;
//! * the inferred **query `?`** (no type annotation — Coq-placeholder
//!   style);
//! * implicit **instantiation**: using a let-bound variable fires the
//!   type applications and context queries automatically.
//!
//! Types reuse the core representation ([`Type`]); schemes are core
//! [`RuleType`]s whose quantifier order is fixed by the canonical
//! left-to-right traversal the paper's `⟦·⟧` prescribes (see
//! [`scheme`]). Source types never contain rule types except through
//! schemes.

use std::rc::Rc;

use implicit_core::symbol::Symbol;
use implicit_core::syntax::{BinOp, Declarations, RuleType, Type, UnOp};

/// A source expression.
#[derive(Clone, PartialEq, Debug)]
pub enum SExpr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Unit literal.
    Unit,
    /// Variable — λ-bound (monomorphic) or let-bound (polymorphic);
    /// resolved during inference.
    Var(Symbol),
    /// `\x. e` or `\x : T. e` (annotation optional).
    Lam(Symbol, Option<Type>, Rc<SExpr>),
    /// Application.
    App(Rc<SExpr>, Rc<SExpr>),
    /// `let u : σ = e₁ in e₂` — the scheme annotation is required,
    /// as in the paper.
    Let {
        /// Bound name.
        name: Symbol,
        /// Annotated scheme.
        scheme: RuleType,
        /// Definition.
        rhs: Rc<SExpr>,
        /// Body.
        body: Rc<SExpr>,
    },
    /// `letrec u : σ = e₁ in e₂` — like [`SExpr::Let`] but `u` is in
    /// scope inside `e₁` at its *full scheme*, enabling polymorphic
    /// recursion (required by non-regular types like the paper's
    /// `Perfect`).
    LetRec {
        /// Bound name.
        name: Symbol,
        /// Annotated scheme.
        scheme: RuleType,
        /// Definition (may use `name`).
        rhs: Rc<SExpr>,
        /// Body.
        body: Rc<SExpr>,
    },
    /// `let x = e₁ in e₂` — *monomorphic* let without annotation;
    /// the type is inferred and never generalized (the optional-
    /// annotation extension §5.2 mentions).
    LetMono {
        /// Bound name.
        name: Symbol,
        /// Definition.
        rhs: Rc<SExpr>,
        /// Body.
        body: Rc<SExpr>,
    },
    /// `implicit u₁, …, uₙ in e` — brings the named let-bound values
    /// into the implicit scope of `e`.
    Implicit(Vec<Symbol>, Rc<SExpr>),
    /// The inferred query `?`.
    Query,
    /// Record construction `I { u = e, … }` (type arguments
    /// inferred).
    Make(Symbol, Vec<(Symbol, SExpr)>),
    /// Conditional.
    If(Rc<SExpr>, Rc<SExpr>, Rc<SExpr>),
    /// Pair.
    Pair(Rc<SExpr>, Rc<SExpr>),
    /// First projection.
    Fst(Rc<SExpr>),
    /// Second projection.
    Snd(Rc<SExpr>),
    /// Empty list (element type inferred).
    Nil,
    /// Cons.
    Cons(Rc<SExpr>, Rc<SExpr>),
    /// List elimination.
    ListCase {
        /// Scrutinee.
        scrut: Rc<SExpr>,
        /// Empty branch.
        nil: Rc<SExpr>,
        /// Head binder.
        head: Symbol,
        /// Tail binder.
        tail: Symbol,
        /// Cons branch.
        cons: Rc<SExpr>,
    },
    /// `fix x : T. e` (annotation required).
    Fix(Symbol, Type, Rc<SExpr>),
    /// Primitive binary operator.
    BinOp(BinOp, Rc<SExpr>, Rc<SExpr>),
    /// Primitive unary operator.
    UnOp(UnOp, Rc<SExpr>),
    /// Type-annotated expression `e : T`.
    Ann(Rc<SExpr>, Type),
    /// Data elimination `match e { C x̄ -> e | … }`.
    Match(Rc<SExpr>, Vec<SMatchArm>),
}

/// One arm of an [`SExpr::Match`].
#[derive(Clone, PartialEq, Debug)]
pub struct SMatchArm {
    /// Constructor name.
    pub ctor: Symbol,
    /// Binders.
    pub binders: Vec<Symbol>,
    /// Arm body.
    pub body: SExpr,
}

impl SExpr {
    /// Variable.
    pub fn var(x: impl Into<Symbol>) -> SExpr {
        SExpr::Var(x.into())
    }

    /// Unannotated lambda.
    pub fn lam(x: impl Into<Symbol>, body: SExpr) -> SExpr {
        SExpr::Lam(x.into(), None, Rc::new(body))
    }

    /// Application.
    pub fn app(f: SExpr, a: SExpr) -> SExpr {
        SExpr::App(Rc::new(f), Rc::new(a))
    }

    /// n-ary application.
    pub fn apps(f: SExpr, args: impl IntoIterator<Item = SExpr>) -> SExpr {
        args.into_iter().fold(f, SExpr::app)
    }
}

/// A source program: interface declarations plus a body expression.
#[derive(Clone, Debug)]
pub struct SProgram {
    /// Declared interfaces.
    pub decls: Declarations,
    /// Program body.
    pub body: SExpr,
}

/// Builds a scheme `∀ᾱ. σ̄ ⇒ T` with the paper's canonical quantifier
/// order: the set of quantified variables is ordered by first
/// occurrence in the left-to-right prefix traversal of the quantified
/// type term (context first as written, then the body — matching the
/// appearance order in `σ̄ ⇒ T`).
///
/// Variables listed in `vars` that never occur are kept (they will be
/// rejected as ambiguous later); occurring order decides.
pub fn scheme(vars: &[Symbol], context: Vec<RuleType>, body: Type) -> RuleType {
    let var_set: std::collections::BTreeSet<Symbol> = vars.iter().copied().collect();
    let mut ordered: Vec<Symbol> = Vec::new();
    let mut visit = |t: &Type| {
        collect_order(t, &var_set, &mut ordered);
    };
    for c in &context {
        visit(&c.to_type());
    }
    visit(&body);
    for v in vars {
        if !ordered.contains(v) {
            ordered.push(*v);
        }
    }
    RuleType::new(ordered, context, body)
}

fn collect_order(t: &Type, vars: &std::collections::BTreeSet<Symbol>, out: &mut Vec<Symbol>) {
    match t {
        Type::Var(a) => {
            if vars.contains(a) && !out.contains(a) {
                out.push(*a);
            }
        }
        Type::Int | Type::Bool | Type::Str | Type::Unit => {}
        Type::Arrow(a, b) | Type::Prod(a, b) => {
            collect_order(a, vars, out);
            collect_order(b, vars, out);
        }
        Type::List(a) => collect_order(a, vars, out),
        Type::Con(_, args) => args.iter().for_each(|a| collect_order(a, vars, out)),
        Type::VarApp(f, args) => {
            if vars.contains(f) && !out.contains(f) {
                out.push(*f);
            }
            args.iter().for_each(|a| collect_order(a, vars, out));
        }
        Type::Ctor(_) => {}
        Type::Rule(r) => {
            // Bound variables of nested rule types shadow.
            let mut inner: std::collections::BTreeSet<Symbol> = vars.clone();
            for v in r.vars() {
                inner.remove(v);
            }
            for c in r.context() {
                collect_order(&c.to_type(), &inner, out);
            }
            collect_order(r.head(), &inner, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn scheme_orders_vars_by_first_occurrence() {
        // ∀{a,b}. {} ⇒ b → a  must quantify b before a.
        let s = scheme(
            &[v("a"), v("b")],
            vec![],
            Type::arrow(Type::var(v("b")), Type::var(v("a"))),
        );
        assert_eq!(s.vars(), &[v("b"), v("a")]);
    }

    #[test]
    fn scheme_context_occurrences_come_first() {
        // ∀{a,b}. {Eq b} ⇒ a → Bool : b occurs first (in the context).
        let ctx = vec![Type::Con(v("Eq"), vec![Type::var(v("b"))]).promote()];
        let s = scheme(
            &[v("a"), v("b")],
            ctx,
            Type::arrow(Type::var(v("a")), Type::Bool),
        );
        assert_eq!(s.vars(), &[v("b"), v("a")]);
    }

    #[test]
    fn unused_quantifiers_are_kept_at_the_end() {
        let s = scheme(&[v("z"), v("a")], vec![], Type::var(v("a")));
        assert_eq!(s.vars(), &[v("a"), v("z")]);
    }
}
