//! # `implicit-source` — the §5 source language
//!
//! A small but realistic source language layered on λ⇒, reproducing
//! §5 of the paper: **interfaces** (simple record types encoding
//! simple concepts), annotated polymorphic **`let`**, **`implicit`**
//! scoping, the inferred **query `?`**, and **implicit
//! instantiation** — using a let-bound value automatically fires the
//! type applications and context queries its scheme demands. Unlike
//! Haskell it supports local and nested scoping; unlike both Haskell
//! and Scala it supports **higher-order rules**.
//!
//! The pipeline is exactly the paper's: parse → infer simple types →
//! encode type-directedly into λ⇒ ([`compile`]); resolution is then
//! performed by the core type checker / elaborator, never here.
//!
//! ```
//! use implicit_source::compile;
//!
//! let out = compile(
//!     "interface Eq a = { eq : a -> a -> Bool }\n\
//!      let eqInt : Eq Int = Eq { eq = \\x. \\y. x == y } in\n\
//!      implicit eqInt in eq ? 1 2",
//! ).unwrap();
//! assert_eq!(out.ty, implicit_core::syntax::Type::Bool);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Error enums carry full types/rule types for precise diagnostics;
// they are constructed on cold paths only, so the large-Err lint's
// boxing advice would cost clarity for no measurable gain.
#![allow(clippy::result_large_err)]

pub mod ast;
pub mod infer;
pub mod parse;

use std::fmt;

use implicit_core::syntax::{Declarations, Expr, Type};
use implicit_core::typeck::Typechecker;

pub use ast::{scheme, SExpr, SProgram};
pub use infer::{translate_expr, translate_program, SrcError, Translator};
pub use parse::{parse_source_expr, parse_source_program, SrcParseError};

/// A compiled source program: the interface declarations, the λ⇒
/// encoding, and its type.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// Interface declarations (shared by all later stages).
    pub decls: Declarations,
    /// The λ⇒ encoding of the program.
    pub core: Expr,
    /// The program's type (checked by the core type system, i.e.
    /// all queries resolved).
    pub ty: Type,
}

/// A front-end error.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// Parsing failed.
    Parse(SrcParseError),
    /// Inference / encoding failed.
    Infer(SrcError),
    /// The λ⇒ encoding failed to type-check (usually: a query could
    /// not be resolved).
    Core(implicit_core::typeck::TypeError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Infer(e) => write!(f, "{e}"),
            CompileError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a source program to λ⇒ and type-checks the result
/// (resolving all implicit queries).
///
/// # Errors
///
/// Returns a [`CompileError`] describing the failing stage.
pub fn compile(src: &str) -> Result<Compiled, CompileError> {
    let prog = parse_source_program(src).map_err(CompileError::Parse)?;
    let (_, core) = translate_program(&prog).map_err(CompileError::Infer)?;
    let ty = Typechecker::new(&prog.decls)
        .check_closed(&core)
        .map_err(CompileError::Core)?;
    Ok(Compiled {
        decls: prog.decls,
        core,
        ty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_interface_pipeline_typechecks() {
        let out = compile(
            "interface Eq a = { eq : a -> a -> Bool }\n\
             let eqInt : Eq Int = Eq { eq = \\x. \\y. x == y } in\n\
             implicit eqInt in eq ? 1 2",
        )
        .unwrap();
        assert_eq!(out.ty, Type::Bool);
    }

    #[test]
    fn missing_instance_fails_at_core_resolution() {
        let err = compile(
            "interface Eq a = { eq : a -> a -> Bool }\n\
             eq ? 1 2",
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::Core(_)), "got {err:?}");
    }

    #[test]
    fn polymorphic_let_with_context() {
        let out = compile(
            "interface Eq a = { eq : a -> a -> Bool }\n\
             let eqv : forall a. {Eq a} => a -> a -> Bool = \\x. \\y. eq ? x y in\n\
             let eqInt : Eq Int = Eq { eq = \\x. \\y. x == y } in\n\
             implicit eqInt in eqv 3 4",
        )
        .unwrap();
        assert_eq!(out.ty, Type::Bool);
    }

    #[test]
    fn structural_concepts_work() {
        // §5: functions as implicit values (structural matching).
        let out = compile(
            "let show : forall a. {a -> String} => a -> String = ? in\n\
             let showInt' : Int -> String = \\n. showInt n in\n\
             implicit showInt' in show 42",
        )
        .unwrap();
        assert_eq!(out.ty, Type::Str);
    }

    #[test]
    fn monomorphic_let_needs_no_annotation() {
        // The §5.2 type-inference extension: `let x = e in …`.
        let out = compile(
            "let double = \\x : Int. x * 2 in\n\
             let six = double 3 in\n\
             implicit six in (? : Int) + double 10",
        )
        .unwrap();
        assert_eq!(out.ty, Type::Int);
        let v = implicit_elab::run(&out.decls, &out.core).unwrap().value;
        assert_eq!(v.to_string(), "26");
    }

    #[test]
    fn monomorphic_let_infers_lambda_domains_from_use() {
        let out = compile("let inc = \\x. x + 1 in inc 41").unwrap();
        assert_eq!(out.ty, Type::Int);
    }

    #[test]
    fn data_types_constructors_and_match() {
        let out = compile(
            "data Shape = Circle Int | Square Int Int
             let area = \\s. match s { Circle r -> r * r | Square w h -> w * h } in
             area (Square 3 4) + area (Circle 5)",
        )
        .unwrap();
        assert_eq!(out.ty, Type::Int);
        let v = implicit_elab::run(&out.decls, &out.core).unwrap().value;
        assert_eq!(v.to_string(), "37");
    }

    #[test]
    fn parametric_data_types_infer_arguments() {
        let out = compile(
            "data Opt a = None | Some a
             let get = \\o. match o { None -> 0 | Some x -> x } in
             get (Some 41) + get None + 1",
        )
        .unwrap();
        assert_eq!(out.ty, Type::Int);
        let v = implicit_elab::run(&out.decls, &out.core).unwrap().value;
        assert_eq!(v.to_string(), "42");
    }

    #[test]
    fn letrec_supports_plain_recursion_too() {
        let out = compile(
            "letrec len : forall a. [a] -> Int =
               \\xs. case xs of nil -> 0 | h :: t -> 1 + len t
             in len (1 :: 2 :: 3 :: nil) + len (true :: nil)",
        )
        .unwrap();
        assert_eq!(out.ty, Type::Int);
        let v = implicit_elab::run(&out.decls, &out.core).unwrap().value;
        assert_eq!(v.to_string(), "4");
    }

    #[test]
    fn letrec_rejects_non_function_monomorphic_bodies() {
        let err = compile("letrec x : Int = x + 1 in x").unwrap_err();
        assert!(matches!(err, CompileError::Infer(_)), "got {err:?}");
    }

    #[test]
    fn match_arms_must_agree_in_type() {
        let err = compile(
            "data Opt a = None | Some a
             match Some 1 { None -> 0 | Some x -> true }",
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::Infer(_)), "got {err:?}");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(compile("let ="), Err(CompileError::Parse(_))));
    }

    #[test]
    fn inference_errors_are_reported() {
        assert!(matches!(compile("1 + true"), Err(CompileError::Infer(_))));
    }
}
