//! Parser for the source language's concrete syntax.
//!
//! ```text
//! interface Eq a = { eq : a -> a -> Bool }
//!
//! let eqv : forall a. {Eq a} => a -> a -> Bool = \x. \y. eq ? x y in
//! let eqInt : Eq Int = Eq { eq = \x. \y. x == y } in
//! implicit eqInt in
//! eqv 1 2
//! ```
//!
//! Differences from the core syntax: lambda annotations are optional,
//! `let` takes a *scheme*, `implicit` takes a comma-separated list of
//! in-scope names (braces optional) and **no** body annotation, the
//! query is a bare `?`, records need no explicit type arguments, and
//! `nil` needs no element annotation. Comments run from `--` to end
//! of line.

use std::fmt;
use std::rc::Rc;

use implicit_core::symbol::Symbol;
use implicit_core::syntax::{BinOp, Declarations, InterfaceDecl, RuleType, Type, UnOp};

use crate::ast::{scheme, SExpr, SProgram};

/// A parsed `data` declaration before kind inference:
/// (name, parameters, constructors).
type ParsedData = (Symbol, Vec<Symbol>, Vec<(Symbol, Vec<Type>)>);

/// A source-language parse error.
#[derive(Clone, Debug, PartialEq)]
pub struct SrcParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for SrcParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "source parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for SrcParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Int(i64),
    Str(String),
    Lower(String),
    Upper(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Colon,
    ColonColon,
    FatArrow,
    Arrow,
    Lambda,
    Question,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    EqEq,
    Eq,
    Lt,
    Le,
    AndAnd,
    OrOr,
    PlusPlus,
    Pipe,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Lower(s) | Tok::Upper(s) => write!(f, "{s}"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::Comma => f.write_str(","),
            Tok::Dot => f.write_str("."),
            Tok::Colon => f.write_str(":"),
            Tok::ColonColon => f.write_str("::"),
            Tok::FatArrow => f.write_str("=>"),
            Tok::Arrow => f.write_str("->"),
            Tok::Lambda => f.write_str("\\"),
            Tok::Question => f.write_str("?"),
            Tok::Star => f.write_str("*"),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Slash => f.write_str("/"),
            Tok::Percent => f.write_str("%"),
            Tok::EqEq => f.write_str("=="),
            Tok::Eq => f.write_str("="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::AndAnd => f.write_str("&&"),
            Tok::OrOr => f.write_str("||"),
            Tok::PlusPlus => f.write_str("++"),
            Tok::Pipe => f.write_str("|"),
            Tok::Eof => f.write_str("<end of input>"),
        }
    }
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize, usize)>, SrcParseError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    let mut out = Vec::new();
    let err = |line: usize, col: usize, m: String| SrcParseError {
        line,
        col,
        message: m,
    };
    macro_rules! bump {
        () => {{
            let b = bytes[pos];
            pos += 1;
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            b
        }};
    }
    loop {
        // Skip whitespace and comments.
        loop {
            if pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                bump!();
            } else if pos + 1 < bytes.len() && bytes[pos] == b'-' && bytes[pos + 1] == b'-' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    bump!();
                }
            } else {
                break;
            }
        }
        let (tl, tc) = (line, col);
        if pos >= bytes.len() {
            out.push((Tok::Eof, tl, tc));
            return Ok(out);
        }
        let b = bytes[pos];
        let tok = match b {
            b'0'..=b'9' => {
                let mut n: i64 = 0;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    let d = bump!() - b'0';
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(i64::from(d)))
                        .ok_or_else(|| err(tl, tc, "integer literal overflows i64".into()))?;
                }
                Tok::Int(n)
            }
            b'"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if pos >= bytes.len() {
                        return Err(err(tl, tc, "unterminated string literal".into()));
                    }
                    match bump!() {
                        b'"' => break,
                        b'\\' => {
                            if pos >= bytes.len() {
                                return Err(err(tl, tc, "unterminated escape".into()));
                            }
                            match bump!() {
                                b'n' => s.push('\n'),
                                b't' => s.push('\t'),
                                b'\\' => s.push('\\'),
                                b'"' => s.push('"'),
                                other => {
                                    return Err(err(
                                        tl,
                                        tc,
                                        format!("invalid escape `\\{}`", char::from(other)),
                                    ))
                                }
                            }
                        }
                        c => s.push(char::from(c)),
                    }
                }
                Tok::Str(s)
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric()
                        || bytes[pos] == b'_'
                        || bytes[pos] == b'\'')
                {
                    bump!();
                }
                let w = std::str::from_utf8(&bytes[start..pos])
                    .expect("ascii")
                    .to_owned();
                if w.as_bytes()[0].is_ascii_uppercase() {
                    Tok::Upper(w)
                } else {
                    Tok::Lower(w)
                }
            }
            _ => {
                bump!();
                match b {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b',' => Tok::Comma,
                    b'.' => Tok::Dot,
                    b'\\' => Tok::Lambda,
                    b'?' => Tok::Question,
                    b'*' => Tok::Star,
                    b'/' => Tok::Slash,
                    b'%' => Tok::Percent,
                    b':' => {
                        if pos < bytes.len() && bytes[pos] == b':' {
                            bump!();
                            Tok::ColonColon
                        } else {
                            Tok::Colon
                        }
                    }
                    b'=' => {
                        if pos < bytes.len() && bytes[pos] == b'>' {
                            bump!();
                            Tok::FatArrow
                        } else if pos < bytes.len() && bytes[pos] == b'=' {
                            bump!();
                            Tok::EqEq
                        } else {
                            Tok::Eq
                        }
                    }
                    b'-' => {
                        if pos < bytes.len() && bytes[pos] == b'>' {
                            bump!();
                            Tok::Arrow
                        } else {
                            Tok::Minus
                        }
                    }
                    b'+' => {
                        if pos < bytes.len() && bytes[pos] == b'+' {
                            bump!();
                            Tok::PlusPlus
                        } else {
                            Tok::Plus
                        }
                    }
                    b'<' => {
                        if pos < bytes.len() && bytes[pos] == b'=' {
                            bump!();
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    b'&' => {
                        if pos < bytes.len() && bytes[pos] == b'&' {
                            bump!();
                            Tok::AndAnd
                        } else {
                            return Err(err(tl, tc, "expected `&&`".into()));
                        }
                    }
                    b'|' => {
                        if pos < bytes.len() && bytes[pos] == b'|' {
                            bump!();
                            Tok::OrOr
                        } else {
                            Tok::Pipe
                        }
                    }
                    other => {
                        return Err(err(
                            tl,
                            tc,
                            format!("unexpected character `{}`", char::from(other)),
                        ))
                    }
                }
            }
        };
        out.push((tok, tl, tc));
    }
}

fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "forall"
            | "implicit"
            | "in"
            | "if"
            | "then"
            | "else"
            | "true"
            | "false"
            | "unit"
            | "nil"
            | "case"
            | "of"
            | "fix"
            | "let"
            | "not"
            | "neg"
            | "showInt"
            | "fst"
            | "snd"
            | "interface"
            | "data"
            | "match"
            | "letrec"
    )
}

fn is_base_type(w: &str) -> bool {
    matches!(w, "Int" | "Bool" | "String" | "Unit")
}

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> SrcParseError {
        let (_, line, col) = &self.toks[self.pos];
        SrcParseError {
            line: *line,
            col: *col,
            message: message.into(),
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), SrcParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SrcParseError> {
        match self.peek() {
            Tok::Lower(w) if w == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found `{other}`"))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Lower(w) if w == kw)
    }

    fn lower_ident(&mut self) -> Result<Symbol, SrcParseError> {
        match self.peek().clone() {
            Tok::Lower(w) if !is_keyword(&w) => {
                self.bump();
                Ok(Symbol::intern(&w))
            }
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    fn upper_ident(&mut self) -> Result<Symbol, SrcParseError> {
        match self.peek().clone() {
            Tok::Upper(w) if !is_base_type(&w) => {
                self.bump();
                Ok(Symbol::intern(&w))
            }
            other => Err(self.error(format!("expected interface name, found `{other}`"))),
        }
    }

    // ---------- types and schemes ----------

    /// scheme := ['forall' ident+ '.'] ['{' scheme,* '}' '=>'] type
    fn parse_scheme(&mut self) -> Result<RuleType, SrcParseError> {
        let mut vars = Vec::new();
        if self.at_kw("forall") {
            self.bump();
            while matches!(self.peek(), Tok::Lower(w) if !is_keyword(w)) {
                vars.push(self.lower_ident()?);
            }
            if vars.is_empty() {
                return Err(self.error("`forall` needs at least one variable"));
            }
            self.expect(&Tok::Dot)?;
        }
        let mut context = Vec::new();
        if *self.peek() == Tok::LBrace {
            self.bump();
            if *self.peek() != Tok::RBrace {
                loop {
                    context.push(self.parse_scheme()?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RBrace)?;
            self.expect(&Tok::FatArrow)?;
        }
        let body = self.parse_type()?;
        Ok(scheme(&vars, context, body))
    }

    /// type := prod ('->' type)?
    fn parse_type(&mut self) -> Result<Type, SrcParseError> {
        let left = self.parse_prod_type()?;
        if *self.peek() == Tok::Arrow {
            self.bump();
            let right = self.parse_type()?;
            Ok(Type::arrow(left, right))
        } else {
            Ok(left)
        }
    }

    fn parse_prod_type(&mut self) -> Result<Type, SrcParseError> {
        let mut left = self.parse_app_type()?;
        while *self.peek() == Tok::Star {
            self.bump();
            let right = self.parse_app_type()?;
            left = Type::prod(left, right);
        }
        Ok(left)
    }

    fn parse_app_type(&mut self) -> Result<Type, SrcParseError> {
        if let Tok::Upper(w) = self.peek().clone() {
            if w == "List" {
                self.bump();
                if self.starts_atom_type() {
                    let arg = self.parse_atom_type()?;
                    return Ok(Type::list(arg));
                }
                return Ok(Type::Ctor(implicit_core::syntax::TyCon::List));
            }
            if !is_base_type(&w) {
                let name = self.upper_ident()?;
                let mut args = Vec::new();
                while self.starts_atom_type() {
                    args.push(self.parse_atom_type()?);
                }
                return Ok(Type::Con(name, args));
            }
        }
        if let Tok::Lower(w) = self.peek().clone() {
            if !is_keyword(&w) {
                let head = self.lower_ident()?;
                let mut args = Vec::new();
                while self.starts_atom_type() {
                    args.push(self.parse_atom_type()?);
                }
                return Ok(if args.is_empty() {
                    Type::var(head)
                } else {
                    Type::VarApp(head, args)
                });
            }
        }
        self.parse_atom_type()
    }

    fn starts_atom_type(&self) -> bool {
        matches!(self.peek(), Tok::Upper(_) | Tok::LParen | Tok::LBracket)
            || matches!(self.peek(), Tok::Lower(w) if !is_keyword(w))
    }

    fn parse_atom_type(&mut self) -> Result<Type, SrcParseError> {
        match self.peek().clone() {
            Tok::Upper(w) => match w.as_str() {
                "Int" => {
                    self.bump();
                    Ok(Type::Int)
                }
                "Bool" => {
                    self.bump();
                    Ok(Type::Bool)
                }
                "String" => {
                    self.bump();
                    Ok(Type::Str)
                }
                "Unit" => {
                    self.bump();
                    Ok(Type::Unit)
                }
                "List" => {
                    self.bump();
                    Ok(Type::Ctor(implicit_core::syntax::TyCon::List))
                }
                _ => {
                    let name = self.upper_ident()?;
                    Ok(Type::Con(name, Vec::new()))
                }
            },
            Tok::Lower(w) if !is_keyword(&w) => {
                self.bump();
                Ok(Type::var(Symbol::intern(&w)))
            }
            Tok::LBracket => {
                self.bump();
                let t = self.parse_type()?;
                self.expect(&Tok::RBracket)?;
                Ok(Type::list(t))
            }
            Tok::LParen => {
                self.bump();
                // Allow parenthesized schemes inside types only as
                // plain types; higher-order contexts live in scheme
                // position.
                let t = if self.at_kw("forall") || *self.peek() == Tok::LBrace {
                    Type::rule(self.parse_scheme()?)
                } else {
                    self.parse_type()?
                };
                self.expect(&Tok::RParen)?;
                Ok(t)
            }
            other => Err(self.error(format!("expected a type, found `{other}`"))),
        }
    }

    // ---------- expressions ----------

    fn parse_expr(&mut self) -> Result<SExpr, SrcParseError> {
        match self.peek().clone() {
            Tok::Lambda => {
                self.bump();
                let x = self.lower_ident()?;
                let ann = if *self.peek() == Tok::Colon {
                    self.bump();
                    Some(self.parse_type()?)
                } else {
                    None
                };
                self.expect(&Tok::Dot)?;
                let body = self.parse_expr()?;
                Ok(SExpr::Lam(x, ann, Rc::new(body)))
            }
            Tok::Lower(w) if w == "letrec" => {
                self.bump();
                let name = self.lower_ident()?;
                self.expect(&Tok::Colon)?;
                let sigma = self.parse_scheme()?;
                self.expect(&Tok::Eq)?;
                let rhs = self.parse_expr()?;
                self.expect_kw("in")?;
                let body = self.parse_expr()?;
                Ok(SExpr::LetRec {
                    name,
                    scheme: sigma,
                    rhs: Rc::new(rhs),
                    body: Rc::new(body),
                })
            }
            Tok::Lower(w) if w == "match" => {
                self.bump();
                let scrut = self.parse_binary(2)?;
                self.expect(&Tok::LBrace)?;
                let mut arms = Vec::new();
                loop {
                    let ctor = self.upper_ident()?;
                    let mut binders = Vec::new();
                    while matches!(self.peek(), Tok::Lower(w) if !is_keyword(w)) {
                        binders.push(self.lower_ident()?);
                    }
                    self.expect(&Tok::Arrow)?;
                    let body = self.parse_expr()?;
                    arms.push(crate::ast::SMatchArm {
                        ctor,
                        binders,
                        body,
                    });
                    if *self.peek() == Tok::Pipe {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(SExpr::Match(Rc::new(scrut), arms))
            }
            Tok::Lower(w) if w == "let" => {
                self.bump();
                let name = self.lower_ident()?;
                if *self.peek() == Tok::Eq {
                    // Monomorphic, annotation-free let.
                    self.bump();
                    let rhs = self.parse_expr()?;
                    self.expect_kw("in")?;
                    let body = self.parse_expr()?;
                    return Ok(SExpr::LetMono {
                        name,
                        rhs: Rc::new(rhs),
                        body: Rc::new(body),
                    });
                }
                self.expect(&Tok::Colon)?;
                let sigma = self.parse_scheme()?;
                self.expect(&Tok::Eq)?;
                let rhs = self.parse_expr()?;
                self.expect_kw("in")?;
                let body = self.parse_expr()?;
                Ok(SExpr::Let {
                    name,
                    scheme: sigma,
                    rhs: Rc::new(rhs),
                    body: Rc::new(body),
                })
            }
            Tok::Lower(w) if w == "implicit" => {
                self.bump();
                let braced = *self.peek() == Tok::LBrace;
                if braced {
                    self.bump();
                }
                let mut names = vec![self.lower_ident()?];
                while *self.peek() == Tok::Comma {
                    self.bump();
                    names.push(self.lower_ident()?);
                }
                if braced {
                    self.expect(&Tok::RBrace)?;
                }
                self.expect_kw("in")?;
                let body = self.parse_expr()?;
                Ok(SExpr::Implicit(names, Rc::new(body)))
            }
            Tok::Lower(w) if w == "if" => {
                self.bump();
                let c = self.parse_binary(2)?;
                self.expect_kw("then")?;
                let t = self.parse_binary(2)?;
                self.expect_kw("else")?;
                let f = self.parse_expr()?;
                Ok(SExpr::If(Rc::new(c), Rc::new(t), Rc::new(f)))
            }
            Tok::Lower(w) if w == "case" => {
                self.bump();
                let scrut = self.parse_binary(2)?;
                self.expect_kw("of")?;
                self.expect_kw("nil")?;
                self.expect(&Tok::Arrow)?;
                let nil = self.parse_binary(2)?;
                self.expect(&Tok::Pipe)?;
                let h = self.lower_ident()?;
                self.expect(&Tok::ColonColon)?;
                let t = self.lower_ident()?;
                self.expect(&Tok::Arrow)?;
                let cons = self.parse_expr()?;
                Ok(SExpr::ListCase {
                    scrut: Rc::new(scrut),
                    nil: Rc::new(nil),
                    head: h,
                    tail: t,
                    cons: Rc::new(cons),
                })
            }
            Tok::Lower(w) if w == "fix" => {
                self.bump();
                let x = self.lower_ident()?;
                self.expect(&Tok::Colon)?;
                let t = self.parse_type()?;
                self.expect(&Tok::Dot)?;
                let body = self.parse_expr()?;
                Ok(SExpr::Fix(x, t, Rc::new(body)))
            }
            _ => self.parse_binary(2),
        }
    }

    fn parse_binary(&mut self, min_level: u8) -> Result<SExpr, SrcParseError> {
        if min_level > 7 {
            return self.parse_app();
        }
        let mut left = self.parse_binary(min_level + 1)?;
        loop {
            let op = match (min_level, self.peek()) {
                (2, Tok::OrOr) => Some(BinOp::Or),
                (3, Tok::AndAnd) => Some(BinOp::And),
                (4, Tok::EqEq) => Some(BinOp::Eq),
                (4, Tok::Lt) => Some(BinOp::Lt),
                (4, Tok::Le) => Some(BinOp::Le),
                (5, Tok::PlusPlus) => Some(BinOp::Concat),
                (6, Tok::Plus) => Some(BinOp::Add),
                (6, Tok::Minus) => Some(BinOp::Sub),
                (7, Tok::Star) => Some(BinOp::Mul),
                (7, Tok::Slash) => Some(BinOp::Div),
                (7, Tok::Percent) => Some(BinOp::Mod),
                _ => None,
            };
            if let Some(op) = op {
                self.bump();
                let right = self.parse_binary(min_level + 1)?;
                left = SExpr::BinOp(op, Rc::new(left), Rc::new(right));
                continue;
            }
            if min_level == 5 && *self.peek() == Tok::ColonColon {
                self.bump();
                let right = self.parse_binary(5)?;
                left = SExpr::Cons(Rc::new(left), Rc::new(right));
                continue;
            }
            return Ok(left);
        }
    }

    fn parse_app(&mut self) -> Result<SExpr, SrcParseError> {
        for (kw, op) in [
            ("not", UnOp::Not),
            ("neg", UnOp::Neg),
            ("showInt", UnOp::IntToStr),
        ] {
            if self.at_kw(kw) {
                self.bump();
                let e = self.parse_atom()?;
                return Ok(SExpr::UnOp(op, Rc::new(e)));
            }
        }
        if self.at_kw("fst") {
            self.bump();
            return Ok(SExpr::Fst(Rc::new(self.parse_atom()?)));
        }
        if self.at_kw("snd") {
            self.bump();
            return Ok(SExpr::Snd(Rc::new(self.parse_atom()?)));
        }
        let mut e = self.parse_atom()?;
        while self.starts_atom() {
            let a = self.parse_atom()?;
            e = SExpr::app(e, a);
        }
        Ok(e)
    }

    fn starts_atom(&self) -> bool {
        match self.peek() {
            Tok::Int(_) | Tok::Str(_) | Tok::LParen | Tok::Question => true,
            Tok::Upper(w) => !is_base_type(w),
            Tok::Lower(w) => {
                !is_keyword(w) || matches!(w.as_str(), "true" | "false" | "unit" | "nil")
            }
            _ => false,
        }
    }

    fn parse_atom(&mut self) -> Result<SExpr, SrcParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(SExpr::Int(n))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(SExpr::Str(s))
            }
            Tok::Question => {
                self.bump();
                Ok(SExpr::Query)
            }
            Tok::Lower(w) => match w.as_str() {
                "true" => {
                    self.bump();
                    Ok(SExpr::Bool(true))
                }
                "false" => {
                    self.bump();
                    Ok(SExpr::Bool(false))
                }
                "unit" => {
                    self.bump();
                    Ok(SExpr::Unit)
                }
                "nil" => {
                    self.bump();
                    Ok(SExpr::Nil)
                }
                _ if !is_keyword(&w) => {
                    self.bump();
                    Ok(SExpr::var(Symbol::intern(&w)))
                }
                _ => Err(self.error(format!("unexpected keyword `{w}`"))),
            },
            Tok::Upper(w) if !is_base_type(&w) => {
                let name = self.upper_ident()?;
                if *self.peek() != Tok::LBrace {
                    // A data-constructor (or other capitalized
                    // let-bound) reference used as a value.
                    return Ok(SExpr::Var(name));
                }
                self.expect(&Tok::LBrace)?;
                let mut fields = Vec::new();
                if *self.peek() != Tok::RBrace {
                    loop {
                        let u = self.lower_ident()?;
                        self.expect(&Tok::Eq)?;
                        let e = self.parse_expr()?;
                        fields.push((u, e));
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(SExpr::Make(name, fields))
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                if *self.peek() == Tok::Comma {
                    self.bump();
                    let e2 = self.parse_expr()?;
                    self.expect(&Tok::RParen)?;
                    Ok(SExpr::Pair(Rc::new(e), Rc::new(e2)))
                } else if *self.peek() == Tok::Colon {
                    self.bump();
                    let t = self.parse_type()?;
                    self.expect(&Tok::RParen)?;
                    Ok(SExpr::Ann(Rc::new(e), t))
                } else {
                    self.expect(&Tok::RParen)?;
                    Ok(e)
                }
            }
            other => Err(self.error(format!("expected an expression, found `{other}`"))),
        }
    }

    fn parse_data(&mut self) -> Result<ParsedData, SrcParseError> {
        self.expect_kw("data")?;
        let name = self.upper_ident()?;
        let mut params = Vec::new();
        while matches!(self.peek(), Tok::Lower(w) if !is_keyword(w)) {
            params.push(self.lower_ident()?);
        }
        self.expect(&Tok::Eq)?;
        let mut ctors = Vec::new();
        loop {
            let ctor = self.upper_ident()?;
            let mut args = Vec::new();
            while self.starts_atom_type() {
                args.push(self.parse_atom_type()?);
            }
            ctors.push((ctor, args));
            if *self.peek() == Tok::Pipe {
                self.bump();
            } else {
                break;
            }
        }
        Ok((name, params, ctors))
    }

    fn parse_interface(&mut self) -> Result<InterfaceDecl, SrcParseError> {
        self.expect_kw("interface")?;
        let name = self.upper_ident()?;
        let mut vars = Vec::new();
        while matches!(self.peek(), Tok::Lower(w) if !is_keyword(w)) {
            vars.push(self.lower_ident()?);
        }
        self.expect(&Tok::Eq)?;
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        if *self.peek() != Tok::RBrace {
            loop {
                let u = self.lower_ident()?;
                self.expect(&Tok::Colon)?;
                let t = self.parse_type()?;
                fields.push((u, t));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(InterfaceDecl { name, vars, fields })
    }
}

/// Parses a source expression.
///
/// # Errors
///
/// Returns a [`SrcParseError`] with position information.
pub fn parse_source_expr(src: &str) -> Result<SExpr, SrcParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.parse_expr()?;
    if *p.peek() != Tok::Eof {
        return Err(p.error(format!("unexpected trailing `{}`", p.peek())));
    }
    Ok(e)
}

/// Parses a source program (interface declarations + body).
///
/// # Errors
///
/// Returns a [`SrcParseError`] with position information.
pub fn parse_source_program(src: &str) -> Result<SProgram, SrcParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut decls = Declarations::new();
    while p.at_kw("interface") || p.at_kw("data") {
        let (line, col) = {
            let (_, l, c) = &p.toks[p.pos];
            (*l, *c)
        };
        let fail = |message: String| SrcParseError { line, col, message };
        if p.at_kw("interface") {
            let d = p.parse_interface()?;
            decls.declare(d).map_err(fail)?;
        } else {
            let (name, params, ctors) = p.parse_data()?;
            let d = implicit_core::syntax::DataDecl::infer(name, params, ctors).map_err(fail)?;
            decls.declare_data(d).map_err(fail)?;
        }
    }
    let body = p.parse_expr()?;
    if *p.peek() != Tok::Eof {
        return Err(p.error(format!("unexpected trailing `{}`", p.peek())));
    }
    Ok(SProgram { decls, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_unannotated_lambdas_and_query() {
        let e = parse_source_expr("\\x. \\y. eq ? x y").unwrap();
        match e {
            SExpr::Lam(_, None, _) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_let_with_scheme() {
        let e = parse_source_expr(
            "let eqv : forall a. {Eq a} => a -> a -> Bool = \\x. \\y. eq ? x y in eqv 1 2",
        )
        .unwrap();
        match e {
            SExpr::Let { scheme, .. } => {
                assert_eq!(scheme.vars().len(), 1);
                assert_eq!(scheme.context().len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_implicit_lists() {
        let e = parse_source_expr("implicit a, b in ?").unwrap();
        match e {
            SExpr::Implicit(names, _) => assert_eq!(names.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        let e2 = parse_source_expr("implicit {a, b} in ?").unwrap();
        assert!(matches!(e2, SExpr::Implicit(ns, _) if ns.len() == 2));
    }

    #[test]
    fn parses_interfaces_and_records() {
        let prog = parse_source_program(
            "interface Eq a = { eq : a -> a -> Bool }\n\
             Eq { eq = \\x. \\y. x == y }",
        )
        .unwrap();
        assert!(prog.decls.lookup(Symbol::intern("Eq")).is_some());
        assert!(matches!(prog.body, SExpr::Make(_, _)));
    }

    #[test]
    fn parses_higher_order_scheme_contexts() {
        // §5: o : {Int→String, {Int→String} ⇒ [Int]→String} ⇒ String
        let e = parse_source_expr(
            "let o : {Int -> String, {Int -> String} => [Int] -> String} => String = \
               show (1 :: 2 :: 3 :: nil) in o",
        )
        .unwrap();
        match e {
            SExpr::Let { scheme, .. } => {
                assert_eq!(scheme.context().len(), 2);
                assert!(scheme.context().iter().any(|c| !c.context().is_empty()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_annotation_atoms() {
        let e = parse_source_expr("(? : Int)").unwrap();
        assert!(matches!(e, SExpr::Ann(_, Type::Int)));
    }

    #[test]
    fn rejects_garbage_with_position() {
        let err = parse_source_expr("let x :").unwrap_err();
        assert!(err.to_string().contains("source parse error"));
    }
}
